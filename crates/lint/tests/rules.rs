//! Fixture-driven rule tests: every rule has a positive fixture that
//! must fire and a negative fixture that must stay silent under the
//! same (synthetic) workspace-relative path. The fixtures live under
//! `tests/fixtures/` — a directory the workspace scan deliberately
//! skips, so the deliberately-violating code never fails CI itself.

use msa_lint::lint_source;

/// (line, col) of every `rule` finding in `src` linted as `rel`.
fn fire_at(rel: &str, src: &str, rule: &str) -> Vec<(u32, u32)> {
    lint_source(rel, src)
        .findings
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.line, f.col))
        .collect()
}

fn fires(rel: &str, src: &str, rule: &str) -> usize {
    fire_at(rel, src, rule).len()
}

#[test]
fn d001_wall_clock() {
    let pos = include_str!("fixtures/d001_pos.rs");
    let neg = include_str!("fixtures/d001_neg.rs");
    let hits = fire_at("crates/gigascope/src/executor.rs", pos, "D001");
    assert!(!hits.is_empty(), "Instant in engine code must fire");
    assert_eq!(fires("crates/gigascope/src/executor.rs", neg, "D001"), 0);
    // crates/bench is exempt: measurement code may read the clock.
    assert_eq!(fires("crates/bench/src/bin/fig01.rs", pos, "D001"), 0);
}

#[test]
fn d002_default_hasher() {
    let pos = include_str!("fixtures/d002_pos.rs");
    let neg = include_str!("fixtures/d002_neg.rs");
    let hits = fire_at("crates/stream/src/state.rs", pos, "D002");
    assert!(hits.len() >= 2, "HashMap::new and HashSet::with_capacity");
    assert_eq!(fires("crates/stream/src/state.rs", neg, "D002"), 0);
    // Scope: only gigascope/stream state paths are covered.
    assert_eq!(fires("crates/collision/src/model.rs", pos, "D002"), 0);
}

#[test]
fn d003_lossy_casts() {
    let pos = include_str!("fixtures/d003_pos.rs");
    let neg = include_str!("fixtures/d003_neg.rs");
    assert_eq!(fires("crates/gigascope/src/snapshot.rs", pos, "D003"), 1);
    // Widening `as u64` is allowed; try_from is the fix, not a finding.
    assert_eq!(fires("crates/gigascope/src/snapshot.rs", neg, "D003"), 0);
    // Scope: only the codec file is covered.
    assert_eq!(fires("crates/gigascope/src/executor.rs", pos, "D003"), 0);
}

#[test]
fn d004_float_eq() {
    let pos = include_str!("fixtures/d004_pos.rs");
    let neg = include_str!("fixtures/d004_neg.rs");
    assert_eq!(fires("crates/collision/src/model.rs", pos, "D004"), 1);
    assert_eq!(fires("crates/collision/src/model.rs", neg, "D004"), 0);
}

#[test]
fn d005_thread_spawn() {
    let pos = include_str!("fixtures/d005_pos.rs");
    let neg = include_str!("fixtures/d005_neg.rs");
    let hits = fire_at("crates/gigascope/src/executor.rs", pos, "D005");
    assert_eq!(hits.len(), 2, "thread::spawn + scope spawn: {hits:?}");
    assert_eq!(fires("crates/gigascope/src/executor.rs", neg, "D005"), 0);
    // The sharded runtime is the one sanctioned home for threads.
    assert_eq!(fires("crates/gigascope/src/shard.rs", pos, "D005"), 0);
    // crates/bench may thread freely (wall-clock harnesses).
    assert_eq!(
        fires("crates/bench/src/bin/shard_scaling.rs", pos, "D005"),
        0
    );
    // Test paths are exempt wholesale.
    assert_eq!(fires("tests/differential.rs", pos, "D005"), 0);
}

#[test]
fn d006_wall_clock_calls() {
    let pos = include_str!("fixtures/d006_pos.rs");
    let neg = include_str!("fixtures/d006_neg.rs");
    let hits = fire_at("crates/core/src/runtime.rs", pos, "D006");
    assert_eq!(
        hits.len(),
        5,
        "now ×2 + duration_since + sleep + elapsed: {hits:?}"
    );
    // D001 sees only the two aliasing imports — every *call site*
    // dodges its identifier check. Exactly why D006 exists.
    assert_eq!(fires("crates/core/src/runtime.rs", pos, "D001"), 2);
    // Fields named `now`/`elapsed` and record-counted triggers are fine.
    assert_eq!(fires("crates/core/src/runtime.rs", neg, "D006"), 0);
    // crates/bench is exempt: swap-pause benches time for real.
    assert_eq!(fires("crates/bench/src/bin/replan_swap.rs", pos, "D006"), 0);
    // Test paths are exempt wholesale.
    assert_eq!(fires("tests/adaptive.rs", pos, "D006"), 0);
}

#[test]
fn r001_unwrap_expect() {
    let pos = include_str!("fixtures/r001_pos.rs");
    let neg = include_str!("fixtures/r001_neg.rs");
    let hits = fire_at("crates/core/src/engine.rs", pos, "R001");
    assert_eq!(hits.len(), 2, "one unwrap + one expect: {hits:?}");
    // Tests may unwrap: the #[cfg(test)] module is exempt.
    assert_eq!(fires("crates/core/src/engine.rs", neg, "R001"), 0);
    // Integration-test paths are exempt wholesale.
    assert_eq!(fires("tests/chaos.rs", pos, "R001"), 0);
}

#[test]
fn r002_must_use() {
    let pos = include_str!("fixtures/r002_pos.rs");
    let neg = include_str!("fixtures/r002_neg.rs");
    assert_eq!(fires("crates/gigascope/src/snapshot.rs", pos, "R002"), 1);
    assert_eq!(fires("crates/gigascope/src/channel.rs", pos, "R002"), 1);
    // A reasoned #[must_use = "…"] satisfies the rule; private helpers
    // returning Result are not covered.
    assert_eq!(fires("crates/gigascope/src/snapshot.rs", neg, "R002"), 0);
    // Scope: only the durable-artifact codecs are covered.
    assert_eq!(fires("crates/gigascope/src/executor.rs", pos, "R002"), 0);
}

#[test]
fn r003_deny_unsafe() {
    let pos = include_str!("fixtures/r003_pos.rs");
    let neg = include_str!("fixtures/r003_neg.rs");
    assert_eq!(fires("crates/fake/src/lib.rs", pos, "R003"), 1);
    assert_eq!(fires("crates/fake/src/lib.rs", neg, "R003"), 0);
    // Only crate roots carry the attribute.
    assert_eq!(fires("crates/fake/src/util.rs", pos, "R003"), 0);
}

#[test]
fn r004_todo_unimplemented() {
    let pos = include_str!("fixtures/r004_pos.rs");
    let neg = include_str!("fixtures/r004_neg.rs");
    let hits = fire_at("crates/core/src/engine.rs", pos, "R004");
    assert_eq!(hits.len(), 2, "todo! + unimplemented!: {hits:?}");
    assert_eq!(fires("crates/core/src/engine.rs", neg, "R004"), 0);
}

#[test]
fn r005_panic_boundary() {
    let pos = include_str!("fixtures/r005_pos.rs");
    let neg = include_str!("fixtures/r005_neg.rs");
    let hits = fire_at("crates/gigascope/src/shard.rs", pos, "R005");
    assert_eq!(hits.len(), 2, "catch_unwind + resume_unwind: {hits:?}");
    assert_eq!(fires("crates/gigascope/src/shard.rs", neg, "R005"), 0);
    // The supervisor is the one sanctioned home for panic boundaries.
    assert_eq!(fires("crates/gigascope/src/supervise.rs", pos, "R005"), 0);
    // Test paths are exempt wholesale.
    assert_eq!(fires("tests/supervision.rs", pos, "R005"), 0);
}

#[test]
fn r009_bare_file_writes() {
    let pos = include_str!("fixtures/r009_pos.rs");
    let neg = include_str!("fixtures/r009_neg.rs");
    let hits = fire_at("crates/gigascope/src/snapshot.rs", pos, "R009");
    assert_eq!(hits.len(), 3, "File::create + write_all + rename: {hits:?}");
    assert_eq!(fires("crates/gigascope/src/snapshot.rs", neg, "R009"), 0);
    // store.rs files are the sanctioned home for raw file mutation.
    assert_eq!(fires("crates/stream/src/store.rs", pos, "R009"), 0);
    assert_eq!(fires("crates/gigascope/src/store.rs", pos, "R009"), 0);
    // Lint report output and bench results emission are exempt.
    assert_eq!(fires("crates/lint/src/main.rs", pos, "R009"), 0);
    assert_eq!(fires("crates/bench/src/bin/fig01.rs", pos, "R009"), 0);
    // Test paths are exempt wholesale.
    assert_eq!(fires("tests/recovery.rs", pos, "R009"), 0);
}

#[test]
fn r006_workspace_name_audit() {
    use msa_lint::rules::r006_workspace;
    let pos = include_str!("fixtures/r006_pos.rs");
    let neg = include_str!("fixtures/r006_neg.rs");
    let bounds = "pub struct BoundsReport { pub feed_lost: u64 }";
    let files = |src: &str| {
        vec![
            ("crates/gigascope/src/channel.rs".to_owned(), src.to_owned()),
            (msa_lint::rules::BOUNDS_PATH.to_owned(), bounds.to_owned()),
        ]
    };
    // `records_leaked` is incremented but folded nowhere and absent
    // from bounds.rs: one finding naming both missing halves.
    let hits = r006_workspace(&files(pos));
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("records_leaked"));
    assert!(hits[0].message.contains("merge"));
    assert!(hits[0].message.contains("bounds.rs"));
    // `feed_lost` is folded by merge() and surfaced by bounds.rs.
    assert!(r006_workspace(&files(neg)).is_empty());
    // Scope: only gigascope sources carry the loss-ledger invariant.
    let other = vec![("crates/core/src/engine.rs".to_owned(), pos.to_owned())];
    assert!(r006_workspace(&other).is_empty());
    // Test paths are exempt wholesale.
    let test_path = vec![(
        "crates/gigascope/tests/bounds.rs".to_owned(),
        pos.to_owned(),
    )];
    assert!(r006_workspace(&test_path).is_empty());
}

#[test]
fn literals_comments_and_fn_defs_do_not_fire() {
    // Two false-positive classes stay dead: rule tokens inside string
    // literals and doc comments (masked by the lexer), and fn
    // *definitions* whose names collide with flagged call sites
    // (`fn now(` is not a wall-clock read).
    let src = "/// Call now() or `Instant::now()` in prose all you like.\n\
               pub fn describe() -> &'static str { \"Instant::now() spawn( catch_unwind( .unwrap()\" }\n\
               fn now(x: u64) -> u64 { x }\n\
               fn spawn(x: u64) -> u64 { x }\n\
               fn catch_unwind(x: u64) -> u64 { x }\n";
    let linted = lint_source("crates/gigascope/src/executor.rs", src);
    assert!(linted.findings.is_empty(), "{:?}", linted.findings);
}

#[test]
fn every_rule_has_a_fixture_pair() {
    // Catalog drift guard: adding a rule without fixtures fails here.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for rule in msa_lint::rules::CATALOG {
        let stem = rule.id.to_ascii_lowercase();
        for kind in ["pos", "neg"] {
            let path = dir.join(format!("{stem}_{kind}.rs"));
            assert!(path.is_file(), "missing fixture {}", path.display());
        }
    }
}

#[test]
fn inline_pragma_suppresses_fixture_findings() {
    let src =
        "pub fn f(xs: &[u32]) -> u32 { xs.first().copied().unwrap() } // msa-lint: allow(R001)\n";
    let linted = lint_source("crates/core/src/engine.rs", src);
    assert!(linted.findings.is_empty());
    assert_eq!(linted.inline_suppressed, 1);
}
