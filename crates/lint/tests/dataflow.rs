//! The dataflow rules (D007 / R007 / R008) against their fixtures —
//! including a three-crate fixture workspace proving the engine tracks
//! taint *across crate boundaries*, not just within a file.
//!
//! Fixtures live under `tests/fixtures/` (skipped by the workspace
//! scan) and are mapped here onto the synthetic workspace-relative
//! paths each rule scopes on.

use msa_lint::dataflow::analyze;
use msa_lint::rules::Finding;

fn run(files: &[(&str, &str)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| ((*rel).to_owned(), (*src).to_owned()))
        .collect();
    analyze(&owned)
}

fn only(findings: &[Finding], rule: &str) -> Vec<Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .cloned()
        .collect()
}

#[test]
fn d007_taint_reaches_sinks_only_through_calls() {
    let pos = include_str!("fixtures/d007_pos.rs");
    let neg = include_str!("fixtures/d007_neg.rs");
    let hits = only(&run(&[("crates/gigascope/src/snapshot.rs", pos)]), "D007");
    // One per sink: the `snap.digest = salt ^ epoch` field write and
    // the `encode_digest(out, salt)` encoder argument. Both salts come
    // out of `tag()` → `widen()` — two calls deep from the `as *const`
    // pointer cast, so a purely lexical check cannot see either.
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(
        hits.iter().any(|f| f.message.contains("digest")),
        "{hits:?}"
    );
    assert!(run(&[("crates/gigascope/src/snapshot.rs", neg)]).is_empty());
}

#[test]
fn d007_taint_crosses_crate_boundaries() {
    // timeutil derives a value from thread identity; gigascope's codec
    // writes its parameter into the snapshot digest; core's engine
    // connects the two. The violation exists only in the composition —
    // each crate alone is clean — and must be reported at the engine's
    // call site.
    let timeutil = include_str!("fixtures/xcrate/timeutil.rs");
    let snapshot = include_str!("fixtures/xcrate/gigascope_snapshot.rs");
    let engine = include_str!("fixtures/xcrate/core_engine.rs");
    let hits = only(
        &run(&[
            ("crates/timeutil/src/lib.rs", timeutil),
            ("crates/gigascope/src/snapshot.rs", snapshot),
            ("crates/core/src/engine.rs", engine),
        ]),
        "D007",
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].file, "crates/core/src/engine.rs");
    assert!(
        hits[0].message.contains("encode_digest"),
        "{}",
        hits[0].message
    );
    // Each crate alone: no finding.
    assert!(run(&[("crates/timeutil/src/lib.rs", timeutil)]).is_empty());
    assert!(run(&[("crates/gigascope/src/snapshot.rs", snapshot)]).is_empty());
}

#[test]
fn r007_increment_hidden_behind_a_helper() {
    let pos = include_str!("fixtures/r007_pos.rs");
    let neg = include_str!("fixtures/r007_neg.rs");
    let bounds = "pub struct BoundsReport { pub records_spilled_lost: u64 }";
    // The increment happens inside `bump(&mut self.records_spilled_lost)`
    // — no `+=` ever touches the counter name directly — and the merge
    // fn folds a different field: one conservation finding.
    let hits = only(
        &run(&[
            ("crates/gigascope/src/spill.rs", pos),
            ("crates/gigascope/src/bounds.rs", bounds),
        ]),
        "R007",
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(
        hits[0].message.contains("records_spilled_lost"),
        "{}",
        hits[0].message
    );
    // Same helper-mediated increment, but merge folds the counter and
    // bounds.rs surfaces it: clean.
    assert!(run(&[
        ("crates/gigascope/src/spill.rs", neg),
        ("crates/gigascope/src/bounds.rs", bounds),
    ])
    .is_empty());
}

#[test]
fn r008_panic_sites_on_the_hot_path() {
    let pos = include_str!("fixtures/r008_pos.rs");
    let neg = include_str!("fixtures/r008_neg.rs");
    // offer → admit → probe: the unclamped `%` and the slot indexing
    // both sit two hops from the per-record entry point.
    let hits = only(&run(&[("crates/gigascope/src/table.rs", pos)]), "R008");
    assert_eq!(hits.len(), 2, "{hits:?}");
    for f in &hits {
        assert!(
            f.message.contains("offer -> admit -> probe"),
            "{}",
            f.message
        );
    }
    // Clamped modulo + get_mut, and an unwrap four hops out (beyond the
    // reachability horizon): clean.
    assert!(run(&[("crates/gigascope/src/table.rs", neg)]).is_empty());
    // The chunked ingestion entry points are roots too: a panic site
    // reachable from offer_chunk (or run_chunked) is on the hot path
    // even when nothing named `offer` exists in the file.
    let chunk_pos = "pub struct Lfta { slots: Vec<u64> }\n\
         impl Lfta {\n\
             pub fn run_chunked(&mut self, keys: &[u64]) {\n\
                 for &k in keys { self.offer_chunk(k); }\n\
             }\n\
             pub fn offer_chunk(&mut self, key: u64) {\n\
                 self.apply(key);\n\
             }\n\
             fn apply(&mut self, key: u64) {\n\
                 let idx = (key % self.slots.len() as u64) as usize;\n\
                 self.slots[idx] += 1;\n\
             }\n\
         }\n";
    let hits = only(
        &run(&[("crates/gigascope/src/executor.rs", chunk_pos)]),
        "R008",
    );
    assert_eq!(hits.len(), 2, "{hits:?}");
    for f in &hits {
        assert!(f.message.contains("offer_chunk -> apply"), "{}", f.message);
    }
    // supervise.rs is the sanctioned catch_unwind boundary: the same
    // violating source there produces no hot-path roots.
    assert!(run(&[("crates/gigascope/src/supervise.rs", pos)]).is_empty());
    // Outside gigascope there is no per-record hot path to protect.
    assert!(run(&[("crates/optimizer/src/table.rs", pos)]).is_empty());
}
