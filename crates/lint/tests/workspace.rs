//! The linter against the real tree: the workspace must gate green,
//! every committed `lint.toml` entry must still match a live source
//! site (no stale grandfather clauses), and an injected violation must
//! flip the report to failing.

use msa_lint::rules::CATALOG;
use msa_lint::{lint_workspace, Report};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the root")
        .to_path_buf()
}

fn lint_real_tree() -> Report {
    lint_workspace(&workspace_root()).expect("workspace lints")
}

#[test]
fn workspace_is_clean() {
    let report = lint_real_tree();
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}:{}:{} {}", f.file, f.line, f.col, f.rule))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files > 50, "scanned only {} files", report.files);
}

#[test]
fn allowlist_has_no_stale_entries() {
    // Every lint.toml entry must still suppress a real finding; a fixed
    // site must shed its grandfather clause in the same change. The
    // last grandfathered sites were refactored away, so today the list
    // is empty — this ratchets: a new entry needs a justification AND
    // must actually suppress something, or the stale check fires.
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists");
    let entries = msa_lint::allowlist::parse(&text).expect("lint.toml parses");
    let report = lint_real_tree();
    assert!(
        report.stale.is_empty(),
        "stale entries: {:?}",
        report
            .stale
            .iter()
            .map(|e| (e.rule.as_str(), e.file.as_str()))
            .collect::<Vec<_>>()
    );
    assert!(report.allow_suppressed >= entries.len());
}

#[test]
fn catalog_holds_all_sixteen_rules() {
    assert_eq!(CATALOG.len(), 16);
    let ids: Vec<&str> = CATALOG.iter().map(|r| r.id).collect();
    assert_eq!(
        ids,
        [
            "D001", "D002", "D003", "D004", "D005", "D006", "D007", "R001", "R002", "R003", "R004",
            "R005", "R006", "R007", "R008", "R009"
        ]
    );
}

#[test]
fn stale_allowlist_entry_fails_with_a_named_diagnostic() {
    // A lint.toml entry that matches nothing is a fixed site whose
    // grandfather clause outlived it: the run must fail and the
    // StaleAllow diagnostic must name the entry.
    let dir = std::env::temp_dir().join(format!("msa-lint-stale-{}", std::process::id()));
    let src_dir = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![deny(unsafe_code)]\npub fn f(x: u64) -> u64 { x }\n",
    )
    .expect("source");
    std::fs::write(
        dir.join("lint.toml"),
        "[[allow]]\n\
         rule = \"R001\"\n\
         file = \"crates/demo/src/lib.rs\"\n\
         contains = \".unwrap()\"\n\
         justification = \"site was refactored away; entry left behind on purpose\"\n",
    )
    .expect("allowlist");
    let report = lint_workspace(&dir).expect("lints");
    std::fs::remove_dir_all(&dir).ok();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(!report.clean(), "stale entry must fail the run");
    assert_eq!(report.stale.len(), 1);
    let rendered = msa_lint::diag::render_stale(&report.stale[0]);
    assert!(rendered.contains("StaleAllow"), "{rendered}");
    assert!(rendered.contains("R001"), "{rendered}");
    assert!(rendered.contains("crates/demo/src/lib.rs"), "{rendered}");
    assert!(rendered.contains(".unwrap()"), "{rendered}");
}

#[test]
fn r006_cross_file_half_fires_in_a_scratch_workspace() {
    // A gigascope counter folded in its merge fn but absent from
    // bounds.rs must still fail the run — the workspace-level half.
    let dir = std::env::temp_dir().join(format!("msa-lint-r006-{}", std::process::id()));
    let src_dir = dir.join("crates/gigascope/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![deny(unsafe_code)]\n\
         pub struct S { pub records_vanished: u64 }\n\
         impl S { pub fn merge(&mut self, o: &S) { let S { records_vanished } = o; \
         self.records_vanished += records_vanished; } }\n",
    )
    .expect("source");
    std::fs::write(
        src_dir.join("bounds.rs"),
        "#![deny(unsafe_code)]\npub struct BoundsReport;\n",
    )
    .expect("bounds");
    let report = lint_workspace(&dir).expect("lints");
    std::fs::remove_dir_all(&dir).ok();
    let r006: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "R006")
        .collect();
    assert_eq!(r006.len(), 1, "{r006:?}");
    assert!(r006[0].message.contains("records_vanished"));
    assert!(r006[0].message.contains("bounds.rs"));
}

#[test]
fn injected_violation_fails_the_run() {
    // A scratch workspace with one violating file must produce findings
    // — proving the gate actually gates.
    let dir = std::env::temp_dir().join(format!("msa-lint-inject-{}", std::process::id()));
    let src_dir = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![deny(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("source");
    let report = lint_workspace(&dir).expect("lints");
    std::fs::remove_dir_all(&dir).ok();
    assert!(!report.clean());
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "R001");
    assert_eq!(report.findings[0].file, "crates/demo/src/lib.rs");
}
