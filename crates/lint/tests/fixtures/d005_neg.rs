//! FIXTURE (D005 negative): no thread creation; `spawn` appears only
//! as a plain identifier and inside test code.
pub fn sequential_sum(parts: &[Vec<u64>]) -> u64 {
    parts.iter().map(|p| p.iter().sum::<u64>()).sum()
}

/// A field named `spawn` is not a call.
pub struct Knobs {
    pub spawn: bool,
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_in_tests_are_fine() {
        let h = std::thread::spawn(|| 1u64);
        assert_eq!(h.join().unwrap_or(0), 1);
    }
}
