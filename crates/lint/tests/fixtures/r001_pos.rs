//! FIXTURE (R001 positive): panicking shortcuts in library code.
pub fn first_two(xs: &[u32]) -> u32 {
    let head = *xs.first().unwrap();
    let next = *xs.get(1).expect("two elements");
    head + next
}
