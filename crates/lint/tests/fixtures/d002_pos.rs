//! FIXTURE (D002 positive): default-hasher map in stream state.
use std::collections::{HashMap, HashSet};

pub fn group_counts() -> HashMap<u32, u64> {
    let mut seen: HashSet<u32> = HashSet::with_capacity(16);
    seen.insert(1);
    HashMap::new()
}
