//! D007 positive fixture: a pointer-derived value is laundered through
//! two helper calls before landing in a snapshot digest field and in an
//! encoder argument — only interprocedural taint tracking connects the
//! source to either sink.

pub struct Snapshot {
    pub digest: u64,
    pub epoch: u64,
}

fn tag(x: &u64) -> u64 {
    let p = x as *const u64 as usize;
    widen(p as u64)
}

fn widen(v: u64) -> u64 {
    v.rotate_left(1)
}

pub fn seal(snap: &mut Snapshot, epoch: u64) {
    let salt = tag(&epoch);
    snap.epoch = epoch;
    snap.digest = salt ^ epoch;
}

pub fn write_header(out: &mut Vec<u8>, snap: &Snapshot) {
    let salt = tag(&snap.epoch);
    encode_digest(out, salt);
}

fn encode_digest(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
