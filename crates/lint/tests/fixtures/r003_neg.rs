//! FIXTURE (R003 negative): crate root forbids unsafe code.
#![deny(unsafe_code)]

pub fn noop() {}
