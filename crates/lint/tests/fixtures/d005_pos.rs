//! FIXTURE (D005 positive): ad-hoc thread spawning in engine code.
use std::thread;

pub fn fan_out(parts: Vec<Vec<u64>>) -> u64 {
    let handles: Vec<_> = parts
        .into_iter()
        .map(|p| thread::spawn(move || p.iter().sum::<u64>()))
        .collect();
    let mut total = 0;
    for h in handles {
        total += h.join().unwrap_or(0);
    }
    total
}

pub fn scoped(parts: &[Vec<u64>]) -> u64 {
    std::thread::scope(|s| {
        let hs: Vec<_> = parts
            .iter()
            .map(|p| s.spawn(move || p.iter().sum::<u64>()))
            .collect();
        hs.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    })
}
