//! FIXTURE (D004 negative): tolerance compare and total ordering.
pub fn is_unit_cost(cost: f64) -> bool {
    (cost - 1.0).abs() < 1e-9
}

pub fn same_cost(a: f64, b: f64) -> bool {
    a.total_cmp(&b).is_eq()
}
