//! R006 negative fixture: every pub loss counter in the file is folded
//! by the owning struct's merge fn (exhaustive destructure, the
//! satellite-1 idiom), so the per-file half stays silent.

pub struct Stats {
    pub delivered: u64,
    pub records_leaked: u64,
    pub feed_lost: u64,
}

impl Stats {
    pub fn merge(&mut self, other: &Stats) {
        let Stats {
            delivered,
            records_leaked,
            feed_lost,
        } = other;
        self.delivered += delivered;
        self.records_leaked += records_leaked;
        self.feed_lost += feed_lost;
    }
}
