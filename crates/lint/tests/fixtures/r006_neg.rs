//! R006 negative fixture: the incremented loss counter is folded by
//! the owning struct's merge fn and surfaced in the synthetic bounds.rs
//! the test supplies, so the workspace name audit stays silent. The
//! saturating_add form must count as an increment, too.

pub struct Stats {
    pub delivered: u64,
    pub feed_lost: u64,
}

impl Stats {
    pub fn on_drop(&mut self) {
        self.feed_lost = self.feed_lost.saturating_add(1);
    }

    pub fn merge(&mut self, other: &Stats) {
        self.delivered += other.delivered;
        self.feed_lost += other.feed_lost;
    }
}
