//! FIXTURE (D002 negative): seeded-hasher aliases and ordered maps.
use std::collections::BTreeMap;

pub fn group_counts() -> BTreeMap<u32, u64> {
    let map: BTreeMap<u32, u64> = BTreeMap::new();
    map
}
