//! Cross-crate fixture, crate 1 of 3 (mapped to
//! crates/timeutil/src/lib.rs): derives a value from thread identity.
//! Creating the source is not the violation — where it lands is.

pub fn worker_tag() -> u64 {
    let raw = &std::thread::current() as *const _ as usize;
    stretch(raw as u64)
}

fn stretch(x: u64) -> u64 {
    x.rotate_left(9)
}
