//! Cross-crate fixture, crate 3 of 3 (mapped to
//! crates/core/src/engine.rs): stamps a worker tag into the snapshot
//! digest — thread identity crossing two crate boundaries before it
//! reaches the sink. D007 must flag the call site here.

pub fn finish(snap: &mut Snapshot) {
    let t = worker_tag();
    encode_digest(snap, t);
}
