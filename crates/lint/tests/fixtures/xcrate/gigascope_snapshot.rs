//! Cross-crate fixture, crate 2 of 3 (mapped to
//! crates/gigascope/src/snapshot.rs): the codec whose value parameter
//! flows into the snapshot digest — a sink summary other crates inherit.

pub struct Snapshot {
    pub digest: u64,
}

pub fn encode_digest(snap: &mut Snapshot, v: u64) {
    snap.digest = v;
}
