//! R009 positive fixture: three bare file-mutation call sites — a
//! `File::create`, an unsynced `.write_all(`, and a `fs::rename` —
//! none of which fsync, so a crash mid-save leaves a torn artifact.

use std::fs::File;
use std::io::Write;

pub fn save(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    std::fs::rename(path, format!("{path}.done"))?;
    Ok(())
}
