//! FIXTURE (D003 positive): lossy narrowing cast in a codec.
pub fn encode_len(len: usize) -> u8 {
    len as u8
}
