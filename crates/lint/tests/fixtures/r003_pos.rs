//! FIXTURE (R003 positive): crate root without #![deny(unsafe_code)].
#![warn(missing_docs)]

pub fn noop() {}
