//! FIXTURE (D004 positive): exact float equality in a cost model.
pub fn is_unit_cost(cost: f64) -> bool {
    cost == 1.0
}
