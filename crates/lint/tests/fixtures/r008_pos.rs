//! R008 positive fixture: offer() → admit() → probe() puts probe two
//! call-graph hops from the per-record entry point; its modulo by an
//! unproven-nonzero length and its slot indexing are implicit panic
//! sites on the hot path.

pub struct Table {
    slots: Vec<u64>,
}

impl Table {
    pub fn offer(&mut self, key: u64) {
        self.admit(key);
    }

    fn admit(&mut self, key: u64) {
        self.probe(key);
    }

    fn probe(&mut self, key: u64) {
        let idx = (key % self.slots.len() as u64) as usize;
        self.slots[idx] += 1;
    }
}
