//! FIXTURE (R002 negative): the Result carries a must_use reason.
pub struct Corrupt;

#[must_use = "dropping a decode result hides corruption"]
pub fn decode(bytes: &[u8]) -> Result<u32, Corrupt> {
    bytes.first().map(|b| u32::from(*b)).ok_or(Corrupt)
}

fn helper() -> Result<(), Corrupt> {
    Ok(())
}
