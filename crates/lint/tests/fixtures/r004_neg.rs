//! FIXTURE (R004 negative): placeholders only inside tests.
pub fn eviction_rate() -> f64 {
    0.0
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "scaffolding"]
    fn pending() {
        todo!("flesh out once the model lands")
    }
}
