//! R006 positive fixture: a loss counter incremented on the drop path
//! but never mentioned in any merge/absorb fn nor in bounds.rs. The
//! audit is workspace-level (name presence across files), so the test
//! drives `r006_workspace` with this file plus a synthetic bounds.rs.

pub struct Stats {
    pub delivered: u64,
    pub records_leaked: u64,
}

impl Stats {
    pub fn on_drop(&mut self) {
        self.records_leaked += 1;
    }

    pub fn merge(&mut self, other: &Stats) {
        self.delivered += other.delivered;
    }
}
