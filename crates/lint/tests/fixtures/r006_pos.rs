//! R006 positive fixture: a pub loss counter whose owning file has a
//! merge fn that forgets to fold it. (The cross-file bounds.rs half is
//! exercised at workspace level, not through lint_source.)

pub struct Stats {
    pub delivered: u64,
    pub records_leaked: u64,
    pub feed_lost: u64,
}

impl Stats {
    pub fn merge(&mut self, other: &Stats) {
        self.delivered += other.delivered;
        self.feed_lost += other.feed_lost;
    }
}
