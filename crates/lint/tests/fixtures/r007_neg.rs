//! R007 negative fixture: the same &mut-helper increment passes once
//! the merge fn folds the counter and bounds.rs (supplied by the test)
//! surfaces it.

pub struct SpillLedger {
    pub records_spilled_lost: u64,
}

fn bump(slot: &mut u64) {
    *slot += 1;
}

impl SpillLedger {
    pub fn on_spill(&mut self) {
        bump(&mut self.records_spilled_lost);
    }

    pub fn merge(&mut self, other: &SpillLedger) {
        self.records_spilled_lost += other.records_spilled_lost;
    }
}
