//! FIXTURE (D006 negative): every trigger is record-counted; `now` and
//! `elapsed` appear only as field names, never as calls; wall-clock
//! calls appear only inside test code.
pub struct DriftDetector {
    /// Records seen since the last check (the only "clock" allowed).
    pub records_since_check: u64,
    /// A field merely *named* now is not a clock read.
    pub now: u64,
}

impl DriftDetector {
    pub fn due(&self, check_every_records: u64) -> bool {
        self.records_since_check >= check_every_records.max(1)
    }

    pub fn elapsed_epochs(&self, epoch: u64, since: u64) -> u64 {
        epoch.saturating_sub(since)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let t = std::time::Instant::now();
        let _ = t.elapsed();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
