//! FIXTURE (R005 negative): no panic boundary; the names appear only
//! as plain identifiers and inside test code.

/// A field named after the forbidden call is not a call.
pub struct Knobs {
    pub catch_unwind: bool,
    pub resume_unwind: bool,
}

pub fn describe(k: &Knobs) -> &'static str {
    if k.catch_unwind {
        "catch_unwind requested"
    } else {
        "plain"
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn boundaries_in_tests_are_fine() {
        let caught = std::panic::catch_unwind(|| 1u64);
        assert_eq!(caught.unwrap_or(0), 1);
    }
}
