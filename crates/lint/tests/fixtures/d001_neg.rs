//! FIXTURE (D001 negative): time derives from record timestamps;
//! wall-clock reads appear only inside test code.
pub fn epoch_of(ts_micros: u64, epoch_micros: u64) -> u64 {
    ts_micros / epoch_micros.max(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _t = std::time::Instant::now();
    }
}
