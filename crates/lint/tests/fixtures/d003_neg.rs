//! FIXTURE (D003 negative): checked conversion; widening casts stay.
pub fn encode_len(len: usize) -> Result<u8, core::num::TryFromIntError> {
    let wide = len as u64;
    let _ = wide;
    u8::try_from(len)
}
