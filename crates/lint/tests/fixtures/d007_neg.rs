//! D007 negative fixture: the digest is derived from record data and
//! epoch counters only, and the wall clock is read strictly inside
//! #[cfg(test)] code, where its value never escapes.

pub struct Snapshot {
    pub digest: u64,
    pub epoch: u64,
}

fn fold(seed: u64, v: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(v)
}

pub fn seal(snap: &mut Snapshot, epoch: u64, records: &[u64]) {
    let mut d = epoch;
    for r in records {
        d = fold(d, *r);
    }
    snap.epoch = epoch;
    snap.digest = d;
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_stays_here() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}
