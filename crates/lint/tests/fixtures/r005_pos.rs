//! FIXTURE (R005 positive): ad-hoc panic boundaries in engine code.
use std::panic::{catch_unwind, AssertUnwindSafe};

pub fn swallow(work: impl FnOnce() -> u64) -> u64 {
    // A stray boundary: the shard death never reaches the supervisor.
    catch_unwind(AssertUnwindSafe(work)).unwrap_or(0)
}

pub fn reraise(payload: Box<dyn std::any::Any + Send>) -> ! {
    // Re-raising across threads what supervision should have absorbed.
    std::panic::resume_unwind(payload)
}
