//! FIXTURE (D001 positive): wall-clock reads in engine code.
use std::time::Instant;

pub fn elapsed_micros() -> u64 {
    let started = Instant::now();
    started.elapsed().as_micros() as u64
}
