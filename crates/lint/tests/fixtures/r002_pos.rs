//! FIXTURE (R002 positive): public codec Result without #[must_use].
pub struct Corrupt;

pub fn decode(bytes: &[u8]) -> Result<u32, Corrupt> {
    bytes.first().map(|b| u32::from(*b)).ok_or(Corrupt)
}
