//! R007 positive fixture: the spill ledger's loss counter is bumped
//! through a &mut helper — invisible to name-presence checks at the
//! increment site — and the merge fn folds a *different* field, so the
//! counter's def-use closure never reaches a fold or bounds.rs.

pub struct SpillLedger {
    pub records_spilled_lost: u64,
    pub seen_total: u64,
}

fn bump(slot: &mut u64) {
    *slot += 1;
}

impl SpillLedger {
    pub fn on_spill(&mut self) {
        bump(&mut self.records_spilled_lost);
    }

    pub fn merge(&mut self, other: &SpillLedger) {
        self.seen_total += other.seen_total;
    }
}
