//! FIXTURE (D006 positive): aliased clock imports dodge D001's
//! identifier check, but the call sites cannot hide.
use std::time::Instant as Clk;
use std::time::SystemTime as Wall;

pub fn drift_check_due(last: Clk) -> bool {
    let t = Clk::now();
    t.duration_since(last).as_secs() > 60
}

pub fn wait_for_quiesce() {
    std::thread::sleep(std::time::Duration::from_millis(10));
    let _epoch = Wall::now();
}

pub fn swap_pause_micros(started: Clk) -> u128 {
    started.elapsed().as_micros()
}
