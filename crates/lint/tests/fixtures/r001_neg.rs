//! FIXTURE (R001 negative): errors propagate; tests may unwrap.
pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first(&[7]).unwrap(), 7);
    }
}
