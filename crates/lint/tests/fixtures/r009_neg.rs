//! R009 negative fixture: durable bytes go through the store's atomic
//! write; read-side `File::open` and look-alike identifiers (a fn
//! *named* rename, a `create` that is not `File::create`) stay silent.

use std::io::Read;

pub fn save(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    msa_stream::store::atomic_write(path, bytes)
}

pub fn load(path: &str) -> std::io::Result<Vec<u8>> {
    let mut f = std::fs::File::open(path)?;
    let mut out = Vec::new();
    f.read_to_end(&mut out)?;
    Ok(out)
}

pub struct Planner;

impl Planner {
    pub fn create(config: u64) -> Planner {
        let _ = config;
        Planner
    }
}

// A *definition* named rename is not a rename call site.
pub fn rename(label: &str) -> String {
    format!("renamed-{label}")
}

pub fn relabel() -> Planner {
    Planner::create(7)
}
