//! FIXTURE (R004 positive): placeholder panics in library code.
pub fn eviction_rate() -> f64 {
    todo!("derive from the collision model")
}

pub fn spill_policy() -> u32 {
    unimplemented!()
}
