//! R008 negative fixture: the same shape refactored panic-free — a
//! clamped modulo and get_mut with an explicit miss path — plus an
//! unwrap parked four hops out, beyond the reachability horizon.

pub struct Table {
    slots: Vec<u64>,
}

impl Table {
    pub fn offer(&mut self, key: u64) {
        self.admit(key);
    }

    fn admit(&mut self, key: u64) {
        self.probe(key);
        self.audit(key);
    }

    fn probe(&mut self, key: u64) {
        let len = self.slots.len() as u64;
        let idx = (key % len.max(1)) as usize;
        if let Some(slot) = self.slots.get_mut(idx) {
            *slot += 1;
        }
    }

    fn audit(&self, key: u64) {
        self.deep(key);
    }

    fn deep(&self, key: u64) {
        self.very_deep(key);
    }

    fn very_deep(&self, key: u64) {
        let v: Option<u64> = Some(key);
        let _ = v.unwrap();
    }
}
