//! The rule catalog: determinism (D…) and robustness (R…) invariants.
//!
//! Every rule is a token-level check over one [`FileCtx`]. The checks
//! are deliberately heuristic — they flag the syntactic chokepoints of
//! each invariant (construction sites, cast sites, call sites) rather
//! than attempting type inference — and the `lint.toml` allowlist plus
//! inline `// msa-lint: allow(…)` pragmas absorb the justified
//! exceptions. The catalog is wired to the recovery-equality guarantee
//! of DESIGN.md §8: each D-rule removes one way a recovered run could
//! diverge bit-wise from an uninterrupted one.

use crate::lexer::{Token, TokenKind};
use crate::scope::{attr_group, FileCtx};

/// How severe a finding is. Both severities gate CI; the split exists
/// so the renderer can distinguish "broken invariant" from "missing
/// annotation".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// A determinism or robustness invariant is violated.
    Error,
    /// A required annotation is missing.
    Warning,
}

impl Severity {
    /// Lowercase label used by the renderer.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id (`D001`…).
    pub rule: &'static str,
    /// Severity of the rule that fired.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Width (in characters) of the offending token, for underlining.
    pub width: u32,
    /// What is wrong, specifically.
    pub message: String,
    /// How to fix it.
    pub help: &'static str,
    /// Full text of the offending source line (used for allowlist
    /// matching and rendering).
    pub snippet: String,
}

/// A catalog entry: identity, documentation and the check itself.
pub struct Rule {
    /// Stable id (`D001`…), used in pragmas and the allowlist.
    pub id: &'static str,
    /// `determinism` or `robustness`.
    pub group: &'static str,
    /// Severity of this rule's findings.
    pub severity: Severity,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    /// Suggested fix, rendered as the diagnostic's `help:` line.
    pub help: &'static str,
    /// The check. Receives its own catalog entry so findings carry the
    /// rule's id/severity/help without a by-id lookup.
    pub check: fn(&'static Rule, &FileCtx) -> Vec<Finding>,
}

/// The shipped rule catalog, in id order.
pub const CATALOG: &[Rule] = &[
    Rule {
        id: "D001",
        group: "determinism",
        severity: Severity::Error,
        summary: "no wall-clock or ambient randomness (SystemTime/Instant/thread_rng) outside crates/bench",
        help: "derive time from record timestamps / epoch counters and randomness from a seeded SplitMix64",
        check: d001_wall_clock,
    },
    Rule {
        id: "D002",
        group: "determinism",
        severity: Severity::Error,
        summary: "no default-hasher HashMap/HashSet in gigascope/stream state paths (use FastMap/FastSet or BTreeMap)",
        help: "use msa_stream::hash::{FastMap, FastSet} (fixed-seed) or a BTreeMap/BTreeSet, or sort before draining",
        check: d002_default_hasher,
    },
    Rule {
        id: "D003",
        group: "determinism",
        severity: Severity::Error,
        summary: "no narrowing `as` casts in snapshot.rs codecs (use try_from)",
        help: "use try_from and surface SnapshotError::Malformed instead of silently truncating",
        check: d003_lossy_casts,
    },
    Rule {
        id: "D004",
        group: "determinism",
        severity: Severity::Error,
        summary: "no float `==`/`!=` against literals in collision/optimizer model code",
        help: "compare with an explicit epsilon or total_cmp; exact float equality breaks across refactors",
        check: d004_float_eq,
    },
    Rule {
        id: "D005",
        group: "determinism",
        severity: Severity::Error,
        summary: "no thread spawning outside crates/gigascope/src/shard.rs and crates/bench",
        help: "route concurrency through shard::ShardedExecutor, whose merge order is deterministic; ad-hoc threads leak scheduling into results",
        check: d005_thread_spawn,
    },
    Rule {
        id: "D006",
        group: "determinism",
        severity: Severity::Error,
        summary: "no wall-clock call sites (.now()/.elapsed()/duration_since()/sleep()) in runtime crates outside crates/bench",
        help: "trigger on record counts and epoch boundaries instead; aliased clock imports dodge D001's type check, but the call site cannot hide",
        check: d006_wall_clock_calls,
    },
    Rule {
        id: "D007",
        group: "determinism",
        severity: Severity::Error,
        summary: "no nondeterminism source (hash-order iteration, wall-clock values, thread identity, pointer-derived values) flows into a snapshot/report/digest sink — tracked interprocedurally",
        help: "derive the sink's inputs from record data, epoch counters or seeded PRNGs; taint is tracked through calls and field assignments, so laundering through a helper does not hide it",
        check: workspace_only,
    },
    Rule {
        id: "R001",
        group: "robustness",
        severity: Severity::Error,
        summary: "no unwrap()/expect() in non-test code",
        help: "propagate with `?` and a typed error (MsaError in examples/bins), or grandfather the site in lint.toml",
        check: r001_unwrap,
    },
    Rule {
        id: "R002",
        group: "robustness",
        severity: Severity::Warning,
        summary: "public Result-returning fns in snapshot.rs/channel.rs carry #[must_use = \"…\"]",
        help: "add #[must_use = \"…\"] so the durability contract is visible (and enforced) at the definition",
        check: r002_must_use,
    },
    Rule {
        id: "R003",
        group: "robustness",
        severity: Severity::Error,
        summary: "every crate root declares #![deny(unsafe_code)]",
        help: "add #![deny(unsafe_code)] to the crate root",
        check: r003_deny_unsafe,
    },
    Rule {
        id: "R004",
        group: "robustness",
        severity: Severity::Error,
        summary: "no todo!/unimplemented! outside tests",
        help: "finish the implementation or gate the item out of non-test builds",
        check: r004_todo,
    },
    Rule {
        id: "R005",
        group: "robustness",
        severity: Severity::Error,
        summary: "no catch_unwind/resume_unwind outside crates/gigascope/src/supervise.rs",
        help: "route panic handling through supervise::ShardDriver; scattered panic boundaries hide shard deaths from the supervisor's restart/quarantine accounting",
        check: r005_panic_boundary,
    },
    Rule {
        id: "R006",
        group: "robustness",
        severity: Severity::Error,
        summary: "every incremented `records_*`/`*_lost` counter in gigascope appears in a merge/absorb fn and in bounds.rs (workspace-level name audit)",
        help: "fold the counter in the owning struct's merge()/absorb() and attribute it to a loss class in crates/gigascope/src/bounds.rs",
        check: workspace_only,
    },
    Rule {
        id: "R007",
        group: "robustness",
        severity: Severity::Error,
        summary: "every increment site of a loss/ledger counter (including via &mut helpers) is on a def-use path reaching both a merge/absorb fold and bounds.rs",
        help: "route the incremented counter's value into the owning struct's merge()/absorb() fold and into a crates/gigascope/src/bounds.rs loss class; R007 follows the flow, not the name",
        check: workspace_only,
    },
    Rule {
        id: "R008",
        group: "robustness",
        severity: Severity::Error,
        summary: "no unwrap/expect/indexing/unproven-divisor panic site within 3 call-graph hops of the per-record hot path (offer/offer_chunk/process/run/run_chunked/pump), outside supervise.rs",
        help: "replace with get()/get_mut() + an explicit miss path, clamp divisors with .max(1), or move the fallible work off the per-record path; supervise.rs is the only sanctioned panic boundary",
        check: workspace_only,
    },
    Rule {
        id: "R009",
        group: "robustness",
        severity: Severity::Error,
        summary: "no bare File::create/write_all/rename call sites outside store.rs (atomic-write discipline)",
        help: "route durable writes through msa_stream::store::atomic_write or a StorageBackend: write-temp, fsync file, atomic rename, fsync dir; a bare create/write/rename leaves torn files on crash",
        check: r009_bare_file_writes,
    },
];

/// Check fn for rules whose analysis runs at workspace level (via
/// [`crate::dataflow::analyze`] or [`r006_workspace`]) rather than per
/// file: the per-file pass contributes nothing.
fn workspace_only(_rule: &'static Rule, _ctx: &FileCtx) -> Vec<Finding> {
    Vec::new()
}

/// Looks a rule up by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    CATALOG.iter().find(|r| r.id == id)
}

fn finding(rule: &'static Rule, ctx: &FileCtx, tok: &Token, message: String) -> Finding {
    Finding {
        rule: rule.id,
        severity: rule.severity,
        file: ctx.rel_path.to_owned(),
        line: tok.line,
        col: tok.col,
        width: tok.text.chars().count().max(1) as u32,
        message,
        help: rule.help,
        snippet: ctx.line_text(tok.line).to_owned(),
    }
}

/// D001 — wall-clock reads and ambient randomness. `crates/bench` is
/// exempt (throughput measurement needs a real clock), as is all
/// test-path code.
fn d001_wall_clock(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    if ctx.crate_dir() == Some("bench") || ctx.is_test_path() {
        return Vec::new();
    }
    ctx.lexed
        .tokens
        .iter()
        .filter(|t| {
            t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "SystemTime" | "Instant" | "thread_rng")
                && !ctx.in_test_span(t.line)
        })
        .map(|t| {
            finding(
                rule,
                ctx,
                t,
                format!(
                    "`{}` breaks run-to-run determinism outside crates/bench",
                    t.text
                ),
            )
        })
        .collect()
}

/// D002 — default-hasher (`RandomState`) map/set construction in the
/// deterministic state paths. Iterating such a container yields a
/// process-random order, which bit-identical recovery (DESIGN.md §8)
/// cannot tolerate; construction is the chokepoint a lexer can see.
fn d002_default_hasher(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    let in_scope = ctx.rel_path.starts_with("crates/gigascope/src")
        || ctx.rel_path.starts_with("crates/stream/src");
    if !in_scope || ctx.is_test_path() {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || !matches!(t.text.as_str(), "HashMap" | "HashSet") {
            continue;
        }
        if ctx.in_test_span(t.line) {
            continue;
        }
        let ctor = toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| {
                matches!(
                    n.text.as_str(),
                    "new" | "default" | "with_capacity" | "from"
                )
            });
        if ctor {
            out.push(finding(
                rule,
                ctx,
                t,
                format!(
                    "`{}::{}` builds a RandomState-hashed container in a deterministic state path",
                    t.text,
                    toks[i + 2].text
                ),
            ));
        }
    }
    out
}

/// D003 — narrowing `as` casts inside the snapshot/eviction-log codecs.
/// A silent truncation there encodes garbage that decodes "successfully"
/// into wrong state. Widening casts (`as u64`, `as usize`, `as f64`) are
/// fine on the 64-bit targets the codecs assume.
fn d003_lossy_casts(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    if ctx.file_name() != "snapshot.rs" || ctx.is_test_path() {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("as") || ctx.in_test_span(t.line) {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind == TokenKind::Ident
            && matches!(
                target.text.as_str(),
                "u8" | "u16" | "u32" | "i8" | "i16" | "i32" | "f32"
            )
        {
            out.push(finding(
                rule,
                ctx,
                t,
                format!("narrowing `as {}` cast in a codec path", target.text),
            ));
        }
    }
    out
}

/// D004 — exact float comparison against a literal in the cost /
/// collision model crates. (Identifier-vs-identifier float comparisons
/// are invisible to a lexer; literals are the common and catchable case.)
fn d004_float_eq(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    let in_scope = ctx.rel_path.starts_with("crates/collision/src")
        || ctx.rel_path.starts_with("crates/optimizer/src");
    if !in_scope || ctx.is_test_path() {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || ctx.in_test_span(t.line) {
            continue;
        }
        let float_next = toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Float);
        let float_prev = i > 0 && toks[i - 1].kind == TokenKind::Float;
        if float_next || float_prev {
            out.push(finding(
                rule,
                ctx,
                t,
                format!("exact float `{}` comparison in model code", t.text),
            ));
        }
    }
    out
}

/// D005 — thread spawning outside the sharded runtime. All OS-thread
/// concurrency must flow through `shard::ShardedExecutor`, whose
/// shard-then-sequence merge keeps results independent of scheduling;
/// a `spawn` call anywhere else can leak thread interleaving into
/// deterministic state. `crates/bench` is exempt (wall-clock harnesses
/// may thread freely), as is test code.
fn d005_thread_spawn(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    if ctx.rel_path == "crates/gigascope/src/shard.rs"
        || ctx.crate_dir() == Some("bench")
        || ctx.is_test_path()
    {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "spawn" {
            continue;
        }
        // `thread::spawn(…)`, `scope.spawn(…)`, `Builder::…::spawn(…)` —
        // any call position counts; a bare identifier (e.g. a local
        // named `spawn`) does not, and neither does a definition
        // (`fn spawn(…)`), which has the same name+paren shape.
        let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !(i > 0 && toks[i - 1].is_ident("fn"));
        if is_call && !ctx.in_test_span(t.line) {
            out.push(finding(
                rule,
                ctx,
                t,
                "thread `spawn` outside crates/gigascope/src/shard.rs".to_owned(),
            ));
        }
    }
    out
}

/// D006 — wall-clock *call sites* in runtime crates. D001 flags the
/// type names (`SystemTime`, `Instant`), but `use std::time::Instant as
/// Clk;` walks straight past an identifier check — the adaptive
/// runtime's "never wall-clock" contract needs the calls themselves
/// gated. The chokepoints are the methods every clock read funnels
/// through (`now()`, `elapsed()`, `duration_since()`) plus `sleep()`
/// (a wall-clock *wait* is as nondeterministic as a read). Call
/// position only: a field or doc mention named `now` does not count.
/// `crates/bench` is exempt (throughput harnesses time for real), as is
/// test-path code.
fn d006_wall_clock_calls(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    if ctx.crate_dir() == Some("bench") || ctx.is_test_path() {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !matches!(
                t.text.as_str(),
                "now" | "elapsed" | "duration_since" | "sleep"
            )
        {
            continue;
        }
        // Call position only — a definition (`fn now(…)`) is not a
        // clock read even though it shares the name+paren shape.
        let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !(i > 0 && toks[i - 1].is_ident("fn"));
        if is_call && !ctx.in_test_span(t.line) {
            out.push(finding(
                rule,
                ctx,
                t,
                format!(
                    "wall-clock call `{}()` in a runtime crate; derive timing from record counts",
                    t.text
                ),
            ));
        }
    }
    out
}

/// R005 — `catch_unwind` / `resume_unwind` outside the shard
/// supervisor. Panic boundaries must stay in one place: a stray
/// `catch_unwind` swallows a shard death without the restart, replay
/// and quarantine accounting that keeps supervised runs exact, and a
/// stray `resume_unwind` re-raises across threads what the supervisor
/// should have absorbed.
fn r005_panic_boundary(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    if ctx.rel_path == "crates/gigascope/src/supervise.rs" || ctx.is_test_path() {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !matches!(t.text.as_str(), "catch_unwind" | "resume_unwind")
        {
            continue;
        }
        // `panic::catch_unwind(…)` / `std::panic::resume_unwind(…)` —
        // call position only; a bare identifier (a doc mention, a local
        // of that name) or a definition (`fn catch_unwind(…)`) does not
        // count.
        let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !(i > 0 && toks[i - 1].is_ident("fn"));
        if is_call && !ctx.in_test_span(t.line) {
            out.push(finding(
                rule,
                ctx,
                t,
                format!(
                    "`{}` erects a panic boundary outside crates/gigascope/src/supervise.rs",
                    t.text
                ),
            ));
        }
    }
    out
}

/// R009 — bare file-mutation call sites (`File::create`, `.write_all(`,
/// `rename(`) outside `store.rs`. Every durable artifact must reach
/// disk through the atomic-write discipline (temp sibling → fsync →
/// rename → fsync-dir) that `msa_stream::store` owns; a stray
/// `File::create` elsewhere is a torn-file bug waiting for a crash.
/// `store.rs` files are the sanctioned home, `crates/lint` (report
/// output) and `crates/bench` (results emission) are exempt, as is all
/// test-path code. Read-side APIs (`File::open`) are untouched.
fn r009_bare_file_writes(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    if ctx.file_name() == "store.rs"
        || matches!(ctx.crate_dir(), Some("lint") | Some("bench"))
        || ctx.is_test_path()
    {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let call = toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !(i > 0 && toks[i - 1].is_ident("fn"));
        let hit = match t.text.as_str() {
            // `File::create(…)` — the ctor path shape, so a local fn or
            // field merely named `create` stays silent.
            "create" => {
                call && i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("File")
            }
            // `.write_all(…)` — the unsynced-write method itself.
            "write_all" => call && i > 0 && toks[i - 1].is_punct("."),
            // `fs::rename(…)` / `.rename(…)` — a rename outside the
            // store bypasses the fsync-dir that makes it durable.
            "rename" => call,
            _ => false,
        };
        if hit && !ctx.in_test_span(t.line) {
            out.push(finding(
                rule,
                ctx,
                t,
                format!(
                    "bare `{}` call site outside store.rs bypasses the atomic-write discipline",
                    t.text
                ),
            ));
        }
    }
    out
}

/// R001 — `unwrap()` / `expect()` outside test code.
fn r001_unwrap(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    if ctx.is_test_path() {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || !matches!(t.text.as_str(), "unwrap" | "expect") {
            continue;
        }
        let is_call =
            i > 0 && toks[i - 1].is_punct(".") && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        if is_call && !ctx.in_test_span(t.line) {
            out.push(finding(
                rule,
                ctx,
                t,
                format!("`.{}()` can panic in non-test code", t.text),
            ));
        }
    }
    out
}

/// R002 — public `fn … -> Result<…>` in the durable-artifact modules
/// must carry `#[must_use = "…"]`. `Result` is `#[must_use]` on its own,
/// but a reasoned attribute survives wrapping in type aliases and makes
/// the *why* visible at the definition.
fn r002_must_use(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    if !matches!(ctx.file_name(), "snapshot.rs" | "channel.rs") || ctx.is_test_path() {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("pub") || ctx.in_test_span(toks[i].line) {
            i += 1;
            continue;
        }
        // `pub`, optionally a `(crate)`-style restriction, then
        // qualifiers, then `fn`.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("(")) {
            let mut depth = 0usize;
            while j < toks.len() {
                if toks[j].is_punct("(") {
                    depth += 1;
                } else if toks[j].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        while toks.get(j).is_some_and(|t| {
            matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern")
                || t.kind == TokenKind::Str
        }) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(j + 1) else {
            break;
        };
        if returns_result(toks, j + 2) && !has_must_use_attr(toks, i) {
            out.push(finding(
                rule,
                ctx,
                name,
                format!(
                    "public `fn {}` returns Result without #[must_use = \"…\"]",
                    name.text
                ),
            ));
        }
        i = j + 2;
    }
    out
}

/// Scans a fn signature from just past the name: skips generics and the
/// parameter list, then looks for `Result` in the return type.
fn returns_result(toks: &[Token], mut j: usize) -> bool {
    // Generics: `<` … `>` with `<<`/`>>` counting double.
    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0isize;
        while j < toks.len() {
            if toks[j].kind == TokenKind::Punct {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    "<<" => depth += 2,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
            }
            j += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    // Parameter list.
    if !toks.get(j).is_some_and(|t| t.is_punct("(")) {
        return false;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        if toks[j].is_punct("(") {
            depth += 1;
        } else if toks[j].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        }
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct("->")) {
        return false;
    }
    // Return type runs to the body, a `;`, or a `where` clause.
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("{") || t.is_punct(";") || t.is_ident("where") {
            return false;
        }
        if t.is_ident("Result") {
            return true;
        }
        j += 1;
    }
    false
}

/// True if the attribute groups directly above token `i` include
/// `must_use`.
fn has_must_use_attr(toks: &[Token], i: usize) -> bool {
    // Walk backwards over contiguous `#[…]` groups.
    let mut end = i; // exclusive
    loop {
        if end == 0 || !toks[end - 1].is_punct("]") {
            return false;
        }
        // Find the `[` opening this group, then the `#` before it.
        let mut depth = 0usize;
        let mut k = end - 1;
        loop {
            if toks[k].is_punct("]") {
                depth += 1;
            } else if toks[k].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        if k == 0 || !toks[k - 1].is_punct("#") {
            return false;
        }
        if let Some((attr, _)) = attr_group(toks, k - 1) {
            if attr.iter().any(|t| t.is_ident("must_use")) {
                return true;
            }
        }
        end = k - 1;
    }
}

/// R003 — crate roots must carry `#![deny(unsafe_code)]` (or `forbid`).
fn r003_deny_unsafe(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    if !ctx.is_crate_root() {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("!")) {
            if let Some((attr, next)) = attr_group(toks, i) {
                let level = attr
                    .iter()
                    .any(|t| t.is_ident("deny") || t.is_ident("forbid"));
                if level && attr.iter().any(|t| t.is_ident("unsafe_code")) {
                    return Vec::new();
                }
                i = next;
                continue;
            }
        }
        i += 1;
    }
    vec![Finding {
        rule: rule.id,
        severity: rule.severity,
        file: ctx.rel_path.to_owned(),
        line: 1,
        col: 1,
        width: 1,
        message: "crate root lacks #![deny(unsafe_code)]".to_owned(),
        help: rule.help,
        snippet: ctx.line_text(1).to_owned(),
    }]
}

/// The file where every loss counter must surface as interval width.
pub const BOUNDS_PATH: &str = "crates/gigascope/src/bounds.rs";

/// True for the ledger-counter naming pattern R006 audits.
pub fn is_counter_name(name: &str) -> bool {
    name.starts_with("records_") || (name.ends_with("_lost") && name.len() > "_lost".len())
}

/// Every identifier appearing inside a `fn merge*` / `fn absorb*` body
/// in the token stream.
fn merge_fn_idents(toks: &[Token]) -> std::collections::BTreeSet<String> {
    let mut set = std::collections::BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        let is_merge_fn = toks[i].is_ident("fn")
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == TokenKind::Ident
                    && (n.text.starts_with("merge") || n.text.starts_with("absorb"))
            });
        if is_merge_fn {
            // Body: the first `{` after the signature (a `;` first means
            // a trait method without a default body).
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct("{")) {
                let close = crate::scope::match_brace(toks, j);
                for t in &toks[j..=close.min(toks.len() - 1)] {
                    if t.kind == TokenKind::Ident {
                        set.insert(t.text.clone());
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    set
}

/// R006 (workspace level) — every *incremented* ledger counter in
/// `crates/gigascope/src` must appear, by name, in some `merge*`/
/// `absorb*` body and in [`BOUNDS_PATH`]. A counter that grows but is
/// never folded silently vanishes on the sharded merge path; one absent
/// from `bounds.rs` is loss the degraded-answer API would omit. This is
/// the *name presence* audit; R007 checks the actual def-use flow, and
/// increments hidden behind helpers are R007's job too. Inline
/// `// msa-lint: allow(R006)` pragmas at the increment site are
/// honored.
pub fn r006_workspace(files: &[(String, String)]) -> Vec<Finding> {
    let Some(rule) = rule_by_id("R006") else {
        return Vec::new();
    };
    let mut merged = std::collections::BTreeSet::new();
    let mut bounds_idents = std::collections::BTreeSet::new();
    // (counter, rel_path index, token) of the first increment site seen.
    let mut sites: Vec<(String, usize, Token)> = Vec::new();
    let mut suppressed: Vec<(usize, u32)> = Vec::new();
    for (idx, (rel, source)) in files.iter().enumerate() {
        if !rel.starts_with("crates/gigascope/src") {
            continue;
        }
        let lexed = crate::lexer::lex(source);
        let ctx = FileCtx::new(rel, source, &lexed);
        if ctx.is_test_path() {
            continue;
        }
        merged.extend(merge_fn_idents(&lexed.tokens));
        if rel == BOUNDS_PATH {
            bounds_idents = ident_set(source);
        }
        for s in &lexed.suppressions {
            if s.rules.iter().any(|r| r == "R006") {
                suppressed.push((idx, s.line));
            }
        }
        let toks = &lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || !is_counter_name(&t.text) || ctx.in_test_span(t.line) {
                continue;
            }
            // `c += …`, or `c = … c.saturating_add/wrapping_add(…)`.
            let incremented = toks.get(i + 1).is_some_and(|n| n.is_punct("+="))
                || (toks.get(i + 1).is_some_and(|n| n.is_punct("="))
                    && toks[i + 2..(i + 10).min(toks.len())]
                        .iter()
                        .any(|n| n.is_ident(&t.text))
                    && toks[i + 2..(i + 14).min(toks.len())]
                        .iter()
                        .any(|n| n.is_ident("saturating_add") || n.is_ident("wrapping_add")));
            if incremented {
                sites.push((t.text.clone(), idx, t.clone()));
            }
        }
    }
    let mut reported = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for (counter, idx, tok) in sites {
        if !reported.insert(counter.clone()) {
            continue;
        }
        if suppressed
            .iter()
            .any(|&(i, l)| i == idx && (tok.line == l || tok.line == l + 1))
        {
            continue;
        }
        let mut missing = Vec::new();
        if !merged.contains(&counter) {
            missing.push("any merge/absorb fn".to_owned());
        }
        if files[idx].0 != BOUNDS_PATH && !bounds_idents.contains(&counter) {
            missing.push(BOUNDS_PATH.to_owned());
        }
        if missing.is_empty() {
            continue;
        }
        let (rel, source) = &files[idx];
        let snippet = source
            .lines()
            .nth(tok.line as usize - 1)
            .unwrap_or("")
            .to_owned();
        out.push(Finding {
            rule: rule.id,
            severity: rule.severity,
            file: rel.clone(),
            line: tok.line,
            col: tok.col,
            width: tok.text.chars().count().max(1) as u32,
            message: format!(
                "loss counter `{counter}` is incremented but absent from {}",
                missing.join(" and ")
            ),
            help: rule.help,
            snippet,
        });
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.col).cmp(&(b.file.as_str(), b.line, b.col)));
    out
}

/// The identifier set of one source file (used for the cross-file half
/// of R006 over [`BOUNDS_PATH`]).
pub fn ident_set(source: &str) -> std::collections::BTreeSet<String> {
    crate::lexer::lex(source)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect()
}

/// R004 — `todo!` / `unimplemented!` outside tests.
fn r004_todo(rule: &'static Rule, ctx: &FileCtx) -> Vec<Finding> {
    if ctx.is_test_path() {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && !ctx.in_test_span(t.line)
        {
            out.push(finding(
                rule,
                ctx,
                t,
                format!("`{}!` left in non-test code", t.text),
            ));
        }
    }
    out
}
