//! The `msa-lint` CLI — the workspace's determinism & invariant gate.
//!
//! ```text
//! msa-lint --workspace          lint the whole workspace (CI mode)
//! msa-lint --list-rules         print the catalog, one rule per line
//! msa-lint --json PATH          also write the machine-readable JSON
//!                               report to PATH (CI artifact)
//! msa-lint FILE…                lint specific files (paths relative to
//!                               the workspace root)
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed findings or stale allowlist
//! entries, `2` usage or I/O error. All output goes to stdout so CI
//! logs interleave deterministically.

#![deny(unsafe_code)]

use msa_lint::rules::CATALOG;
use msa_lint::{diag, lint_source, lint_workspace, LintError, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: msa-lint [--workspace | --list-rules | --json PATH | FILE...]";

/// Writes to stdout, ignoring errors: a closed pipe (`msa-lint | head`)
/// must truncate output, not panic the linter.
fn emit(text: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--json PATH` is an output option, not a mode: strip it (and its
    // operand) before dispatch so file mode never mistakes PATH for an
    // input file.
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            Some(PathBuf::from(args.remove(i)))
        }
        Some(_) => {
            emit("msa-lint: error: --json requires a PATH operand\n");
            return ExitCode::from(2);
        }
        None => None,
    };
    if args.is_empty() {
        emit(USAGE);
        emit("\n");
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list-rules") {
        list_rules();
        return ExitCode::SUCCESS;
    }
    let result = if args.iter().any(|a| a == "--workspace") {
        workspace_mode()
    } else {
        files_mode(&args)
    };
    match result {
        Ok(report) => {
            if let Some(path) = json_path {
                if let Err(e) = std::fs::write(&path, diag::render_json(&report)) {
                    emit(&format!("msa-lint: error: {}: {e}\n", path.display()));
                    return ExitCode::from(2);
                }
            }
            let code = print_report(&report);
            ExitCode::from(code)
        }
        Err(e) => {
            emit(&format!("msa-lint: error: {e}\n"));
            ExitCode::from(2)
        }
    }
}

/// One line per rule — CI counts these lines to detect a rule that was
/// accidentally compiled out.
fn list_rules() {
    for rule in CATALOG {
        emit(&format!(
            "{}  {:<12} {:<8} {}\n",
            rule.id,
            rule.group,
            rule.severity.label(),
            rule.summary
        ));
    }
}

fn workspace_mode() -> Result<Report, LintError> {
    let root = find_workspace_root()?;
    lint_workspace(&root)
}

/// Lints explicitly named files. Paths are taken relative to the
/// current directory and reported relative to the workspace root when
/// they fall under it; the allowlist still applies.
fn files_mode(args: &[String]) -> Result<Report, LintError> {
    let root = find_workspace_root()?;
    let entries = {
        let path = root.join("lint.toml");
        if path.is_file() {
            let text =
                std::fs::read_to_string(&path).map_err(|e| LintError::Io(path.clone(), e))?;
            msa_lint::allowlist::parse(&text).map_err(LintError::Allowlist)?
        } else {
            Vec::new()
        }
    };
    let mut report = Report::default();
    let mut used = vec![false; entries.len()];
    for arg in args.iter().filter(|a| !a.starts_with("--")) {
        let path = PathBuf::from(arg);
        let source = std::fs::read_to_string(&path).map_err(|e| LintError::Io(path.clone(), e))?;
        let abs = path.canonicalize().unwrap_or_else(|_| path.clone());
        let rel = match abs.strip_prefix(&root) {
            Ok(rel) => rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/"),
            // Outside the workspace: keep the platform path as-is.
            Err(_) => abs.display().to_string(),
        };
        let linted = lint_source(&rel, &source);
        report.files += 1;
        report.inline_suppressed += linted.inline_suppressed;
        for f in linted.findings {
            let mut suppressed = false;
            for (idx, entry) in entries.iter().enumerate() {
                if entry.matches(&f) {
                    used[idx] = true;
                    suppressed = true;
                }
            }
            if suppressed {
                report.allow_suppressed += 1;
            } else {
                report.findings.push(f);
            }
        }
    }
    // File mode lints a subset, so unused entries are not stale.
    Ok(report)
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// that declares `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, LintError> {
    let start = std::env::current_dir().map_err(|e| LintError::Io(PathBuf::from("."), e))?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| LintError::Io(manifest.clone(), e))?;
            if text.contains("[workspace]") {
                return Ok(dir.to_owned());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(LintError::Io(
                    start.join("Cargo.toml"),
                    std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        "no [workspace] Cargo.toml above the current directory",
                    ),
                ))
            }
        }
    }
}

/// Prints diagnostics and the summary line; returns the exit code.
fn print_report(report: &Report) -> u8 {
    for f in &report.findings {
        emit(&diag::render(f));
        emit("\n");
    }
    for entry in &report.stale {
        emit(&diag::render_stale(entry));
        emit("\n");
    }
    emit(&format!(
        "msa-lint: {} files scanned, {} rules active; {} finding(s), {} stale allowlist entr{}; \
         {} suppressed ({} inline, {} allowlist)\n",
        report.files,
        CATALOG.len(),
        report.findings.len(),
        report.stale.len(),
        if report.stale.len() == 1 { "y" } else { "ies" },
        report.inline_suppressed + report.allow_suppressed,
        report.inline_suppressed,
        report.allow_suppressed,
    ));
    u8::from(!report.clean())
}
