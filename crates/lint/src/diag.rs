//! Rustc-style plain-text rendering of findings.
//!
//! ```text
//! error[D001]: `Instant` breaks run-to-run determinism outside crates/bench
//!   --> crates/gigascope/src/executor.rs:42:17
//!    |
//! 42 |     let t = Instant::now();
//!    |             ^^^^^^^
//!    = help: derive time from record timestamps / epoch counters …
//!    = note: suppress with `// msa-lint: allow(D001)` or a justified lint.toml entry
//! ```

use crate::rules::Finding;
use std::fmt::Write as _;

/// Renders one finding as a multi-line diagnostic block.
pub fn render(f: &Finding) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", f.severity.label(), f.rule, f.message);
    let _ = writeln!(out, "  --> {}:{}:{}", f.file, f.line, f.col);
    let lineno = f.line.to_string();
    let gutter = " ".repeat(lineno.len());
    let _ = writeln!(out, "{gutter} |");
    let _ = writeln!(out, "{lineno} | {}", f.snippet.trim_end());
    let pad = " ".repeat(f.col.saturating_sub(1) as usize);
    let carets = "^".repeat(f.width.max(1) as usize);
    let _ = writeln!(out, "{gutter} | {pad}{carets}");
    if !f.help.is_empty() {
        let _ = writeln!(out, "{gutter} = help: {}", f.help);
    }
    let _ = writeln!(
        out,
        "{gutter} = note: suppress with `// msa-lint: allow({})` or a justified lint.toml entry",
        f.rule
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    #[test]
    fn renders_position_snippet_and_underline() {
        let f = Finding {
            rule: "D001",
            severity: Severity::Error,
            file: "crates/x/src/a.rs".to_owned(),
            line: 42,
            col: 13,
            width: 7,
            message: "`Instant` breaks determinism".to_owned(),
            help: "use the epoch counter",
            snippet: "    let t = Instant::now();".to_owned(),
        };
        let text = render(&f);
        assert!(text.starts_with("error[D001]: `Instant` breaks determinism"));
        assert!(text.contains("--> crates/x/src/a.rs:42:13"));
        assert!(text.contains("42 |     let t = Instant::now();"));
        assert!(text.contains("   |             ^^^^^^^"));
        assert!(text.contains("= help: use the epoch counter"));
        assert!(text.contains("allow(D001)"));
    }
}
