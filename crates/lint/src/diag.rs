//! Rustc-style plain-text rendering of findings, plus the
//! machine-readable JSON report CI archives as an artifact.
//!
//! ```text
//! error[D001]: `Instant` breaks run-to-run determinism outside crates/bench
//!   --> crates/gigascope/src/executor.rs:42:17
//!    |
//! 42 |     let t = Instant::now();
//!    |             ^^^^^^^
//!    = help: derive time from record timestamps / epoch counters …
//!    = note: suppress with `// msa-lint: allow(D001)` or a justified lint.toml entry
//! ```

use crate::allowlist::AllowEntry;
use crate::rules::{Finding, CATALOG};
use crate::Report;
use std::fmt::Write as _;

/// Renders one finding as a multi-line diagnostic block.
pub fn render(f: &Finding) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", f.severity.label(), f.rule, f.message);
    let _ = writeln!(out, "  --> {}:{}:{}", f.file, f.line, f.col);
    let lineno = f.line.to_string();
    let gutter = " ".repeat(lineno.len());
    let _ = writeln!(out, "{gutter} |");
    let _ = writeln!(out, "{lineno} | {}", f.snippet.trim_end());
    let pad = " ".repeat(f.col.saturating_sub(1) as usize);
    let carets = "^".repeat(f.width.max(1) as usize);
    let _ = writeln!(out, "{gutter} | {pad}{carets}");
    if !f.help.is_empty() {
        let _ = writeln!(out, "{gutter} = help: {}", f.help);
    }
    let _ = writeln!(
        out,
        "{gutter} = note: suppress with `// msa-lint: allow({})` or a justified lint.toml entry",
        f.rule
    );
    out
}

/// Renders a stale-allowlist diagnostic: the committed grandfather
/// clause no longer matches any live site, which fails the run.
pub fn render_stale(entry: &AllowEntry) -> String {
    format!(
        "error[StaleAllow]: lint.toml:{}: rule {} in {} (`{}`) grandfathers nothing\n  \
         = note: the site was fixed or moved; delete the entry\n",
        entry.toml_line, entry.rule, entry.file, entry.contains,
    )
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a whole [`Report`] as a single JSON document (SARIF-lite):
/// one stable, diffable artifact per CI run. Hand-rolled — the
/// workspace takes no serialization dependency for the linter's sake —
/// with every dynamic string escaped through [`json_escape`].
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"tool\": \"msa-lint\",");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files);
    let _ = writeln!(out, "  \"rules_active\": {},", CATALOG.len());
    let _ = writeln!(out, "  \"clean\": {},", report.clean());
    let _ = writeln!(
        out,
        "  \"suppressed\": {{ \"inline\": {}, \"allowlist\": {} }},",
        report.inline_suppressed, report.allow_suppressed
    );
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{ \"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"col\": {}, \"width\": {}, \"message\": \"{}\" }}",
            json_escape(f.rule),
            f.severity.label(),
            json_escape(&f.file),
            f.line,
            f.col,
            f.width,
            json_escape(&f.message),
        );
    }
    out.push_str(if report.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"stale_allowlist\": [");
    for (i, e) in report.stale.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"contains\": \"{}\", \"toml_line\": {} }}",
            json_escape(&e.rule),
            json_escape(&e.file),
            json_escape(&e.contains),
            e.toml_line,
        );
    }
    out.push_str(if report.stale.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    #[test]
    fn stale_diagnostic_names_the_entry() {
        let e = AllowEntry {
            rule: "R001".to_owned(),
            file: "crates/core/src/engine.rs".to_owned(),
            contains: ".expect(\"set above\")".to_owned(),
            justification: "was grandfathered".to_owned(),
            toml_line: 20,
        };
        let text = render_stale(&e);
        assert!(text.starts_with("error[StaleAllow]: lint.toml:20"));
        assert!(text.contains("R001"));
        assert!(text.contains("crates/core/src/engine.rs"));
        assert!(text.contains(".expect(\"set above\")"));
    }

    #[test]
    fn json_report_escapes_and_round_trips_shape() {
        let mut report = Report {
            files: 3,
            inline_suppressed: 1,
            ..Report::default()
        };
        report.findings.push(Finding {
            rule: "D007",
            severity: Severity::Error,
            file: "crates/a/src/lib.rs".to_owned(),
            line: 7,
            col: 2,
            width: 5,
            message: "taint \"quoted\"\nand multiline".to_owned(),
            help: "",
            snippet: String::new(),
        });
        let json = render_json(&report);
        assert!(json.contains("\"tool\": \"msa-lint\""));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\\\"quoted\\\"\\nand multiline"));
        assert!(json.contains("\"stale_allowlist\": []"));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser in the dep tree.
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn renders_position_snippet_and_underline() {
        let f = Finding {
            rule: "D001",
            severity: Severity::Error,
            file: "crates/x/src/a.rs".to_owned(),
            line: 42,
            col: 13,
            width: 7,
            message: "`Instant` breaks determinism".to_owned(),
            help: "use the epoch counter",
            snippet: "    let t = Instant::now();".to_owned(),
        };
        let text = render(&f);
        assert!(text.starts_with("error[D001]: `Instant` breaks determinism"));
        assert!(text.contains("--> crates/x/src/a.rs:42:13"));
        assert!(text.contains("42 |     let t = Instant::now();"));
        assert!(text.contains("   |             ^^^^^^^"));
        assert!(text.contains("= help: use the epoch counter"));
        assert!(text.contains("allow(D001)"));
    }
}
