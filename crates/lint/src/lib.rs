//! `msa-lint` — a self-contained determinism & invariant linter.
//!
//! Bit-identical crash recovery (DESIGN.md §8) made the whole
//! LFTA → HFTA pipeline silently depend on invariants no compiler
//! enforces: seeded PRNGs only, no wall-clock reads, no iteration over
//! randomly-hashed maps in state paths, no lossy casts in the binary
//! codecs, no panicking shortcuts in library code. Clippy cannot express
//! these project-specific rules, so this crate does — with zero external
//! dependencies:
//!
//! * [`lexer`] — a minimal Rust lexer that correctly sets aside
//!   comments, doc-comments and string/char literals, so rules never
//!   fire on prose or quoted code;
//! * [`scope`] — path classification plus `#[cfg(test)]`/`#[test]` span
//!   detection, so test code keeps its `unwrap()`s;
//! * [`rules`] — the catalog (D001–D007 determinism, R001–R008
//!   robustness);
//! * [`symbols`] / [`callgraph`] / [`dataflow`] — the workspace-wide
//!   second layer: a symbol table, a name-resolved call graph and an
//!   interprocedural def-use engine behind D007 (determinism taint),
//!   R007 (counter conservation) and R008 (hot-path panic
//!   reachability);
//! * [`allowlist`] — the committed `lint.toml` of grandfathered sites,
//!   each with a mandatory justification; stale entries fail the run;
//! * [`diag`] — rustc-style `file:line:col` rendering plus a JSON
//!   report for CI artifacts.
//!
//! The `msa-lint` binary wires these into the CI gate:
//! `cargo run --offline --release -p msa-lint -- --workspace`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod callgraph;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod symbols;

use allowlist::AllowEntry;
use rules::{Finding, CATALOG};
use scope::FileCtx;
use std::path::{Path, PathBuf};

/// The outcome of linting one source file.
#[derive(Debug, Default)]
pub struct LintedFile {
    /// Findings that survived inline `// msa-lint: allow(…)` pragmas.
    pub findings: Vec<Finding>,
    /// Findings an inline pragma suppressed.
    pub inline_suppressed: usize,
}

/// Runs every catalog rule over one file. `rel_path` must be
/// workspace-relative with `/` separators — rules scope on it.
/// Inline suppressions are applied; the allowlist is not (that is a
/// workspace-level concern, see [`lint_workspace`]).
pub fn lint_source(rel_path: &str, source: &str) -> LintedFile {
    let lexed = lexer::lex(source);
    let ctx = FileCtx::new(rel_path, source, &lexed);
    let mut all: Vec<Finding> = CATALOG
        .iter()
        .flat_map(|rule| (rule.check)(rule, &ctx))
        .collect();
    all.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    let suppressed_inline = |f: &Finding| {
        lexed.suppressions.iter().any(|s| {
            (f.line == s.line || f.line == s.line + 1) && s.rules.iter().any(|r| r == f.rule)
        })
    };
    let total = all.len();
    let findings: Vec<Finding> = all.into_iter().filter(|f| !suppressed_inline(f)).collect();
    LintedFile {
        inline_suppressed: total - findings.len(),
        findings,
    }
}

/// A full workspace lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, ordered by (file, line, col).
    pub findings: Vec<Finding>,
    /// Allowlist entries that suppressed nothing — stale grandfather
    /// clauses that must be removed. These fail the run.
    pub stale: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Findings suppressed by inline pragmas.
    pub inline_suppressed: usize,
    /// Findings suppressed by `lint.toml` entries.
    pub allow_suppressed: usize,
}

impl Report {
    /// True if the run gates green: no findings, no stale entries.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty()
    }
}

/// A workspace lint failure that is not a finding.
#[derive(Debug)]
pub enum LintError {
    /// A file or directory could not be read.
    Io(PathBuf, std::io::Error),
    /// `lint.toml` is malformed.
    Allowlist(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            LintError::Allowlist(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Directories scanned under the workspace root.
const SCAN_DIRS: &[&str] = &["crates", "examples", "src", "tests"];

/// Directory names never descended into: build output and the lint
/// crate's own deliberately-violating fixtures.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Lints every `.rs` file under `root`'s source directories, applying
/// the `lint.toml` allowlist if one is present at `root`.
pub fn lint_workspace(root: &Path) -> Result<Report, LintError> {
    let allow_path = root.join("lint.toml");
    let entries: Vec<AllowEntry> = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| LintError::Io(allow_path.clone(), e))?;
        allowlist::parse(&text).map_err(LintError::Allowlist)?
    } else {
        Vec::new()
    };

    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let path = root.join(dir);
        if path.is_dir() {
            collect_rs_files(&path, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    let mut used = vec![false; entries.len()];
    // Every (rel, source) pair feeds the workspace-level rules: R006's
    // name audit and the dataflow engine behind D007/R007/R008.
    let mut sources: Vec<(String, String)> = Vec::new();
    let mut suppress = |report: &mut Report, f: Finding| {
        let mut suppressed = false;
        for (idx, entry) in entries.iter().enumerate() {
            if entry.matches(&f) {
                used[idx] = true;
                suppressed = true;
            }
        }
        if suppressed {
            report.allow_suppressed += 1;
        } else {
            report.findings.push(f);
        }
    };
    for path in files {
        let source = std::fs::read_to_string(&path).map_err(|e| LintError::Io(path.clone(), e))?;
        let rel = rel_unix_path(root, &path);
        let linted = lint_source(&rel, &source);
        report.files += 1;
        report.inline_suppressed += linted.inline_suppressed;
        for f in linted.findings {
            suppress(&mut report, f);
        }
        sources.push((rel, source));
    }
    for f in rules::r006_workspace(&sources) {
        suppress(&mut report, f);
    }
    for f in dataflow::analyze(&sources) {
        suppress(&mut report, f);
    }
    report.stale = entries
        .into_iter()
        .zip(&used)
        .filter(|(_, used)| !**used)
        .map(|(e, _)| e)
        .collect();
    Ok(report)
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_owned(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_owned(), e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators (what rules scope on).
fn rel_unix_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_pragma_suppresses_same_and_next_line() {
        let src = "use std::time::Instant; // msa-lint: allow(D001)\n\
                   // msa-lint: allow(D001)\n\
                   fn f() { let _ = Instant::now(); }\n\
                   fn g() { let _ = Instant::now(); }\n";
        let linted = lint_source("crates/core/src/x.rs", src);
        assert_eq!(linted.inline_suppressed, 2);
        let d001: Vec<u32> = linted
            .findings
            .iter()
            .filter(|f| f.rule == "D001")
            .map(|f| f.line)
            .collect();
        assert_eq!(d001, [4]);
        // The D001 pragma does not suppress D006's call-site findings
        // on the same lines (`now()` on lines 3 and 4).
        assert_eq!(linted.findings.len(), 3);
    }

    #[test]
    fn pragma_for_a_different_rule_does_not_suppress() {
        let src = "fn f() { let _ = x.unwrap(); } // msa-lint: allow(D001)\n";
        let linted = lint_source("crates/core/src/x.rs", src);
        assert_eq!(linted.findings.len(), 1);
        assert_eq!(linted.findings[0].rule, "R001");
    }

    #[test]
    fn findings_are_ordered_by_position() {
        let src =
            "fn f() { let _ = x.unwrap(); let _ = Instant::now(); }\nfn g() { y.expect(\"\"); }\n";
        let linted = lint_source("crates/core/src/x.rs", src);
        let lines: Vec<(u32, u32)> = linted.findings.iter().map(|f| (f.line, f.col)).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        // unwrap (R001) + Instant (D001) + now() (D006) + expect (R001).
        assert_eq!(linted.findings.len(), 4);
    }
}
