//! Workspace symbol table: function and struct-field definitions.
//!
//! The dataflow rules (D007/R007/R008) need to know *what exists* across
//! the whole workspace before they can reason about flows between files:
//! which functions are defined where (with their parameter lists and
//! body token ranges), and which named fields belong to which structs.
//! This module extracts both from the lexer's token streams — no type
//! inference, just brace/angle matching over [`crate::lexer::Token`]s —
//! and the call graph ([`crate::callgraph`]) and dataflow engine
//! ([`crate::dataflow`]) build on it.
//!
//! Resolution is *name-based*: a call `probe(…)` resolves to every
//! function named `probe` in the workspace. That over-approximation is
//! the right direction for the rules built on top — panic-reachability
//! and taint tracking must not miss a real path because two impls share
//! a method name.

use crate::lexer::{lex, Lexed, TokenKind};
use crate::scope::{match_brace, test_spans};
use std::collections::{BTreeMap, BTreeSet};

/// One scanned source file, lexed once and shared by every analysis.
pub struct WsFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Raw source lines (for finding snippets).
    pub lines: Vec<String>,
    /// Token stream and suppression pragmas.
    pub lexed: Lexed,
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(u32, u32)>,
}

impl WsFile {
    /// True for files that are test/bench-harness code by location.
    pub fn is_test_path(&self) -> bool {
        let p = self.rel.as_str();
        p.starts_with("tests/") || p.contains("/tests/") || p.contains("/benches/")
    }

    /// True if `line` falls inside a `#[cfg(test)]`/`#[test]` item.
    pub fn in_test_span(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// True for the wall-clock-exempt measurement crate.
    pub fn is_bench(&self) -> bool {
        self.rel.starts_with("crates/bench/")
    }

    /// The text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// One `fn` definition found in the workspace.
pub struct FnDef {
    /// The function's bare name (`probe`, not `LftaTable::probe`).
    pub name: String,
    /// Index into [`SymbolTable::files`].
    pub file: usize,
    /// 1-based line of the name token.
    pub line: u32,
    /// Parameter names in declaration order (`self` receivers excluded).
    pub params: Vec<String>,
    /// Inclusive token-index range of the `{ … }` body, if the fn has
    /// one (trait methods without a default body do not).
    pub body: Option<(usize, usize)>,
    /// True for `merge*` / `absorb*` fns — the sanctioned counter folds.
    pub is_merge: bool,
    /// True if the fn lives in test code (path or `#[cfg(test)]` span)
    /// or in `crates/bench`: nondeterminism sources are legal *inside*
    /// such scopes, but values they return still carry taint out.
    pub allowlisted: bool,
}

/// The workspace-wide symbol table.
pub struct SymbolTable {
    /// Every scanned file, in input order.
    pub files: Vec<WsFile>,
    /// Every fn definition, in (file, position) order.
    pub fns: Vec<FnDef>,
    /// Name → indices into [`SymbolTable::fns`] (multi-target).
    pub fns_by_name: BTreeMap<String, Vec<usize>>,
    /// Struct name → its named fields, for struct-literal detection.
    pub struct_fields: BTreeMap<String, Vec<String>>,
    /// Field name → the structs declaring it (field-name granularity).
    pub field_owners: BTreeMap<String, BTreeSet<String>>,
}

impl SymbolTable {
    /// The innermost fn whose body contains token `tok` of file `file`
    /// (functions nest; the latest-starting containing body wins).
    pub fn enclosing_fn(&self, file: usize, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if f.file != file {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            if open <= tok && tok <= close {
                let better = match best {
                    Some(b) => self.fns[b].body.map(|(o, _)| o) < Some(open),
                    None => true,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best
    }
}

/// Keywords that can never be a call target or an indexed expression.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "try", "type",
    "union", "unsafe", "use", "where", "while", "yield",
];

/// True if `name` is a Rust keyword (excluding `self`/`Self`, which can
/// head an indexing or call expression via `Index`/`Fn` impls).
pub fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

/// Builds the symbol table for a set of `(rel_path, source)` files.
pub fn build(inputs: &[(String, String)]) -> SymbolTable {
    let files: Vec<WsFile> = inputs
        .iter()
        .map(|(rel, source)| {
            let lexed = lex(source);
            let spans = test_spans(&lexed.tokens);
            WsFile {
                rel: rel.clone(),
                lines: source.lines().map(str::to_owned).collect(),
                lexed,
                test_spans: spans,
            }
        })
        .collect();

    let mut fns = Vec::new();
    let mut struct_fields: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut field_owners: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        collect_fns(fi, file, &mut fns);
        collect_structs(file, &mut struct_fields, &mut field_owners);
    }

    let mut fns_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        fns_by_name.entry(f.name.clone()).or_default().push(i);
    }

    SymbolTable {
        files,
        fns,
        fns_by_name,
        struct_fields,
        field_owners,
    }
}

/// Scans one file's token stream for `fn` items.
fn collect_fns(fi: usize, file: &WsFile, out: &mut Vec<FnDef>) {
    let toks = &file.lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        // Generic parameters: `<` … `>` with `<<`/`>>` counting double.
        if toks.get(j).is_some_and(|t| t.is_punct("<")) {
            let mut depth = 0isize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" if toks[j].kind == TokenKind::Punct => depth += 1,
                    "<<" => depth += 2,
                    ">" if toks[j].kind == TokenKind::Punct => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
        // Parameter list: names are idents directly followed by `:` at
        // paren depth 1 (tuple-pattern params are invisible; fine).
        let mut params = Vec::new();
        if toks.get(j).is_some_and(|t| t.is_punct("(")) {
            let mut depth = 0usize;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                } else if depth == 1
                    && t.kind == TokenKind::Ident
                    && t.text != "self"
                    && !is_keyword(&t.text)
                    && toks.get(j + 1).is_some_and(|n| n.is_punct(":"))
                {
                    params.push(t.text.clone());
                }
                j += 1;
            }
        }
        // Body: first `{` before a `;` (a `;` first means no body).
        let mut body = None;
        while j < toks.len() {
            if toks[j].is_punct(";") {
                break;
            }
            if toks[j].is_punct("{") {
                body = Some((j, match_brace(toks, j)));
                break;
            }
            j += 1;
        }
        let allowlisted =
            file.is_bench() || file.is_test_path() || file.in_test_span(name_tok.line);
        out.push(FnDef {
            name: name_tok.text.clone(),
            file: fi,
            line: name_tok.line,
            params,
            body,
            is_merge: name_tok.text.starts_with("merge") || name_tok.text.starts_with("absorb"),
            allowlisted,
        });
        // Do NOT skip the body: nested fns must be collected too.
        i += 2;
    }
}

/// Scans one file for `struct Name { field: Type, … }` declarations.
fn collect_structs(
    file: &WsFile,
    struct_fields: &mut BTreeMap<String, Vec<String>>,
    field_owners: &mut BTreeMap<String, BTreeSet<String>>,
) {
    let toks = &file.lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("struct") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Walk past generics / where-clauses to the body opener. A `(`
        // first means a tuple struct (no named fields); `;` a unit one.
        let mut j = i + 2;
        let mut opener = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("{") {
                opener = Some(j);
                break;
            }
            if t.is_punct("(") || t.is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some(open) = opener else {
            // Tuple/unit struct: registered with no named fields so
            // struct-literal detection still knows the name exists.
            struct_fields.entry(name_tok.text.clone()).or_default();
            i = j.max(i + 1);
            continue;
        };
        let close = match_brace(toks, open);
        let mut fields = Vec::new();
        let mut depth = 0usize;
        let mut k = open;
        while k <= close && k < toks.len() {
            let t = &toks[k];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth = depth.saturating_sub(1);
            } else if depth == 1
                && t.kind == TokenKind::Ident
                && !is_keyword(&t.text)
                && toks.get(k + 1).is_some_and(|n| n.is_punct(":"))
                && !(k > 0 && toks[k - 1].is_punct(":"))
            {
                fields.push(t.text.clone());
            }
            k += 1;
        }
        for f in &fields {
            field_owners
                .entry(f.clone())
                .or_default()
                .insert(name_tok.text.clone());
        }
        struct_fields.insert(name_tok.text.clone(), fields);
        i = close + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> SymbolTable {
        build(&[("crates/demo/src/lib.rs".to_owned(), src.to_owned())])
    }

    #[test]
    fn extracts_fns_with_params_and_bodies() {
        let st = table(
            "pub fn probe(key: u64, agg: u32) -> u32 { key as u32 + agg }\n\
             fn merge_all(&mut self, other: &Self) {}\n\
             trait T { fn sig_only(x: u8); }\n",
        );
        assert_eq!(st.fns.len(), 3);
        assert_eq!(st.fns[0].name, "probe");
        assert_eq!(st.fns[0].params, ["key", "agg"]);
        assert!(st.fns[0].body.is_some());
        assert!(st.fns[1].is_merge);
        assert_eq!(st.fns[1].params, ["other"]);
        assert!(st.fns[2].body.is_none());
        assert_eq!(st.fns_by_name["probe"], [0]);
    }

    #[test]
    fn extracts_struct_fields_and_owners() {
        let st = table(
            "pub struct Snapshot { pub digest: u64, epoch: u64 }\n\
             struct Tuple(u64);\n\
             struct Unit;\n\
             pub struct Report { pub epoch: u64 }\n",
        );
        assert_eq!(st.struct_fields["Snapshot"], ["digest", "epoch"]);
        assert!(st.struct_fields["Tuple"].is_empty());
        assert_eq!(
            st.field_owners["epoch"].iter().collect::<Vec<_>>(),
            ["Report", "Snapshot"]
        );
    }

    #[test]
    fn test_span_fns_are_allowlisted() {
        let st = table("fn live() {}\n#[cfg(test)]\nmod t {\n    fn helper() {}\n}\n");
        assert!(!st.fns[0].allowlisted);
        assert!(st.fns[1].allowlisted);
    }

    #[test]
    fn enclosing_fn_prefers_the_innermost_body() {
        let st = table("fn outer() { fn inner() { body(); } inner(); }\n");
        assert_eq!(st.fns.len(), 2);
        // Token index of `body`: find it.
        let toks = &st.files[0].lexed.tokens;
        let body_idx = toks.iter().position(|t| t.is_ident("body")).unwrap();
        let inner_call = toks.iter().rposition(|t| t.is_ident("inner")).unwrap();
        assert_eq!(st.fns[st.enclosing_fn(0, body_idx).unwrap()].name, "inner");
        assert_eq!(
            st.fns[st.enclosing_fn(0, inner_call).unwrap()].name,
            "outer"
        );
    }
}
