//! The committed `lint.toml` allowlist of grandfathered findings.
//!
//! Format — a dependency-free subset of TOML: `[[allow]]` array-of-table
//! headers, `key = "string"` pairs and `#` comments. Nothing else is
//! accepted, so there is nothing else to get subtly wrong:
//!
//! ```toml
//! [[allow]]
//! rule = "R001"
//! file = "crates/core/src/engine.rs"
//! contains = ".expect(\"set above\")"
//! justification = "internal invariant: stats assigned two lines up"
//! ```
//!
//! An entry suppresses every finding of `rule` in `file` whose source
//! line contains `contains`. Every field is mandatory and the
//! justification must be non-empty: a suppression nobody can explain is
//! a bug. Entries that suppress nothing are *stale* and fail the run —
//! fixed code must shed its grandfather clause.

use crate::rules::{rule_by_id, Finding};

/// One `[[allow]]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (`D001`…).
    pub rule: String,
    /// Workspace-relative file the entry applies to.
    pub file: String,
    /// Substring the offending source line must contain.
    pub contains: String,
    /// Human reason the site is exempt. Mandatory, non-empty.
    pub justification: String,
    /// Line of the `[[allow]]` header in `lint.toml` (diagnostics).
    pub toml_line: u32,
}

impl AllowEntry {
    /// True if this entry suppresses `f`.
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule && self.file == f.file && f.snippet.contains(&self.contains)
    }
}

/// Parses `lint.toml` text into entries, validating every field.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut open: Option<(u32, [Option<String>; 4])> = None;

    let finish =
        |open: &mut Option<(u32, [Option<String>; 4])>| -> Result<Option<AllowEntry>, String> {
            let Some((line, fields)) = open.take() else {
                return Ok(None);
            };
            let [rule, file, contains, justification] = fields;
            let missing = |what: &str| {
                format!("lint.toml:{line}: [[allow]] entry is missing the `{what}` key")
            };
            let rule = rule.ok_or_else(|| missing("rule"))?;
            let file = file.ok_or_else(|| missing("file"))?;
            let contains = contains.ok_or_else(|| missing("contains"))?;
            let justification = justification.ok_or_else(|| missing("justification"))?;
            if rule_by_id(&rule).is_none() {
                return Err(format!("lint.toml:{line}: unknown rule id `{rule}`"));
            }
            if justification.trim().is_empty() {
                return Err(format!(
                    "lint.toml:{line}: empty justification; every grandfathered site needs a reason"
                ));
            }
            Ok(Some(AllowEntry {
                rule,
                file,
                contains,
                justification,
                toml_line: line,
            }))
        };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(done) = finish(&mut open)? {
                entries.push(done);
            }
            open = Some((lineno, [None, None, None, None]));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{lineno}: expected `key = \"value\"`"));
        };
        let Some((_, fields)) = open.as_mut() else {
            return Err(format!(
                "lint.toml:{lineno}: key outside an [[allow]] entry"
            ));
        };
        let slot = match key.trim() {
            "rule" => 0,
            "file" => 1,
            "contains" => 2,
            "justification" => 3,
            other => {
                return Err(format!("lint.toml:{lineno}: unknown key `{other}`"));
            }
        };
        let value = parse_string(value.trim())
            .ok_or_else(|| format!("lint.toml:{lineno}: value must be a \"quoted string\""))?;
        if fields[slot].replace(value).is_some() {
            return Err(format!("lint.toml:{lineno}: duplicate key"));
        }
    }
    if let Some(done) = finish(&mut open)? {
        entries.push(done);
    }
    Ok(entries)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a basic TOML string: `"…"` with `\"` and `\\` escapes.
fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else if c == '"' {
            return None; // unescaped quote mid-string: not one string
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments_and_escapes() {
        let toml = r#"
# header comment
[[allow]]
rule = "R001"  # trailing comment
file = "crates/core/src/engine.rs"
contains = ".expect(\"set above\")"
justification = "invariant: assigned two lines up"

[[allow]]
rule = "D002"
file = "crates/stream/src/stats.rs"
contains = "HashMap::with_capacity"
justification = "lookup-only table"
"#;
        let entries = parse(toml).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "R001");
        assert_eq!(entries[0].contains, ".expect(\"set above\")");
        assert_eq!(entries[1].toml_line, 9);
    }

    #[test]
    fn every_field_is_mandatory() {
        for missing in ["rule", "file", "contains", "justification"] {
            let toml: String = ["rule", "file", "contains", "justification"]
                .iter()
                .filter(|k| **k != missing)
                .map(|k| format!("{k} = \"R001\"\n"))
                .collect();
            let err = parse(&format!("[[allow]]\n{toml}")).expect_err("must fail");
            assert!(err.contains(missing), "{err}");
        }
    }

    #[test]
    fn unknown_rules_and_empty_justifications_are_rejected() {
        let bad_rule =
            "[[allow]]\nrule = \"Z999\"\nfile = \"x\"\ncontains = \"y\"\njustification = \"z\"\n";
        assert!(parse(bad_rule).expect_err("fails").contains("Z999"));
        let empty_just =
            "[[allow]]\nrule = \"R001\"\nfile = \"x\"\ncontains = \"y\"\njustification = \" \"\n";
        assert!(parse(empty_just)
            .expect_err("fails")
            .contains("justification"));
    }

    #[test]
    fn keys_outside_entries_are_rejected() {
        assert!(parse("rule = \"R001\"\n").is_err());
    }
}
