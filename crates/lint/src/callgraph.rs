//! Name-resolved call graph over the workspace symbol table.
//!
//! Edges are *syntactic*: any `name(…)` / `.name(…)` / `path::name(…)`
//! position inside a fn body links the enclosing fn to workspace fns
//! named `name`. Macro invocations (`name!(…)`) are not calls, and
//! `fn name(` definitions are not call sites. Resolution follows a
//! nearest-definition ladder — same file, else same crate, else the
//! whole workspace — and over-approximates *within* the chosen tier:
//! R008's panic-reachability question is "could a panic be ≤ N hops
//! from the hot path", and a missed edge is a missed panic. Without
//! the ladder, every `Vec::new()` inside a hot fn would link it to
//! every `fn new` in the workspace and drown the rule in noise.

use crate::symbols::{is_keyword, SymbolTable};
use std::collections::VecDeque;

/// One syntactic call position inside a fn body.
pub struct CallSite {
    /// Index of the calling fn in [`SymbolTable::fns`].
    pub caller: usize,
    /// The bare callee name at the call position.
    pub callee_name: String,
    /// Token index of the callee-name token in the caller's file.
    pub tok: usize,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Every call site, in (file, position) order.
    pub sites: Vec<CallSite>,
    /// Resolved adjacency: caller fn index → callee fn indices (deduped).
    pub edges: Vec<Vec<usize>>,
}

/// True if token `i` of `toks` is a call position: an ident that is not
/// a keyword, directly followed by `(`, and not a definition (`fn name(`).
pub fn is_call_position(toks: &[crate::lexer::Token], i: usize) -> bool {
    let t = &toks[i];
    t.kind == crate::lexer::TokenKind::Ident
        && !is_keyword(&t.text)
        && t.text != "self"
        && t.text != "Self"
        && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        && !(i > 0 && toks[i - 1].is_ident("fn"))
}

/// Resolves a bare callee name seen in file `fi` to candidate fn
/// indices via the nearest-definition ladder: definitions in the same
/// file win; else definitions in the same crate; else every workspace
/// fn with that name. Empty when the name is defined nowhere in the
/// workspace (std / external calls).
pub fn resolve_targets(st: &SymbolTable, fi: usize, name: &str) -> Vec<usize> {
    let Some(all) = st.fns_by_name.get(name) else {
        return Vec::new();
    };
    let same_file: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&t| st.fns[t].file == fi)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let crate_of = |rel: &str| -> Option<String> {
        Some(rel.strip_prefix("crates/")?.split('/').next()?.to_owned())
    };
    if let Some(mine) = crate_of(&st.files[fi].rel) {
        let same_crate: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&t| crate_of(&st.files[st.fns[t].file].rel).as_deref() == Some(&mine))
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
    }
    all.clone()
}

/// Builds the call graph for a symbol table.
pub fn build(st: &SymbolTable) -> CallGraph {
    let mut sites = Vec::new();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); st.fns.len()];
    for (fi, file) in st.files.iter().enumerate() {
        let toks = &file.lexed.tokens;
        for i in 0..toks.len() {
            if !is_call_position(toks, i) {
                continue;
            }
            let Some(caller) = st.enclosing_fn(fi, i) else {
                continue; // top-level const exprs etc.
            };
            let name = &toks[i].text;
            for t in resolve_targets(st, fi, name) {
                if !edges[caller].contains(&t) {
                    edges[caller].push(t);
                }
            }
            sites.push(CallSite {
                caller,
                callee_name: name.clone(),
                tok: i,
            });
        }
    }
    CallGraph { sites, edges }
}

/// A BFS layer entry: hop count from the nearest root plus the
/// predecessor fn (for rendering the call chain in diagnostics).
#[derive(Clone, Copy)]
pub struct Reach {
    /// Call-graph hops from the nearest root (roots are 0).
    pub hops: u32,
    /// The fn this one was reached from (`None` for roots).
    pub pred: Option<usize>,
}

/// Breadth-first reachability from `roots`, capped at `max_hops`.
/// Returns one entry per fn; `None` means unreachable within the cap.
pub fn reach_within(cg: &CallGraph, roots: &[usize], max_hops: u32) -> Vec<Option<Reach>> {
    let mut reach: Vec<Option<Reach>> = vec![None; cg.edges.len()];
    let mut queue = VecDeque::new();
    for &r in roots {
        if reach[r].is_none() {
            reach[r] = Some(Reach {
                hops: 0,
                pred: None,
            });
            queue.push_back(r);
        }
    }
    while let Some(f) = queue.pop_front() {
        let Some(here) = reach[f] else {
            continue; // unreachable: queued fns always have an entry
        };
        if here.hops == max_hops {
            continue;
        }
        for &callee in &cg.edges[f] {
            if reach[callee].is_none() {
                reach[callee] = Some(Reach {
                    hops: here.hops + 1,
                    pred: Some(f),
                });
                queue.push_back(callee);
            }
        }
    }
    reach
}

/// Renders the BFS call chain to `f` as `root → … → f`.
pub fn chain_to(st: &SymbolTable, reach: &[Option<Reach>], f: usize) -> String {
    let mut names = vec![st.fns[f].name.clone()];
    let mut cur = f;
    while let Some(Reach { pred: Some(p), .. }) = reach[cur] {
        names.push(st.fns[p].name.clone());
        cur = p;
    }
    names.reverse();
    names.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols;

    fn graph(src: &str) -> (SymbolTable, CallGraph) {
        let st = symbols::build(&[("crates/demo/src/lib.rs".to_owned(), src.to_owned())]);
        let cg = build(&st);
        (st, cg)
    }

    #[test]
    fn resolves_direct_method_and_path_calls() {
        let (st, cg) = graph(
            "fn a() { b(); }\n\
             fn b() { x.c(); }\n\
             fn c() { m::d(); }\n\
             fn d() { e!(); }\n\
             fn e() {}\n",
        );
        let idx = |n: &str| st.fns.iter().position(|f| f.name == n).unwrap();
        assert_eq!(cg.edges[idx("a")], [idx("b")]);
        assert_eq!(cg.edges[idx("b")], [idx("c")]);
        assert_eq!(cg.edges[idx("c")], [idx("d")]);
        // `e!()` is a macro, not a call.
        assert!(cg.edges[idx("d")].is_empty());
    }

    #[test]
    fn bfs_hops_and_chain_rendering() {
        let (st, cg) = graph(
            "fn offer() { a(); }\nfn a() { b(); }\nfn b() { c(); }\nfn c() { deep(); }\nfn deep() {}\n",
        );
        let idx = |n: &str| st.fns.iter().position(|f| f.name == n).unwrap();
        let reach = reach_within(&cg, &[idx("offer")], 3);
        assert_eq!(reach[idx("offer")].unwrap().hops, 0);
        assert_eq!(reach[idx("c")].unwrap().hops, 3);
        assert!(reach[idx("deep")].is_none(), "hop 4 is beyond the horizon");
        assert_eq!(chain_to(&st, &reach, idx("c")), "offer -> a -> b -> c");
    }
}
