//! Interprocedural def-use dataflow: the engine behind D007/R007/R008.
//!
//! Three workspace-level analyses run over the symbol table
//! ([`crate::symbols`]) and call graph ([`crate::callgraph`]):
//!
//! * **D007 determinism-taint** — nondeterminism *sources* (iteration
//!   over randomly-hashed maps, wall-clock reads, thread identity,
//!   pointer-derived values) must never flow into determinism *sinks*
//!   (digest/fingerprint/checksum fields and encoders, and any field of
//!   a `*Report`/`*Snapshot`/`*Wal*` struct). Taint is tracked through
//!   locals, struct-field assignments and function calls via per-fn
//!   summaries iterated to a fixpoint, so a source laundered through an
//!   intermediate helper in another crate is still caught.
//! * **R007 counter-conservation** — every increment site of a
//!   `records_*`/`*_lost` ledger counter (including increments hidden
//!   behind a `bump(&mut self.c)` helper, found via callee summaries)
//!   must sit on a def-use path that reaches both a `merge*`/`absorb*`
//!   fold and `bounds.rs` surfacing. This deepens R006 from name
//!   presence to actual flow.
//! * **R008 hot-path panic-reachability** — no `.unwrap()`/`.expect()`,
//!   unchecked indexing, or unproven-nonzero `/`/`%` inside any fn
//!   reachable in ≤ [`HOT_PATH_HOPS`] call-graph hops from the
//!   per-record entry points (`offer`/`offer_chunk`/`process`/`run`/
//!   `run_chunked`/`pump` in `crates/gigascope/src`), outside
//!   `supervise.rs`'s catch_unwind
//!   boundary. Explicit `panic!`/`assert!` macros are *not* flagged:
//!   those are deliberate, visible crash decisions.
//!
//! The abstract value lattice is deliberately small: a boolean "carries
//! a nondeterminism source", a bitmask of parameters whose taint the
//! value carries, and the set of ledger-counter names it was derived
//! from. Joins are unions, so iteration is monotone and the global
//! fixpoint terminates.

use crate::callgraph::{self, chain_to, is_call_position, reach_within, CallGraph};
use crate::lexer::{Token, TokenKind};
use crate::rules::{is_counter_name, rule_by_id, Finding, Rule, BOUNDS_PATH};
use crate::scope::{attr_group, match_brace};
use crate::symbols::{self, is_keyword, SymbolTable, WsFile};
use std::collections::{BTreeMap, BTreeSet};

/// R008's reachability horizon: a panic site this many call-graph hops
/// from a per-record entry point is "on the hot path".
pub const HOT_PATH_HOPS: u32 = 3;

/// Fixpoint round cap. Summaries grow monotonically, so the loop exits
/// early the first round nothing changes; the cap is a safety net.
const MAX_ROUNDS: usize = 10;

/// An abstract value: what a expression's result may carry.
#[derive(Clone, Debug, Default, PartialEq)]
struct V {
    /// Carries a nondeterminism source (D007 taint).
    src: bool,
    /// Bitmask of the enclosing fn's parameters whose value it carries.
    params: u64,
    /// Ledger-counter fields the value was derived from (R007 flow).
    counters: BTreeSet<String>,
}

impl V {
    fn join(&mut self, o: &V) {
        self.src |= o.src;
        self.params |= o.params;
        self.counters.extend(o.counters.iter().cloned());
    }
}

/// A per-fn transfer summary, grown monotonically across rounds.
#[derive(Clone, Debug, Default, PartialEq)]
struct Summary {
    /// The return value carries a nondeterminism source.
    returns_src: bool,
    /// Params whose taint flows to the return value.
    param_ret: u64,
    /// Params whose taint flows into a determinism sink inside the fn
    /// (directly or transitively through further calls).
    param_sink: u64,
    /// Params that are `&mut` counter references the fn increments
    /// (the `fn bump(c: &mut u64) { *c += 1 }` pattern).
    inc_params: u64,
    /// Counter names the return value is derived from.
    ret_counters: BTreeSet<String>,
}

impl Summary {
    fn join(&self, o: &Summary) -> Summary {
        let mut ret_counters = self.ret_counters.clone();
        ret_counters.extend(o.ret_counters.iter().cloned());
        Summary {
            returns_src: self.returns_src || o.returns_src,
            param_ret: self.param_ret | o.param_ret,
            param_sink: self.param_sink | o.param_sink,
            inc_params: self.inc_params | o.inc_params,
            ret_counters,
        }
    }
}

/// One recorded counter-increment site.
struct Inc {
    col: u32,
    width: u32,
    in_merge: bool,
    allowlisted: bool,
}

/// The dataflow engine's global state.
struct Flow<'a> {
    st: &'a SymbolTable,
    sums: Vec<Summary>,
    /// Fields assigned a source-carrying value in non-allowlisted code:
    /// reading them re-introduces the taint.
    field_src: BTreeSet<String>,
    /// Counter flow edges: counter name → idents its value flows into.
    counter_edges: BTreeMap<String, BTreeSet<String>>,
    /// Increment sites keyed by (counter, file index, line).
    increments: BTreeMap<(String, usize, u32), Inc>,
    /// Field names that are determinism sinks.
    sink_fields: BTreeSet<String>,
    /// Idents (fields, annotated locals) of std-hash map/set type.
    hash_names: BTreeSet<String>,
    findings: Vec<Finding>,
    /// False during fixpoint rounds (collect summaries only); true on
    /// the final pass that emits findings.
    report: bool,
    changed: bool,
    // --- current-fn context ---
    cur: usize,
    allow: bool,
    merge: bool,
    locals: BTreeMap<String, V>,
    hash_locals: BTreeSet<String>,
    cur_sum: Summary,
}

/// Methods on `iter`-shaped receivers that observe hash order.
const HASH_ITER: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// True if a callee name is a determinism sink by construction: it
/// folds its arguments into a digest / fingerprint / encoded artifact.
fn is_sink_call(name: &str) -> bool {
    name.contains("digest")
        || name.contains("fingerprint")
        || name.contains("checksum")
        || name.starts_with("encode")
}

/// True if a field name is a determinism sink even without a declared
/// owner struct.
fn is_sink_field_name(name: &str) -> bool {
    name.contains("digest") || name.contains("fingerprint") || name.contains("checksum")
}

/// Index of the `)` matching the `(` at `open` (last token if unmatched).
fn match_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Splits the argument list of a call (`open` = the `(`) into token
/// spans, at depth-1 commas.
fn split_args(toks: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut depth = 0usize;
    let mut start = open + 1;
    for (k, t) in toks.iter().enumerate().skip(open).take(close + 1 - open) {
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokenKind::Punct => {
                depth = depth.saturating_sub(1);
                if depth == 0 && k == close {
                    if k > start {
                        spans.push((start, k));
                    }
                    break;
                }
            }
            "," if t.kind == TokenKind::Punct && depth == 1 => {
                if k > start {
                    spans.push((start, k));
                }
                start = k + 1;
            }
            _ => {}
        }
    }
    spans
}

/// True if `text` is an integer literal that is provably nonzero.
fn nonzero_int(text: &str) -> bool {
    let t = text
        .trim_start_matches("0x")
        .trim_start_matches("0X")
        .trim_start_matches("0b")
        .trim_start_matches("0o");
    t.chars().any(|c| c.is_ascii_hexdigit() && c != '0')
}

fn mk_finding(
    rule: &'static Rule,
    file: &WsFile,
    line: u32,
    col: u32,
    width: u32,
    message: String,
) -> Finding {
    Finding {
        rule: rule.id,
        severity: rule.severity,
        file: file.rel.clone(),
        line,
        col,
        width: width.max(1),
        message,
        help: rule.help,
        snippet: file.line_text(line).to_owned(),
    }
}

impl<'a> Flow<'a> {
    fn new(st: &'a SymbolTable) -> Flow<'a> {
        // Sink fields: digest-like names, plus every field of a struct
        // whose name marks a durable/reported artifact.
        let mut sink_fields = BTreeSet::new();
        for (sname, fields) in &st.struct_fields {
            let sinky_owner =
                sname.contains("Report") || sname.contains("Snapshot") || sname.contains("Wal");
            for f in fields {
                if sinky_owner || is_sink_field_name(f) {
                    sink_fields.insert(f.clone());
                }
            }
        }
        // Idents of std-hash type: `name: HashMap<…>` / `HashSet<…>`
        // anywhere (struct fields, let annotations, fn params).
        let mut hash_names = BTreeSet::new();
        for file in &st.files {
            let toks = &file.lexed.tokens;
            for i in 0..toks.len() {
                let t = &toks[i];
                if t.kind != TokenKind::Ident || is_keyword(&t.text) {
                    continue;
                }
                if !toks.get(i + 1).is_some_and(|n| n.is_punct(":")) {
                    continue;
                }
                let typed_hash = toks
                    .iter()
                    .skip(i + 2)
                    .take(4)
                    .any(|n| n.is_ident("HashMap") || n.is_ident("HashSet"));
                if typed_hash {
                    hash_names.insert(t.text.clone());
                }
            }
        }
        Flow {
            st,
            sums: vec![Summary::default(); st.fns.len()],
            field_src: BTreeSet::new(),
            counter_edges: BTreeMap::new(),
            increments: BTreeMap::new(),
            sink_fields,
            hash_names,
            findings: Vec::new(),
            report: false,
            changed: false,
            cur: 0,
            allow: false,
            merge: false,
            locals: BTreeMap::new(),
            hash_locals: BTreeSet::new(),
            cur_sum: Summary::default(),
        }
    }

    /// Nearest-definition resolution, shared with the call graph:
    /// same file, else same crate, else anywhere in the workspace.
    fn resolve(&self, fi: usize, name: &str) -> Vec<usize> {
        crate::callgraph::resolve_targets(self.st, fi, name)
    }

    /// Analyzes one fn body, updating its summary and (on the report
    /// pass) emitting findings.
    fn walk_fn(&mut self, f_idx: usize) {
        let st = self.st;
        let f = &st.fns[f_idx];
        let Some((open, close)) = f.body else {
            return;
        };
        self.cur = f_idx;
        self.allow = f.allowlisted;
        self.merge = f.is_merge;
        self.locals.clear();
        self.hash_locals.clear();
        self.cur_sum = Summary::default();
        for (i, p) in f.params.iter().enumerate().take(64) {
            self.locals.insert(
                p.clone(),
                V {
                    params: 1 << i,
                    ..V::default()
                },
            );
        }
        let mut ret = V::default();
        self.walk_block(f.file, open + 1, close, &mut ret);
        let new = Summary {
            returns_src: ret.src,
            param_ret: ret.params,
            ret_counters: ret.counters,
            param_sink: self.cur_sum.param_sink,
            inc_params: self.cur_sum.inc_params,
        };
        let joined = self.sums[f_idx].join(&new);
        if joined != self.sums[f_idx] {
            self.sums[f_idx] = joined;
            self.changed = true;
        }
    }

    /// Walks statements in `[start, end)`; tail expressions join `ret`.
    fn walk_block(&mut self, fi: usize, start: usize, end: usize, ret: &mut V) {
        let st = self.st;
        let toks = &st.files[fi].lexed.tokens;
        let mut i = start;
        while i < end {
            let t = &toks[i];
            if t.is_punct(";") || t.is_punct(",") || t.is_punct("=>") {
                i += 1;
                continue;
            }
            if t.is_punct("#") {
                i = match attr_group(toks, i) {
                    Some((_, next)) => next,
                    None => i + 1,
                };
                continue;
            }
            if t.is_punct("{") {
                let close = match_brace(toks, i);
                self.walk_block(fi, i + 1, close.min(end), ret);
                i = close + 1;
                continue;
            }
            if t.is_ident("let") {
                i = self.let_stmt(fi, i, end);
                continue;
            }
            if t.is_ident("for") {
                i = self.for_header(fi, i, end);
                continue;
            }
            if t.is_ident("return") {
                let stop = scan_to_semi(toks, i + 1, end);
                let v = self.eval(fi, i + 1, stop);
                ret.join(&v);
                i = stop;
                continue;
            }
            if t.is_ident("if") || t.is_ident("while") || t.is_ident("match") {
                // Evaluate the header (call sites inside conditions and
                // scrutinees still matter), then let the `{` branch
                // recurse into the body.
                let j = scan_to_block(toks, i + 1, end);
                self.eval(fi, i + 1, j);
                i = j;
                continue;
            }
            if t.is_ident("fn") {
                // Nested fn: walked separately via its own FnDef.
                let mut j = i + 1;
                while j < end {
                    if toks[j].is_punct(";") {
                        j += 1;
                        break;
                    }
                    if toks[j].is_punct("{") {
                        j = match_brace(toks, j) + 1;
                        break;
                    }
                    j += 1;
                }
                i = j.max(i + 1);
                continue;
            }
            if t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "use"
                        | "mod"
                        | "const"
                        | "static"
                        | "type"
                        | "struct"
                        | "enum"
                        | "impl"
                        | "trait"
                )
            {
                // Non-expression item inside a body: skip it wholesale.
                let mut j = i + 1;
                while j < end {
                    if toks[j].is_punct(";") {
                        j += 1;
                        break;
                    }
                    if toks[j].is_punct("{") {
                        j = match_brace(toks, j) + 1;
                        break;
                    }
                    j += 1;
                }
                i = j.max(i + 1);
                continue;
            }
            if t.is_ident("else") || t.is_ident("loop") || t.is_ident("unsafe") {
                i += 1;
                continue;
            }
            // Generic statement: split on a top-level assignment op.
            let (stop, term) = stmt_end(toks, i, end);
            if let Some((k, op)) = top_level_assign(toks, i, stop) {
                self.assign_stmt(fi, i, k, op, k + 1, stop);
            } else {
                let v = self.eval(fi, i, stop);
                if term.is_none() && stop >= end {
                    ret.join(&v);
                }
            }
            i = stop + usize::from(term.is_some());
        }
    }

    /// `let PATTERN (: TYPE)? (= EXPR)? ;` — binds pattern idents to
    /// the RHS value; returns the index just past the statement.
    fn let_stmt(&mut self, fi: usize, i: usize, end: usize) -> usize {
        let st = self.st;
        let toks = &st.files[fi].lexed.tokens;
        let mut pats: Vec<String> = Vec::new();
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < end {
            let t = &toks[j];
            match t.text.as_str() {
                "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
                ")" | "]" | "}" if t.kind == TokenKind::Punct => depth -= 1,
                "=" | ":" | ";" if t.kind == TokenKind::Punct && depth == 0 => break,
                _ => {
                    if t.kind == TokenKind::Ident
                        && !is_keyword(&t.text)
                        && t.text != "self"
                        && !toks
                            .get(j + 1)
                            .is_some_and(|n| n.is_punct("::") || n.is_punct("{") || n.is_punct("("))
                    {
                        pats.push(t.text.clone());
                    }
                }
            }
            j += 1;
        }
        let mut hash = false;
        if toks.get(j).is_some_and(|t| t.is_punct(":")) {
            // Type annotation: angle-aware skip to a depth-0 `=`/`;`.
            j += 1;
            let mut d = 0i32;
            while j < end {
                let t = &toks[j];
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" if t.kind == TokenKind::Punct => d += 1,
                    "<<" => d += 2,
                    ")" | "]" | "}" | ">" if t.kind == TokenKind::Punct => d -= 1,
                    ">>" => d -= 2,
                    "=" | ";" if t.kind == TokenKind::Punct && d <= 0 => break,
                    _ => {
                        if t.is_ident("HashMap") || t.is_ident("HashSet") {
                            hash = true;
                        }
                    }
                }
                j += 1;
            }
        }
        let mut v = V::default();
        if toks.get(j).is_some_and(|t| t.is_punct("=")) {
            let stop = scan_to_semi(toks, j + 1, end);
            for t in &toks[j + 1..stop.min(toks.len())] {
                if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    hash = true;
                }
            }
            v = self.eval(fi, j + 1, stop);
            j = stop;
        }
        for p in pats {
            if hash {
                self.hash_locals.insert(p.clone());
            }
            self.locals.insert(p, v.clone());
        }
        if toks.get(j).is_some_and(|t| t.is_punct(";")) {
            j += 1;
        }
        j.max(i + 1)
    }

    /// `for PATTERN in EXPR {` — binds the pattern to the iterated
    /// value; direct iteration over a hash-named container is a source.
    fn for_header(&mut self, fi: usize, i: usize, end: usize) -> usize {
        let st = self.st;
        let toks = &st.files[fi].lexed.tokens;
        let mut pats: Vec<String> = Vec::new();
        let mut j = i + 1;
        while j < end && !toks[j].is_ident("in") {
            let t = &toks[j];
            if t.kind == TokenKind::Ident
                && !is_keyword(&t.text)
                && t.text != "self"
                && !toks
                    .get(j + 1)
                    .is_some_and(|n| n.is_punct("::") || n.is_punct("{") || n.is_punct("("))
            {
                pats.push(t.text.clone());
            }
            j += 1;
        }
        let expr_start = j + 1;
        let stop = scan_to_block(toks, expr_start, end);
        let mut v = self.eval(fi, expr_start, stop);
        for t in &toks[expr_start..stop.min(toks.len())] {
            if t.kind == TokenKind::Ident
                && (self.hash_locals.contains(&t.text) || self.hash_names.contains(&t.text))
            {
                v.src = true;
            }
        }
        for p in pats {
            self.locals.insert(p, v.clone());
        }
        stop
    }

    /// `LHS op RHS` — routes field writes, local rebinds and deref
    /// increments.
    fn assign_stmt(
        &mut self,
        fi: usize,
        lstart: usize,
        lend: usize,
        op: &str,
        rstart: usize,
        rend: usize,
    ) {
        let rv = self.eval(fi, rstart, rend);
        let st = self.st;
        let toks = &st.files[fi].lexed.tokens;
        if lend <= lstart {
            return;
        }
        let last = lend - 1;
        let lt = &toks[last];
        // `x.f = x.f.saturating_add(n)` counts as an increment of f.
        let saturating_inc = |name: &str| {
            op == "="
                && toks[rstart..rend.min(toks.len())].iter().any(|t| {
                    t.is_ident("saturating_add")
                        || t.is_ident("wrapping_add")
                        || t.is_ident("checked_add")
                })
                && toks[rstart..rend.min(toks.len())]
                    .iter()
                    .any(|t| t.is_ident(name))
        };
        if toks[lstart].is_punct("*")
            && lend - lstart == 2
            && toks[lstart + 1].kind == TokenKind::Ident
        {
            // `*p += 1` on a `&mut` counter param: the increment is the
            // caller's, recorded via the fn summary.
            let inc = op == "+=" || saturating_inc(&toks[lstart + 1].text);
            if inc {
                if let Some(lv) = self.locals.get(&toks[lstart + 1].text) {
                    let bits = lv.params;
                    self.cur_sum.inc_params |= bits;
                }
            }
        } else if lt.kind == TokenKind::Ident {
            if last > lstart && toks[last - 1].is_punct(".") {
                let inc = op == "+=" || saturating_inc(&lt.text);
                let name = lt.text.clone();
                self.handle_field_write(fi, &name, &rv, inc, last);
            } else if lend - lstart == 1 {
                let name = lt.text.clone();
                if toks[rstart..rend.min(toks.len())]
                    .iter()
                    .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
                {
                    self.hash_locals.insert(name.clone());
                }
                if op == "=" {
                    self.locals.insert(name, rv);
                } else {
                    self.locals.entry(name).or_default().join(&rv);
                }
            }
        }
    }

    /// Records the consequences of writing value `v` into field `fname`
    /// at token `tok_idx`: sink findings, global field taint, counter
    /// flow edges and increment sites.
    fn handle_field_write(&mut self, fi: usize, fname: &str, v: &V, inc: bool, tok_idx: usize) {
        let st = self.st;
        let file = &st.files[fi];
        let t = &file.lexed.tokens[tok_idx];
        if inc && is_counter_name(fname) {
            let key = (fname.to_owned(), fi, t.line);
            let in_merge = self.merge;
            let allow = self.allow;
            let entry = self.increments.entry(key).or_insert(Inc {
                col: t.col,
                width: t.text.chars().count().max(1) as u32,
                in_merge,
                allowlisted: allow,
            });
            // A site seen both inside and outside a merge keeps the
            // stricter classification.
            entry.in_merge &= in_merge;
            entry.allowlisted &= allow;
        }
        let sink = self.sink_fields.contains(fname) || is_sink_field_name(fname);
        if v.src && !self.allow {
            if sink && self.report {
                if let Some(rule) = rule_by_id("D007") {
                    self.findings.push(mk_finding(
                        rule,
                        file,
                        t.line,
                        t.col,
                        t.text.chars().count().max(1) as u32,
                        format!(
                            "nondeterministic value flows into determinism sink field `{fname}`"
                        ),
                    ));
                }
            }
            if self.field_src.insert(fname.to_owned()) {
                self.changed = true;
            }
        }
        if v.params != 0 && sink {
            self.cur_sum.param_sink |= v.params;
        }
        for c in &v.counters {
            if c != fname
                && self
                    .counter_edges
                    .entry(c.clone())
                    .or_default()
                    .insert(fname.to_owned())
            {
                self.changed = true;
            }
        }
    }

    /// Evaluates the expression span `[start, end)` to an abstract
    /// value. A linear scan: recognized shapes (casts, struct literals,
    /// calls, field reads, local reads) contribute; everything else is
    /// skipped.
    fn eval(&mut self, fi: usize, start: usize, end: usize) -> V {
        let st = self.st;
        let toks = &st.files[fi].lexed.tokens;
        let mut v = V::default();
        let mut i = start;
        while i < end.min(toks.len()) {
            let t = &toks[i];
            if t.is_punct("#") {
                if let Some((_, next)) = attr_group(toks, i) {
                    i = next;
                    continue;
                }
            }
            // `as *const T` / `as *mut T`: a pointer-derived value.
            if t.is_ident("as") && toks.get(i + 1).is_some_and(|n| n.is_punct("*")) {
                v.src = true;
                i += 2;
                continue;
            }
            if t.kind != TokenKind::Ident || (is_keyword(&t.text) && !t.is_ident("Self")) {
                i += 1;
                continue;
            }
            let prev_dot = i > 0 && toks[i - 1].is_punct(".");
            let prev_path = i > 0 && toks[i - 1].is_punct("::");
            let prev_kw =
                i > 0 && toks[i - 1].kind == TokenKind::Ident && is_keyword(&toks[i - 1].text);
            let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            let next_brace = toks.get(i + 1).is_some_and(|n| n.is_punct("{"));

            // Struct literal: `Name { field: expr, .. }` for a known
            // struct (or `Self`), not in `impl`/`for`/pattern position.
            if next_brace
                && !prev_kw
                && !prev_dot
                && (t.text == "Self" || st.struct_fields.contains_key(&t.text))
            {
                let open = i + 1;
                let close = match_brace(toks, open);
                let mut k = open + 1;
                let mut depth = 1i32;
                while k < close {
                    let kt = &toks[k];
                    match kt.text.as_str() {
                        "(" | "[" | "{" if kt.kind == TokenKind::Punct => depth += 1,
                        ")" | "]" | "}" if kt.kind == TokenKind::Punct => depth -= 1,
                        _ => {}
                    }
                    if depth == 1
                        && kt.kind == TokenKind::Ident
                        && !is_keyword(&kt.text)
                        && !(k > 0 && toks[k - 1].is_punct(":"))
                    {
                        if toks.get(k + 1).is_some_and(|n| n.is_punct(":")) {
                            // `field: expr` — find the value span.
                            let mut r = k + 2;
                            let mut d = 0i32;
                            while r < close {
                                let rt = &toks[r];
                                match rt.text.as_str() {
                                    "(" | "[" | "{" if rt.kind == TokenKind::Punct => d += 1,
                                    ")" | "]" | "}" if rt.kind == TokenKind::Punct => d -= 1,
                                    "," if rt.kind == TokenKind::Punct && d == 0 => break,
                                    _ => {}
                                }
                                r += 1;
                            }
                            let fname = kt.text.clone();
                            let fv = self.eval(fi, k + 2, r);
                            self.handle_field_write(fi, &fname, &fv, false, k);
                            v.join(&fv);
                            k = r;
                            continue;
                        }
                        if toks
                            .get(k + 1)
                            .is_some_and(|n| n.is_punct(",") || n.is_punct("}"))
                            && self.locals.contains_key(&kt.text)
                        {
                            // Shorthand `field,` from a same-named local.
                            let fname = kt.text.clone();
                            let fv = self.locals[&kt.text].clone();
                            self.handle_field_write(fi, &fname, &fv, false, k);
                            v.join(&fv);
                        }
                    }
                    k += 1;
                }
                i = close + 1;
                continue;
            }

            // Call position.
            if is_call_position(toks, i) {
                let open = i + 1;
                let close = match_paren(toks, open);
                let arg_spans = split_args(toks, open, close);
                let argvs: Vec<V> = arg_spans
                    .iter()
                    .map(|&(a, b)| self.eval(fi, a, b))
                    .collect();
                let name = toks[i].text.clone();
                let mut out = V::default();
                // Wall-clock reads (D006 bans the call site itself in
                // runtime code; here the *value* is tracked so clocks
                // read in allowlisted scopes cannot leak out).
                if matches!(name.as_str(), "now" | "elapsed" | "duration_since")
                    && (prev_dot || prev_path)
                {
                    out.src = true;
                }
                // Thread identity.
                if name == "current" && prev_path && i >= 2 && toks[i - 2].is_ident("thread") {
                    out.src = true;
                }
                // Iteration over a randomly-hashed container.
                if HASH_ITER.contains(&name.as_str()) && prev_dot && i >= 2 {
                    let recv = &toks[i - 2];
                    if recv.kind == TokenKind::Ident
                        && (self.hash_locals.contains(&recv.text)
                            || self.hash_names.contains(&recv.text))
                    {
                        out.src = true;
                    }
                }
                // Name-based sinks (digest/fingerprint/checksum/encode*).
                if is_sink_call(&name) {
                    for (j, av) in argvs.iter().enumerate() {
                        if av.src {
                            self.sink_arg_finding(fi, i, &name, j);
                        }
                        self.cur_sum.param_sink |= av.params;
                    }
                }
                let targets = self.resolve(fi, &name);
                if targets.is_empty() {
                    // Unknown callee: assume the result carries every
                    // argument's taint.
                    for av in &argvs {
                        out.join(av);
                    }
                } else {
                    for &tgt in &targets {
                        let s = self.sums[tgt].clone();
                        if s.returns_src {
                            out.src = true;
                        }
                        out.counters.extend(s.ret_counters.iter().cloned());
                        for (j, av) in argvs.iter().enumerate().take(64) {
                            let bit = 1u64 << j;
                            if s.param_ret & bit != 0 {
                                out.join(av);
                            }
                            if s.param_sink & bit != 0 {
                                if av.src {
                                    self.sink_arg_finding(fi, i, &name, j);
                                }
                                self.cur_sum.param_sink |= av.params;
                            }
                            if s.inc_params & bit != 0 {
                                self.mark_inc_arg(fi, arg_spans[j]);
                            }
                        }
                    }
                }
                v.join(&out);
                i = close + 1;
                continue;
            }

            // Field read: `.name` not followed by `(`.
            if prev_dot && !next_paren {
                if is_counter_name(&t.text) {
                    v.counters.insert(t.text.clone());
                }
                if self.field_src.contains(&t.text) {
                    v.src = true;
                }
                i += 1;
                continue;
            }

            // Bare local read.
            if !prev_dot
                && !prev_path
                && !toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct("::") || n.is_punct("!"))
            {
                if let Some(lv) = self.locals.get(&t.text) {
                    let lv = lv.clone();
                    v.join(&lv);
                }
            }
            i += 1;
        }
        v
    }

    /// A callee increments this argument (`bump(&mut self.c)`): record
    /// the increment at the call site if the argument names a counter
    /// field, or propagate through our own params.
    fn mark_inc_arg(&mut self, fi: usize, span: (usize, usize)) {
        let st = self.st;
        let toks = &st.files[fi].lexed.tokens;
        let (a, b) = span;
        if b <= a || b > toks.len() {
            return;
        }
        let last = &toks[b - 1];
        if last.kind != TokenKind::Ident {
            return;
        }
        if b >= 2 && toks[b - 2].is_punct(".") && is_counter_name(&last.text) {
            let key = (last.text.clone(), fi, last.line);
            let in_merge = self.merge;
            let allow = self.allow;
            let entry = self.increments.entry(key).or_insert(Inc {
                col: last.col,
                width: last.text.chars().count().max(1) as u32,
                in_merge,
                allowlisted: allow,
            });
            entry.in_merge &= in_merge;
            entry.allowlisted &= allow;
        } else if let Some(lv) = self.locals.get(&last.text) {
            let bits = lv.params;
            self.cur_sum.inc_params |= bits;
        }
    }

    /// Emits a D007 finding for a source-carrying argument reaching a
    /// sink call.
    fn sink_arg_finding(&mut self, fi: usize, call_tok: usize, name: &str, arg: usize) {
        if !self.report || self.allow {
            return;
        }
        let st = self.st;
        let file = &st.files[fi];
        let t = &file.lexed.tokens[call_tok];
        let Some(rule) = rule_by_id("D007") else {
            return;
        };
        self.findings.push(mk_finding(
            rule,
            file,
            t.line,
            t.col,
            t.text.chars().count().max(1) as u32,
            format!(
                "nondeterministic value flows into sink `{name}(…)` (argument {})",
                arg + 1
            ),
        ));
    }
}

/// Index of the first depth-0 `;` in `[start, end)` (or `end`). Depth
/// counts all bracket kinds, so `;` inside nested blocks is invisible.
fn scan_to_semi(toks: &[Token], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < end {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokenKind::Punct => depth -= 1,
            ";" if t.kind == TokenKind::Punct && depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    end
}

/// Index of the first depth-0 `{` in `[start, end)` (or `end`), where
/// depth counts only `(`/`[` — the block opener itself must stay
/// visible.
fn scan_to_block(toks: &[Token], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < end {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" if t.kind == TokenKind::Punct => depth -= 1,
            "{" if t.kind == TokenKind::Punct && depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    end
}

/// Finds the end of a generic statement starting at `i`: the first
/// depth-0 `;`, `,` or `=>` (braces count toward depth, so a trailing
/// `match … { … }` stays inside the statement's RHS). Returns the
/// terminator index and whether a terminator (vs `end`) stopped the
/// scan.
fn stmt_end(toks: &[Token], i: usize, end: usize) -> (usize, Option<()>) {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokenKind::Punct => depth -= 1,
            ";" | "," | "=>" if t.kind == TokenKind::Punct && depth <= 0 => {
                return (j, Some(()));
            }
            _ => {}
        }
        j += 1;
    }
    (end, None)
}

/// The first depth-0 assignment operator in `[i, stop)`, if any.
fn top_level_assign(toks: &[Token], i: usize, stop: usize) -> Option<(usize, &str)> {
    const OPS: &[&str] = &[
        "=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>=",
    ];
    let mut depth = 0i32;
    let mut j = i;
    while j < stop {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokenKind::Punct => depth -= 1,
            op if t.kind == TokenKind::Punct && depth == 0 && OPS.contains(&op) => {
                return Some((j, &toks[j].text));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// True if the `[` at `i` is indexing an expression (vs an array
/// literal/type, slice pattern or attribute) — the panicking kind.
fn is_index_site(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = &toks[i - 1];
    let base = (prev.kind == TokenKind::Ident && !is_keyword(&prev.text))
        || prev.is_punct(")")
        || prev.is_punct("]");
    if !base {
        return false;
    }
    // `x[..]` takes the full range: provably in bounds.
    !(toks.get(i + 1).is_some_and(|n| n.is_punct(".."))
        && toks.get(i + 2).is_some_and(|n| n.is_punct("]")))
}

/// True if the divisor of the `/`-family op at `i` is provably safe:
/// a nonzero literal, a float (float division cannot panic), or an
/// expression clamped with `.max(<nonzero literal>)` in the near
/// window.
fn div_rhs_safe(toks: &[Token], i: usize, close: usize) -> bool {
    let mut j = i + 1;
    while j <= close
        && (toks[j].is_punct("(")
            || toks[j].is_punct("&")
            || toks[j].is_punct("*")
            || toks[j].is_punct("-"))
    {
        j += 1;
    }
    match toks.get(j).map(|t| t.kind) {
        Some(TokenKind::Float) => return true,
        Some(TokenKind::Int) => return nonzero_int(&toks[j].text),
        _ => {}
    }
    // Window scan for `.max(<nonzero>)` or a float-typed divisor.
    let w_end = (i + 40).min(close);
    let mut depth = 0i32;
    let mut k = i + 1;
    while k <= w_end && k < toks.len() {
        let t = &toks[k];
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokenKind::Punct => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            ";" | "," if t.kind == TokenKind::Punct && depth <= 0 => break,
            "f64" | "f32" if t.kind == TokenKind::Ident => return true,
            "max"
                if t.kind == TokenKind::Ident
                    && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
                    && toks
                        .get(k + 2)
                        .is_some_and(|n| n.kind == TokenKind::Int && nonzero_int(&n.text)) =>
            {
                return true;
            }
            _ => {}
        }
        k += 1;
    }
    false
}

/// R007 — every non-merge, non-test increment of a ledger counter in
/// `crates/gigascope/src` must have a def-use path (over counter flow
/// edges) reaching both a merge/absorb fold and `bounds.rs`.
fn r007(st: &SymbolTable, flow: &Flow<'_>, out: &mut Vec<Finding>) {
    let Some(rule) = rule_by_id("R007") else {
        return;
    };
    let mut merge_idents: BTreeSet<&str> = BTreeSet::new();
    for f in &st.fns {
        if !f.is_merge {
            continue;
        }
        let Some((o, c)) = f.body else { continue };
        for t in &st.files[f.file].lexed.tokens[o..=c.min(st.files[f.file].lexed.tokens.len() - 1)]
        {
            if t.kind == TokenKind::Ident {
                merge_idents.insert(&t.text);
            }
        }
    }
    let mut bounds_idents: BTreeSet<&str> = BTreeSet::new();
    for file in &st.files {
        if file.rel.ends_with("/bounds.rs") {
            for t in &file.lexed.tokens {
                if t.kind == TokenKind::Ident {
                    bounds_idents.insert(&t.text);
                }
            }
        }
    }
    for ((counter, fi, line), inc) in &flow.increments {
        if inc.in_merge || inc.allowlisted {
            continue;
        }
        let file = &st.files[*fi];
        if !file.rel.starts_with("crates/gigascope/src/") || file.rel.ends_with("/bounds.rs") {
            continue;
        }
        // Transitive closure of the counter over flow edges.
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<&str> = vec![counter.as_str()];
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            if let Some(next) = flow.counter_edges.get(c) {
                for n in next {
                    stack.push(n.as_str());
                }
            }
        }
        let in_merge = seen.iter().any(|c| merge_idents.contains(c));
        let in_bounds = seen.iter().any(|c| bounds_idents.contains(c));
        if in_merge && in_bounds {
            continue;
        }
        let mut missing: Vec<String> = Vec::new();
        if !in_merge {
            missing.push("a merge/absorb fold".to_owned());
        }
        if !in_bounds {
            missing.push(format!("surfacing in {BOUNDS_PATH}"));
        }
        out.push(mk_finding(
            rule,
            file,
            *line,
            inc.col,
            inc.width,
            format!(
                "increment of loss counter `{counter}` has no def-use path to {}",
                missing.join(" or ")
            ),
        ));
    }
}

/// R008 — scan every fn reachable within [`HOT_PATH_HOPS`] of a
/// per-record entry point for implicit panic sites.
fn r008(st: &SymbolTable, cg: &CallGraph, out: &mut Vec<Finding>) {
    let Some(rule) = rule_by_id("R008") else {
        return;
    };
    let roots: Vec<usize> = st
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            let file = &st.files[f.file];
            matches!(
                f.name.as_str(),
                "offer" | "offer_chunk" | "process" | "run" | "run_chunked" | "pump"
            ) && file.rel.starts_with("crates/gigascope/src/")
                && !file.rel.ends_with("supervise.rs")
                && !f.allowlisted
        })
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }
    let reach = reach_within(cg, &roots, HOT_PATH_HOPS);
    for (fidx, r) in reach.iter().enumerate() {
        let Some(r) = r else { continue };
        let f = &st.fns[fidx];
        let file = &st.files[f.file];
        if !file.rel.starts_with("crates/")
            || file.rel.starts_with("crates/lint/")
            || file.rel.starts_with("crates/bench/")
            || file.rel.ends_with("supervise.rs")
            || f.allowlisted
        {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        let toks = &file.lexed.tokens;
        let chain = chain_to(st, &reach, fidx);
        let hops = r.hops;
        for i in open..=close.min(toks.len() - 1) {
            let t = &toks[i];
            if file.in_test_span(t.line) {
                continue;
            }
            let message = if t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "unwrap" | "expect")
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                Some(format!(
                    "`.{}()` can panic {hops} hop(s) from the per-record hot path ({chain})",
                    t.text
                ))
            } else if t.is_punct("[") && is_index_site(toks, i) {
                Some(format!(
                    "unchecked indexing can panic {hops} hop(s) from the per-record hot path ({chain})"
                ))
            } else if t.kind == TokenKind::Punct
                && matches!(t.text.as_str(), "/" | "%" | "/=" | "%=")
                && !div_rhs_safe(toks, i, close)
            {
                Some(format!(
                    "`{}` with an unproven-nonzero divisor can panic {hops} hop(s) from the per-record hot path ({chain})",
                    t.text
                ))
            } else {
                None
            };
            if let Some(message) = message {
                out.push(mk_finding(
                    rule,
                    file,
                    t.line,
                    t.col,
                    t.text.chars().count().max(1) as u32,
                    message,
                ));
            }
        }
    }
}

/// Runs the three dataflow rules over a set of `(rel_path, source)`
/// files and returns the findings, inline-pragma-filtered and ordered
/// by position. The allowlist is applied by the caller
/// ([`crate::lint_workspace`]), like every other rule.
pub fn analyze(inputs: &[(String, String)]) -> Vec<Finding> {
    let st = symbols::build(inputs);
    let cg = callgraph::build(&st);
    let mut flow = Flow::new(&st);
    for _ in 0..MAX_ROUNDS {
        flow.changed = false;
        for f in 0..st.fns.len() {
            flow.walk_fn(f);
        }
        if !flow.changed {
            break;
        }
    }
    flow.report = true;
    for f in 0..st.fns.len() {
        flow.walk_fn(f);
    }
    let mut findings = std::mem::take(&mut flow.findings);
    r007(&st, &flow, &mut findings);
    r008(&st, &cg, &mut findings);
    findings.retain(|f| {
        let Some(file) = st.files.iter().find(|w| w.rel == f.file) else {
            return true;
        };
        !file.lexed.suppressions.iter().any(|s| {
            (f.line == s.line || f.line == s.line + 1) && s.rules.iter().any(|r| r == f.rule)
        })
    });
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.col == b.col && a.rule == b.rule
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let inputs: Vec<(String, String)> = files
            .iter()
            .map(|(r, s)| ((*r).to_owned(), (*s).to_owned()))
            .collect();
        analyze(&inputs)
    }

    fn rules_of(fs: &[Finding]) -> Vec<&str> {
        fs.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d007_direct_field_taint() {
        let fs = run(&[(
            "crates/gigascope/src/snap.rs",
            "pub struct Snapshot { pub digest: u64 }\n\
             fn seal(s: &mut Snapshot) { let p = &s as *const _ as usize;\n\
                 s.digest = p as u64; }\n",
        )]);
        assert_eq!(rules_of(&fs), ["D007"], "{fs:?}");
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn d007_taint_through_an_intermediate_call() {
        // The source is laundered through `tag()` and `widen()` — only
        // interprocedural summaries can connect it to the sink.
        let fs = run(&[(
            "crates/gigascope/src/snap.rs",
            "pub struct Snapshot { pub digest: u64 }\n\
             fn tag() -> u64 { let t = std::thread::current(); widen_src(t) }\n\
             fn widen_src(x: u64) -> u64 { x }\n\
             fn seal(s: &mut Snapshot) { s.digest = tag(); }\n",
        )]);
        assert_eq!(rules_of(&fs), ["D007"], "{fs:?}");
        assert_eq!(fs[0].line, 4);
    }

    #[test]
    fn d007_clean_when_source_stays_in_tests() {
        let fs = run(&[(
            "crates/gigascope/src/snap.rs",
            "pub struct Snapshot { pub digest: u64 }\n\
             fn seal(s: &mut Snapshot, epoch: u64) { s.digest = epoch ^ 7; }\n\
             #[cfg(test)]\nmod t {\n    fn clock() -> u64 { Instant::now(); 0 }\n}\n",
        )]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn r007_increment_behind_a_helper_needs_a_merge_path() {
        let fs = run(&[(
            "crates/gigascope/src/spill.rs",
            "pub struct Ledger { pub records_spilled_lost: u64, pub seen: u64 }\n\
             fn bump(c: &mut u64) { *c += 1; }\n\
             impl Ledger {\n\
                 fn on_spill(&mut self) { bump(&mut self.records_spilled_lost); }\n\
                 fn merge(&mut self, o: &Ledger) { self.seen += o.seen; }\n\
             }\n",
        )]);
        assert_eq!(rules_of(&fs), ["R007"], "{fs:?}");
        assert!(fs[0].message.contains("records_spilled_lost"));
    }

    #[test]
    fn r007_clean_when_fold_and_bounds_exist() {
        let fs = run(&[
            (
                "crates/gigascope/src/spill.rs",
                "pub struct Ledger { pub records_spilled_lost: u64 }\n\
                 impl Ledger {\n\
                     fn on_spill(&mut self) { self.records_spilled_lost += 1; }\n\
                     fn merge(&mut self, o: &Ledger) { \
                      self.records_spilled_lost += o.records_spilled_lost; }\n\
                 }\n",
            ),
            (
                "crates/gigascope/src/bounds.rs",
                "pub fn widen(records_spilled_lost: u64) -> u64 { records_spilled_lost }\n",
            ),
        ]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn r008_panic_sites_within_three_hops_fire_and_hop_four_does_not() {
        let fs = run(&[(
            "crates/gigascope/src/table.rs",
            "pub fn offer(x: u64) { admit(x); }\n\
             fn admit(x: u64) { probe(x); }\n\
             fn probe(x: u64) { let v = vec![1u64]; let _ = v[x as usize]; deep(x); }\n\
             fn deep(x: u64) { deeper(x); }\n\
             fn deeper(x: u64) { let o: Option<u64> = None; o.unwrap(); }\n",
        )]);
        // probe is 2 hops out: the indexing fires. deeper is 4 hops
        // out: its unwrap is beyond the horizon.
        assert_eq!(rules_of(&fs), ["R008"], "{fs:?}");
        assert!(fs[0].message.contains("offer -> admit -> probe"));
    }

    #[test]
    fn r008_guarded_division_and_full_range_are_safe() {
        let fs = run(&[(
            "crates/gigascope/src/table.rs",
            "pub fn offer(x: u64, n: usize) -> u64 {\n\
                 let v = vec![1u64];\n\
                 let s = &v[..];\n\
                 let k = x % (n as u64).max(1);\n\
                 let f = x as f64 / 2.0;\n\
                 k + s.len() as u64 + f as u64\n\
             }\n",
        )]);
        assert!(fs.is_empty(), "{fs:?}");
    }
}
