//! A minimal, total Rust lexer.
//!
//! Just enough lexing to tell code from non-code: line, block and doc
//! comments, string-like literals (cooked, raw, byte, C), character
//! literals and lifetimes are recognized and set aside, so a rule never
//! fires on `Instant::now()` quoted in a doc-comment example or on
//! `"unwrap"` inside an error-message string. The lexer is *lossy* — it
//! keeps only the token classes the rule engine consumes — and *total*:
//! any byte it does not understand becomes a one-byte [`TokenKind::Punct`]
//! token instead of an error, so a half-written file still lints.
//!
//! Comments are not emitted as tokens, but they are scanned for inline
//! suppression pragmas of the form `// msa-lint: allow(D001, R004)`,
//! which the engine applies to findings on the pragma's own line and the
//! line directly below it.

/// Classes of tokens the rule engine consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers arrive without `r#`).
    Ident,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Integer literal, with suffix if any (`42`, `0xFF`, `7u64`).
    Int,
    /// Float literal, with suffix if any (`1.0`, `1e-3`, `2f64`).
    Float,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// Punctuation; multi-character where it matters (`==`, `::`, `->`).
    Punct,
}

/// One token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text of the token (raw identifiers keep their name only).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in characters) of the token's first byte.
    pub col: u32,
}

impl Token {
    /// True if the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True if the token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// An inline `msa-lint: allow(…)` pragma found in a comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Line the pragma's comment starts on.
    pub line: u32,
    /// Rule ids listed inside `allow(…)`.
    pub rules: Vec<String>,
}

/// Lexer output: the token stream plus suppression pragmas.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Inline suppression pragmas, in source order.
    pub suppressions: Vec<Suppression>,
}

/// Lexes one source file.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

/// Multi-character operators, longest first so maximal munch wins.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "::", "->", "=>", "&&", "||", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.cooked_string(TokenKind::Str),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line/column counters. Columns
    /// count characters: UTF-8 continuation bytes do not advance them.
    fn bump(&mut self) {
        if let Some(b) = self.peek(0) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if b & 0xC0 != 0x80 {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn slice(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = self.slice(start);
        self.scan_pragma(&text, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.bump_n(2);
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        let text = self.slice(start);
        self.scan_pragma(&text, line);
    }

    /// A `"…"` string with backslash escapes (used for plain, byte and
    /// C strings). Multi-line contents are legal.
    fn cooked_string(&mut self, kind: TokenKind) {
        let (start, line, col) = (self.pos, self.line, self.col);
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        let text = self.slice(start);
        self.push(kind, text, line, col);
    }

    /// A raw string body after its `r#…#"` opener: runs to `"` followed
    /// by `hashes` hash signs. No escapes.
    fn raw_string_body(&mut self, hashes: usize, start: usize, line: u32, col: u32) {
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    self.bump();
                    if (0..hashes).all(|i| self.peek(i) == Some(b'#')) {
                        self.bump_n(hashes);
                        break;
                    }
                }
                Some(_) => self.bump(),
            }
        }
        let text = self.slice(start);
        self.push(TokenKind::Str, text, line, col);
    }

    /// `'` starts either a lifetime (`'a`) or a char literal (`'a'`).
    fn char_or_lifetime(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        let next = self.peek(1);
        let lifetime = matches!(next, Some(b) if is_ident_start(b))
            && self.peek(2).is_some_and(|b| b != b'\'');
        if lifetime {
            self.bump(); // quote
            while matches!(self.peek(0), Some(b) if is_ident_continue(b)) {
                self.bump();
            }
            let text = self.slice(start);
            self.push(TokenKind::Lifetime, text, line, col);
            return;
        }
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    break;
                }
                b'\n' => break, // unterminated; don't swallow the file
                _ => self.bump(),
            }
        }
        let text = self.slice(start);
        self.push(TokenKind::Char, text, line, col);
    }

    fn number(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        while matches!(self.peek(0), Some(b) if is_ident_continue(b)) {
            self.bump();
        }
        // Fractional part: `1.5` (but not `1..2`, `1.method()`).
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b) if b.is_ascii_digit()) {
            self.bump();
            while matches!(self.peek(0), Some(b) if is_ident_continue(b)) {
                self.bump();
            }
        }
        // Signed exponent: `1e-3`, `2.5E+10`.
        if matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && matches!(
                self.src.get(self.pos.wrapping_sub(1)),
                Some(b'e') | Some(b'E')
            )
            && !self.slice(start).starts_with("0x")
            && matches!(self.peek(1), Some(b) if b.is_ascii_digit())
        {
            self.bump();
            while matches!(self.peek(0), Some(b) if is_ident_continue(b)) {
                self.bump();
            }
        }
        let text = self.slice(start);
        let no_prefix =
            !(text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b"));
        let is_float = text.contains('.')
            || text.ends_with("f32")
            || text.ends_with("f64")
            || (no_prefix && (text.contains('e') || text.contains('E')));
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line, col);
    }

    /// An identifier, or a literal carrying an identifier-like prefix:
    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `b'x'`, `r#ident`.
    fn ident_or_prefixed_literal(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        while matches!(self.peek(0), Some(b) if is_ident_continue(b)) {
            self.bump();
        }
        let text = self.slice(start);
        match (text.as_str(), self.peek(0)) {
            // Cooked byte / C strings: escapes apply.
            ("b" | "c", Some(b'"')) => self.cooked_string(TokenKind::Str),
            // Raw strings with zero hashes: no escapes.
            ("r" | "br" | "cr", Some(b'"')) => {
                self.bump();
                self.raw_string_body(0, start, line, col);
            }
            // Raw strings with hashes, or a raw identifier.
            ("r" | "br" | "cr", Some(b'#')) => {
                let mut hashes = 0;
                while self.peek(hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some(b'"') {
                    self.bump_n(hashes + 1);
                    self.raw_string_body(hashes, start, line, col);
                } else if text == "r"
                    && hashes == 1
                    && matches!(self.peek(1), Some(b) if is_ident_start(b))
                {
                    self.bump(); // the hash
                    let name_start = self.pos;
                    while matches!(self.peek(0), Some(b) if is_ident_continue(b)) {
                        self.bump();
                    }
                    let name = self.slice(name_start);
                    self.push(TokenKind::Ident, name, line, col);
                } else {
                    self.push(TokenKind::Ident, text, line, col);
                }
            }
            // Byte char literal.
            ("b", Some(b'\'')) => self.char_or_lifetime(),
            _ => self.push(TokenKind::Ident, text, line, col),
        }
    }

    fn punct(&mut self) {
        let (line, col) = (self.line, self.col);
        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                self.bump_n(p.len());
                self.push(TokenKind::Punct, (*p).to_owned(), line, col);
                return;
            }
        }
        let start = self.pos;
        self.bump();
        let text = self.slice(start);
        self.push(TokenKind::Punct, text, line, col);
    }

    /// Extracts `msa-lint: allow(D001, R004)` pragmas from comment text.
    fn scan_pragma(&mut self, comment: &str, line: u32) {
        let Some(at) = comment.find("msa-lint:") else {
            return;
        };
        let rest = comment[at + "msa-lint:".len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            return;
        };
        let Some(close) = body.find(')') else {
            return;
        };
        let rules: Vec<String> = body[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        if !rules.is_empty() {
            self.out.suppressions.push(Suppression { line, rules });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
// Instant::now() in a line comment
/// doc example: `map.unwrap()`
/* block Instant */ let x = "Instant::now() in a string";
let raw = r#"unwrap() in a raw string"#;
"##;
        let toks = kinds(src);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && (t == "Instant" || t == "unwrap")));
        // The string literals themselves survive as single tokens.
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".to_owned())));
        assert!(toks.contains(&(TokenKind::Char, "'x'".to_owned())));
    }

    #[test]
    fn floats_ints_and_operators() {
        let toks = kinds("a == 1.5; b != 2; c = 0xFF; d = 1e-3; e = 3f64; f = 2.0e+7;");
        assert!(toks.contains(&(TokenKind::Float, "1.5".to_owned())));
        assert!(toks.contains(&(TokenKind::Int, "2".to_owned())));
        assert!(toks.contains(&(TokenKind::Int, "0xFF".to_owned())));
        assert!(toks.contains(&(TokenKind::Float, "1e-3".to_owned())));
        assert!(toks.contains(&(TokenKind::Float, "3f64".to_owned())));
        assert!(toks.contains(&(TokenKind::Float, "2.0e+7".to_owned())));
        assert!(toks.contains(&(TokenKind::Punct, "==".to_owned())));
        assert!(toks.contains(&(TokenKind::Punct, "!=".to_owned())));
    }

    #[test]
    fn tuple_indexing_is_not_a_float() {
        let toks = kinds("x.0; y.1.max(2); 1..5");
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Float));
        assert!(toks.contains(&(TokenKind::Punct, "..".to_owned())));
    }

    #[test]
    fn raw_identifiers_lose_their_prefix() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "type".to_owned())));
    }

    #[test]
    fn byte_and_c_strings_are_single_tokens() {
        let toks = kinds(r##"let a = b"bytes"; let b = br#"raw"#; let c = c"cstr";"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 3);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let lexed = lex("let x = 1;\n  foo();\n");
        let foo = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("foo"))
            .expect("foo token");
        assert_eq!((foo.line, foo.col), (2, 3));
    }

    #[test]
    fn pragmas_are_collected_with_their_line() {
        let src = "let a = 1; // msa-lint: allow(D001)\n// msa-lint: allow(R001, R004)\nlet b = 2;\n// msa-lint: not a pragma\n";
        let lexed = lex(src);
        assert_eq!(lexed.suppressions.len(), 2);
        assert_eq!(lexed.suppressions[0].line, 1);
        assert_eq!(lexed.suppressions[0].rules, vec!["D001"]);
        assert_eq!(lexed.suppressions[1].line, 2);
        assert_eq!(lexed.suppressions[1].rules, vec!["R001", "R004"]);
    }

    #[test]
    fn unterminated_constructs_do_not_hang() {
        for src in ["\"never closed", "/* never closed", "'\n", "r#\"open"] {
            let _ = lex(src); // must terminate
        }
    }
}
