//! File classification and test-code span detection.
//!
//! Rules are scoped two ways: by *path* (a file under `tests/` or
//! `benches/` is test/harness code wholesale; `crates/bench` is exempt
//! from wall-clock rules) and by *span* (a `#[cfg(test)]` module or a
//! `#[test]` function inside a library file). Span detection is purely
//! token-based: find a test attribute, skip any further attributes, then
//! brace-match the item body that follows. Strings and comments cannot
//! confuse the brace matching because the lexer already removed them.

use crate::lexer::{Lexed, Token};

/// Everything a rule needs to know about one source file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    /// Raw source lines (1-based access via [`FileCtx::line_text`]).
    pub lines: Vec<&'a str>,
    /// Token stream and suppression pragmas.
    pub lexed: &'a Lexed,
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(u32, u32)>,
}

impl<'a> FileCtx<'a> {
    /// Builds the context for one lexed file.
    pub fn new(rel_path: &'a str, source: &'a str, lexed: &'a Lexed) -> FileCtx<'a> {
        FileCtx {
            rel_path,
            lines: source.lines().collect(),
            lexed,
            test_spans: test_spans(&lexed.tokens),
        }
    }

    /// The `name` of `crates/name/…`, if the file lives in a crate.
    pub fn crate_dir(&self) -> Option<&str> {
        self.rel_path.strip_prefix("crates/")?.split('/').next()
    }

    /// True for files that are test or bench-harness code by location:
    /// integration tests, fixtures and Criterion-style bench targets.
    pub fn is_test_path(&self) -> bool {
        let p = self.rel_path;
        p.starts_with("tests/") || p.contains("/tests/") || p.contains("/benches/")
    }

    /// True if `line` falls inside a `#[cfg(test)]`/`#[test]` item.
    pub fn in_test_span(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// The file's basename (`snapshot.rs`).
    pub fn file_name(&self) -> &str {
        self.rel_path.rsplit('/').next().unwrap_or(self.rel_path)
    }

    /// True for crate roots: `src/lib.rs` or `src/main.rs` of a package.
    pub fn is_crate_root(&self) -> bool {
        self.rel_path.ends_with("src/lib.rs")
            || self.rel_path.ends_with("src/main.rs")
            || self.rel_path == "src/lib.rs"
            || self.rel_path == "src/main.rs"
    }

    /// The text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines.get(line as usize - 1).copied().unwrap_or("")
    }
}

/// True if the attribute token slice (the `…` of `#[…]`) marks test-only
/// code: `test`, or `cfg(test)` in any positive combination. `not(test)`
/// compiles everywhere *but* tests, so it does not count.
fn is_test_attr(attr: &[Token]) -> bool {
    let has = |name: &str| attr.iter().any(|t| t.is_ident(name));
    has("test") && !has("not")
}

/// Inclusive line spans of items annotated with a test attribute.
/// Public because the workspace dataflow layer ([`crate::symbols`])
/// classifies whole functions as test code with the same spans.
pub fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct("#") {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let Some((attr, mut j)) = attr_group(tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr(&attr) {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while j < tokens.len() && tokens[j].is_punct("#") {
            match attr_group(tokens, j) {
                Some((_, next)) => j = next,
                None => break,
            }
        }
        // Find the item body: the first `{` wins; a `;` first means the
        // item has no body (e.g. an annotated `use`), so the span is
        // just the header lines.
        let mut end_line = start_line;
        while j < tokens.len() {
            if tokens[j].is_punct(";") {
                end_line = tokens[j].line;
                j += 1;
                break;
            }
            if tokens[j].is_punct("{") {
                let close = match_brace(tokens, j);
                end_line = tokens[close.min(tokens.len() - 1)].line;
                j = close + 1;
                break;
            }
            end_line = tokens[j].line;
            j += 1;
        }
        spans.push((start_line, end_line));
        i = j;
    }
    spans
}

/// Parses `#[…]` / `#![…]` starting at the `#` token `i`; returns the
/// inner tokens and the index just past the closing `]`.
pub fn attr_group(tokens: &[Token], i: usize) -> Option<(Vec<Token>, usize)> {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct("!")) {
        j += 1;
    }
    if !tokens.get(j)?.is_punct("[") {
        return None;
    }
    let mut depth = 0usize;
    let start = j + 1;
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some((tokens[start..j].to_vec(), j + 1));
            }
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (last token if unmatched).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn spans(src: &str) -> Vec<(u32, u32)> {
        test_spans(&lex(src).tokens)
    }

    #[test]
    fn cfg_test_module_span_covers_the_whole_module() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn also_live() {}\n";
        assert_eq!(spans(src), vec![(2, 5)]);
    }

    #[test]
    fn test_fn_with_extra_attrs_is_covered() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    body();\n}\n";
        assert_eq!(spans(src), vec![(1, 5)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        assert!(spans("#[cfg(not(test))]\nfn prod() {}\n").is_empty());
    }

    #[test]
    fn ctx_classifies_paths() {
        let lexed = lex("");
        for (path, test, root, cr) in [
            ("crates/stream/src/stats.rs", false, false, Some("stream")),
            ("crates/lint/tests/rules.rs", true, false, Some("lint")),
            ("crates/bench/benches/guard.rs", true, false, Some("bench")),
            ("tests/chaos.rs", true, false, None),
            ("src/lib.rs", false, true, None),
            ("crates/core/src/lib.rs", false, true, Some("core")),
            ("examples/quickstart.rs", false, false, None),
        ] {
            let ctx = FileCtx::new(path, "", &lexed);
            assert_eq!(ctx.is_test_path(), test, "{path}");
            assert_eq!(ctx.is_crate_root(), root, "{path}");
            assert_eq!(ctx.crate_dir(), cr, "{path}");
        }
    }
}
