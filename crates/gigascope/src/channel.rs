//! The LFTA → HFTA eviction channel.
//!
//! In Gigascope the LFTA hands evicted partial aggregates to the HFTA
//! over a bounded transfer ring; under pressure that hand-off can drop
//! entries, and retransmission can deliver an entry twice. The executor
//! used to model the hand-off as an implicit, lossless function call.
//! [`EvictionChannel`] makes the hop explicit: every eviction is
//! *offered* to the channel, which decides — deterministically, from a
//! seeded PRNG — whether it is delivered once, dropped, or duplicated,
//! and accounts each outcome. A per-epoch capacity bound models the
//! finite drain budget between epochs; offers beyond it are dropped as
//! overflow.
//!
//! The channel never silently loses information: callers learn each
//! offer's fate from the returned [`Delivery`], and cumulative
//! [`ChannelStats`] let a run reconcile exactly how many entries (and,
//! via the executor's per-query record sums, how many *records*) were
//! lost or double-counted.

use msa_stream::SplitMix64;

/// Fault rates injected into the channel (both in `[0, 1]`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChannelFaults {
    /// Probability an offered eviction is dropped.
    pub loss_rate: f64,
    /// Probability a delivered eviction is delivered twice.
    pub duplicate_rate: f64,
}

impl ChannelFaults {
    /// No faults.
    pub fn none() -> ChannelFaults {
        ChannelFaults::default()
    }

    /// True if both rates are zero.
    pub fn is_none(&self) -> bool {
        self.loss_rate <= 0.0 && self.duplicate_rate <= 0.0
    }
}

/// Fate of one offered eviction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Lost: the HFTA never sees it.
    Dropped,
    /// Delivered exactly once.
    Delivered,
    /// Delivered twice (retransmission fault).
    Duplicated,
}

impl Delivery {
    /// Number of copies the HFTA receives.
    pub fn copies(self) -> u32 {
        match self {
            Delivery::Dropped => 0,
            Delivery::Delivered => 1,
            Delivery::Duplicated => 2,
        }
    }
}

/// Cumulative channel accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Copies actually handed to the HFTA (a duplicated offer counts 2).
    pub delivered: u64,
    /// Offers dropped (fault losses plus capacity overflow).
    pub dropped: u64,
    /// Offers delivered twice.
    pub duplicated: u64,
    /// The subset of `dropped` caused by the per-epoch capacity bound.
    pub overflowed: u64,
    /// Record mass stranded by shutdown rather than a channel fault:
    /// feed records still in flight when a crashed shard's feed closed,
    /// replay-buffer overruns, and per-query mass left in an abandoned
    /// shard's tables or open epoch. Kept out of `dropped` (those are
    /// eviction-level fault counts); the per-query record corrections
    /// live in the run report's drop/shed ledgers.
    pub shutdown_lost: u64,
}

impl ChannelStats {
    /// Folds another channel's accounting into this one (a sharded run
    /// reporting the merged totals of its per-shard channels). Pure
    /// sums, so the fold commutes.
    ///
    /// `other` is destructured exhaustively — no `..` — so adding a
    /// counter field without deciding how it merges is a compile error,
    /// not a silently-unsound bound.
    pub fn merge(&mut self, other: &ChannelStats) {
        let ChannelStats {
            delivered,
            dropped,
            duplicated,
            overflowed,
            shutdown_lost,
        } = *other;
        self.delivered += delivered;
        self.dropped += dropped;
        self.duplicated += duplicated;
        self.overflowed += overflowed;
        self.shutdown_lost += shutdown_lost;
    }
}

/// The complete serializable state of an [`EvictionChannel`].
///
/// Captured at checkpoint time and restored on recovery: the PRNG
/// cursor makes every post-restore fault decision identical to the one
/// the original channel would have taken, which is what lets a replayed
/// run reproduce a faulty run bit-for-bit.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChannelState {
    /// Injected fault rates.
    pub faults: ChannelFaults,
    /// Per-epoch capacity bound (`None` = unbounded).
    pub capacity: Option<u64>,
    /// Offers accepted so far in the current epoch window.
    pub epoch_sent: u64,
    /// PRNG cursor (see [`SplitMix64::state`]).
    pub rng_state: u64,
    /// Cumulative accounting at capture time.
    pub stats: ChannelStats,
}

/// The bounded, fault-injectable LFTA → HFTA hand-off.
#[derive(Clone, Debug)]
pub struct EvictionChannel {
    faults: ChannelFaults,
    /// Max offers accepted per epoch (`None` = unbounded).
    capacity: Option<u64>,
    epoch_sent: u64,
    rng: SplitMix64,
    stats: ChannelStats,
}

impl EvictionChannel {
    /// An unbounded, fault-free channel (the classic implicit hand-off).
    pub fn lossless() -> EvictionChannel {
        EvictionChannel::new(ChannelFaults::none(), 0)
    }

    /// A channel injecting `faults`, drawing decisions from a PRNG
    /// seeded with `seed`.
    pub fn new(faults: ChannelFaults, seed: u64) -> EvictionChannel {
        EvictionChannel {
            faults,
            capacity: None,
            epoch_sent: 0,
            rng: SplitMix64::new(seed),
            stats: ChannelStats::default(),
        }
    }

    /// Bounds the channel to `capacity` accepted offers per epoch;
    /// offers beyond it are dropped as overflow.
    pub fn with_capacity(mut self, capacity: u64) -> EvictionChannel {
        self.capacity = Some(capacity);
        self
    }

    /// Offers one eviction; returns its fate.
    pub fn offer(&mut self) -> Delivery {
        if let Some(cap) = self.capacity {
            if self.epoch_sent >= cap {
                self.stats.dropped += 1;
                self.stats.overflowed += 1;
                return Delivery::Dropped;
            }
        }
        if self.faults.loss_rate > 0.0 && self.rng.gen_bool(self.faults.loss_rate) {
            self.stats.dropped += 1;
            return Delivery::Dropped;
        }
        self.epoch_sent += 1;
        if self.faults.duplicate_rate > 0.0 && self.rng.gen_bool(self.faults.duplicate_rate) {
            self.stats.delivered += 2;
            self.stats.duplicated += 1;
            return Delivery::Duplicated;
        }
        self.stats.delivered += 1;
        Delivery::Delivered
    }

    /// Closes the epoch window: resets the per-epoch capacity budget.
    pub fn end_epoch(&mut self) {
        self.epoch_sent = 0;
    }

    /// Accounts `n` units of record mass lost to shutdown (a feed
    /// closing on a dead shard, a replay-buffer overrun, or an
    /// abandoned shard's stranded tables) — the drop ledger's answer to
    /// "where did the in-flight records go".
    pub fn account_shutdown_loss(&mut self, n: u64) {
        self.stats.shutdown_lost += n;
    }

    /// Cumulative accounting.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The injected fault rates.
    pub fn faults(&self) -> ChannelFaults {
        self.faults
    }

    /// Exports the channel's complete state for a checkpoint.
    pub fn export_state(&self) -> ChannelState {
        ChannelState {
            faults: self.faults,
            capacity: self.capacity,
            epoch_sent: self.epoch_sent,
            rng_state: self.rng.state(),
            stats: self.stats,
        }
    }

    /// Rebuilds a channel from an exported state. The restored channel's
    /// future fault decisions are identical to those the exporting
    /// channel would have made.
    pub fn from_state(state: &ChannelState) -> EvictionChannel {
        EvictionChannel {
            faults: state.faults,
            capacity: state.capacity,
            epoch_sent: state.epoch_sent,
            rng: SplitMix64::from_state(state.rng_state),
            stats: state.stats,
        }
    }
}

impl Default for EvictionChannel {
    fn default() -> EvictionChannel {
        EvictionChannel::lossless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_channel_delivers_everything_once() {
        let mut ch = EvictionChannel::lossless();
        for _ in 0..1000 {
            assert_eq!(ch.offer(), Delivery::Delivered);
        }
        assert_eq!(ch.stats().delivered, 1000);
        assert_eq!(ch.stats().dropped, 0);
        assert_eq!(ch.stats().duplicated, 0);
    }

    #[test]
    fn fault_rates_are_respected_and_deterministic() {
        let faults = ChannelFaults {
            loss_rate: 0.1,
            duplicate_rate: 0.05,
        };
        let run = |seed| {
            let mut ch = EvictionChannel::new(faults, seed);
            let fates: Vec<Delivery> = (0..20_000).map(|_| ch.offer()).collect();
            (fates, *ch.stats())
        };
        let (fates_a, stats_a) = run(7);
        let (fates_b, _) = run(7);
        assert_eq!(fates_a, fates_b, "same seed, same fates");
        let dropped = stats_a.dropped as f64 / 20_000.0;
        assert!((dropped - 0.1).abs() < 0.01, "loss rate {dropped}");
        // Duplicates happen among non-dropped offers.
        let dup = stats_a.duplicated as f64 / (20_000.0 - stats_a.dropped as f64);
        assert!((dup - 0.05).abs() < 0.01, "dup rate {dup}");
        // Conservation: every offer is dropped or delivered ≥ once.
        assert_eq!(
            stats_a.delivered,
            20_000 - stats_a.dropped + stats_a.duplicated
        );
        let (fates_c, _) = run(8);
        assert_ne!(fates_a, fates_c, "different seed, different fates");
    }

    #[test]
    fn state_roundtrip_resumes_fault_stream_exactly() {
        let faults = ChannelFaults {
            loss_rate: 0.2,
            duplicate_rate: 0.1,
        };
        let mut ch = EvictionChannel::new(faults, 3).with_capacity(400);
        for _ in 0..500 {
            ch.offer();
        }
        let mut resumed = EvictionChannel::from_state(&ch.export_state());
        assert_eq!(resumed.export_state(), ch.export_state());
        // The restored channel makes the same decisions the original
        // would have made from here on.
        let a: Vec<Delivery> = (0..1000).map(|_| ch.offer()).collect();
        let b: Vec<Delivery> = (0..1000).map(|_| resumed.offer()).collect();
        assert_eq!(a, b);
        assert_eq!(ch.stats(), resumed.stats());
    }

    #[test]
    fn stats_merge_sums_and_commutes() {
        let a = ChannelStats {
            delivered: 10,
            dropped: 3,
            duplicated: 2,
            overflowed: 1,
            shutdown_lost: 4,
        };
        let b = ChannelStats {
            delivered: 7,
            dropped: 0,
            duplicated: 5,
            overflowed: 0,
            shutdown_lost: 2,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.delivered, 17);
        assert_eq!(ab.dropped, 3);
        assert_eq!(ab.duplicated, 7);
        assert_eq!(ab.overflowed, 1);
        assert_eq!(ab.shutdown_lost, 6);
    }

    #[test]
    fn shutdown_loss_rides_its_own_ledger() {
        let mut ch = EvictionChannel::lossless();
        ch.offer();
        ch.account_shutdown_loss(9);
        assert_eq!(ch.stats().shutdown_lost, 9);
        assert_eq!(ch.stats().dropped, 0, "not conflated with fault drops");
        // The ledger survives a checkpoint round-trip.
        let resumed = EvictionChannel::from_state(&ch.export_state());
        assert_eq!(resumed.stats().shutdown_lost, 9);
    }

    #[test]
    fn capacity_bound_drops_overflow_and_resets_per_epoch() {
        let mut ch = EvictionChannel::lossless().with_capacity(3);
        for _ in 0..5 {
            ch.offer();
        }
        assert_eq!(ch.stats().delivered, 3);
        assert_eq!(ch.stats().overflowed, 2);
        ch.end_epoch();
        assert_eq!(ch.offer(), Delivery::Delivered, "budget refilled");
    }
}
