//! A Gigascope-style two-level stream-aggregation substrate.
//!
//! The paper evaluates its phantom-selection and space-allocation
//! algorithms on Gigascope's LFTA/HFTA split (§2): the **LFTA** runs on a
//! NIC with a few MB of memory and maintains one single-slot hash table
//! per instantiated relation; the **HFTA** runs on the host and combines
//! the partial aggregates the LFTA evicts. This crate implements that
//! substrate faithfully enough to *measure* the costs the paper's model
//! predicts:
//!
//! * [`table::LftaTable`] — the single-entry-per-bucket hash table of
//!   Fig. 1, with probe/evict semantics and per-table statistics;
//! * [`plan::PhysicalPlan`] — a configuration tree (relations, feeding
//!   edges, bucket allocation) in executable form;
//! * [`executor::Executor`] — streams records through the plan,
//!   cascading evictions phantom → child → HFTA, flushing at epoch
//!   boundaries, and accounting every probe (`c1`) and HFTA eviction
//!   (`c2`);
//! * [`hfta::Hfta`] — the host-side combiner producing exact per-epoch
//!   aggregation results (used to verify the LFTA path end-to-end).
//!
//! Beyond the paper's substrate, four modules harden the runtime
//! against overload, transport faults and crashes:
//!
//! * [`channel::EvictionChannel`] — the LFTA → HFTA hop made explicit:
//!   bounded, fault-injectable, exactly accounted;
//! * [`guard::OverloadGuard`] — a degradation ladder (shed → phantoms
//!   off → allocation repair) driven by the measured per-epoch total
//!   cost against a peak budget `E_p`, with hysteretic recovery;
//! * [`faults::FaultPlan`] — seeded, declarative fault injection
//!   (eviction loss/duplication, record bursts, epoch-clock skew,
//!   process crashes) for deterministic chaos tests;
//! * [`snapshot`] — epoch-aligned checkpoints plus a write-ahead
//!   eviction log, giving crashed executors exactly-once recovery with
//!   bit-identical results (see [`executor::Executor::recover`]);
//! * [`shard`] — hash-partitioned multi-core execution: `N` shard
//!   executors on OS threads behind bounded feeds, merged into one
//!   deterministic result independent of thread scheduling (see
//!   [`shard::ShardedExecutor`]);
//! * [`supervise`] — self-healing shard supervision: panic isolation
//!   behind a single `catch_unwind` boundary, record-counted
//!   stuck-shard detection, live restart from epoch-aligned
//!   checkpoints with bounded-buffer replay, poison-record quarantine
//!   and explicit degradation accounting;
//! * [`bounds`] — the degraded-answer subsystem: converts the loss
//!   ledgers above into per-query guaranteed count intervals
//!   `[lo, hi]` (and per-group bounds), mergeable across shards and
//!   queryable live at every epoch boundary, with the failure mode
//!   chosen by [`guard::DegradationPolicy`];
//! * [`swap`] — the epoch-boundary hot-swap transaction: quiesce,
//!   snapshot, rehash into a re-planned feeding graph, validate the
//!   handoff (record-count, bias-ledger and degradation-promise
//!   conservation), then commit — or roll back with the old deployment
//!   untouched (see [`shard::ShardedExecutor::hot_swap`]);
//! * [`store`] — the crash-safe durable store: atomic generational
//!   checkpoints behind A/B checksummed manifests, a segmented WAL
//!   with torn-tail truncation repair, an offline scrub pass, and
//!   graceful fallback to older generations with the re-replayed or
//!   lost records accounted through [`bounds`] (see
//!   [`store::StoreHandle`]).

#![deny(unsafe_code)]

pub mod bounds;
pub mod channel;
pub mod executor;
pub mod faults;
pub mod guard;
pub mod hfta;
pub mod plan;
pub mod shard;
pub mod snapshot;
pub mod store;
pub mod supervise;
pub mod swap;
pub mod table;

pub use bounds::{BoundsReport, LossBreakdown, LossClass, QueryBounds};
pub use channel::{ChannelFaults, ChannelStats, Delivery, EvictionChannel};
pub use executor::{Executor, ExecutorConfig, Ingest, RunReport, ValueSource};
pub use faults::{Burst, CrashPlan, DriftKind, DriftPlan, FaultPlan, ShardFault};
pub use guard::{
    DegradationPolicy, GuardLevel, GuardPolicy, GuardTransition, OverloadGuard, ShedDecision,
};
pub use hfta::Hfta;
pub use plan::{PhysicalPlan, PlanNode};
pub use shard::{shard_of, shard_seed, IngestMode, ShardError, ShardedExecutor};
pub use snapshot::{
    EvictionLog, LogEntry, RecoveryError, ShardedSnapshot, Snapshot, SnapshotError,
};
pub use store::{
    CheckpointStore, RecoveredArtifacts, ScrubReport, StoreHandle, StoreRecovery, StoreStats,
};
pub use supervise::{PoisonRecord, ShardHealth, ShardHeartbeat, ShardState, SupervisorPolicy};
pub use swap::{
    HandoffViolation, RollbackReason, SwapCrashPoint, SwapError, SwapFault, SwapOutcome, SwapReport,
};
pub use table::{LftaTable, Probe};

/// Cost parameters of the two-level architecture.
///
/// `c1` is the cost of one hash-table probe/update in the LFTA; `c2` the
/// cost of transferring one entry to the HFTA. The paper measures
/// `c2/c1 = 50` in operational systems and uses that ratio throughout
/// its evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// LFTA probe/update cost.
    pub c1: f64,
    /// LFTA → HFTA eviction cost.
    pub c2: f64,
}

impl CostParams {
    /// The paper's setting: `c1 = 1`, `c2 = 50`.
    pub fn paper() -> CostParams {
        CostParams { c1: 1.0, c2: 50.0 }
    }
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cost_ratio() {
        let p = CostParams::paper();
        assert_eq!(p.c2 / p.c1, 50.0);
        assert_eq!(CostParams::default(), p);
    }
}
