//! The generational checkpoint store: crash-safe durability for the
//! recovery artifacts.
//!
//! Everything `snapshot` and `executor` treat as "durable" — the
//! epoch-boundary [`Snapshot`] and the write-ahead [`EvictionLog`] —
//! lands here as real bytes behind a
//! [`StorageBackend`](msa_stream::store::StorageBackend). The layout:
//!
//! ```text
//! manifest.a            A/B manifest slots ("MSMF" + fnv64 trailer):
//! manifest.b            the *commit point*; highest valid seq wins
//! gen-3/snapshot.bin    one framed snapshot per generation
//! gen-3/wal-0.bin       segmented WAL: per-entry [len u32 | fnv u64 |
//! gen-3/wal-1.bin       payload] frames, rolled every 256 entries
//! gen-4/...
//! ```
//!
//! A **commit** writes the next generation's snapshot atomically, then
//! flips the *older* manifest slot to point at it — the last good
//! generation is never overwritten, so a crash at any byte leaves a
//! readable store. WAL entries append into the *committed* generation's
//! segments (each entry framed and checksummed) and fsync per entry;
//! a crash mid-append leaves a *torn tail* that recovery detects by
//! checksum, truncates away, and re-derives from stream replay.
//!
//! **Recovery** walks candidates newest-first: manifest-committed
//! generations by descending manifest seq, then any orphaned on-disk
//! generation (covers a corrupt manifest pair whose snapshot survived).
//! An unreadable candidate is quarantined and the next older one is
//! tried — graceful degradation, with the re-replayed/lost records
//! accounted through `bounds.rs` as the explicit `stale-fallback` loss
//! class, never silent staleness.
//!
//! Transient EIO is retried with an attempt-counted budget (never
//! clocked — the repo's determinism spine); ENOSPC and crashes are not.
//! The **scrub** pass re-verifies every checksum offline and
//! quarantines corrupt generations without touching good ones.

use crate::executor::{Executor, ExecutorConfig};
use crate::snapshot::{decode_log_entry, encode_log_entry, fnv64, EvictionLog, LogEntry, Snapshot};
use msa_stream::store::{
    DiskBackend, SimBackend, StorageBackend, StorageFaultPlan, StoreError, StoreErrorKind,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

const MANIFEST_A: &str = "manifest.a";
const MANIFEST_B: &str = "manifest.b";
const MANIFEST_MAGIC: [u8; 4] = *b"MSMF";
const MANIFEST_VERSION: u32 = 1;
/// payload = magic + version + 4 × u64; trailer = fnv64(payload).
const MANIFEST_LEN: usize = 4 + 4 + 8 * 4 + 8;

/// WAL frame header: payload length (u32) + payload fnv64.
const WAL_FRAME_HEADER: usize = 4 + 8;
/// Entries per WAL segment before rolling to the next file.
const WAL_SEGMENT_ENTRIES: u64 = 256;
/// Upper bound on a sane WAL payload — a larger length field is
/// corruption, not data (prevents pathological allocations).
const WAL_MAX_PAYLOAD: u32 = 1 << 20;

/// Transient-EIO retries per store operation before giving up.
const DEFAULT_RETRY_BUDGET: u32 = 8;

/// The checksummed commit pointer. Two copies live in the A/B slots;
/// the one with the highest valid `manifest_seq` names the current
/// generation, and a commit always overwrites the *other* slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Manifest {
    /// Monotone commit counter (1-based); also selects the slot.
    manifest_seq: u64,
    /// The committed generation.
    generation: u64,
    /// Length of the generation's snapshot file.
    snapshot_len: u64,
    /// fnv64 of the snapshot file's bytes (frame included) — catches
    /// truncation and bit rot before the snapshot codec even runs.
    snapshot_fnv: u64,
}

impl Manifest {
    /// The slot a commit with this sequence number writes: odd → A,
    /// even → B, so consecutive commits alternate and the previous
    /// manifest survives any torn write.
    fn slot(seq: u64) -> &'static str {
        if seq % 2 == 1 {
            MANIFEST_A
        } else {
            MANIFEST_B
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(MANIFEST_LEN);
        payload.extend_from_slice(&MANIFEST_MAGIC);
        payload.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        payload.extend_from_slice(&self.manifest_seq.to_le_bytes());
        payload.extend_from_slice(&self.generation.to_le_bytes());
        payload.extend_from_slice(&self.snapshot_len.to_le_bytes());
        payload.extend_from_slice(&self.snapshot_fnv.to_le_bytes());
        let sum = fnv64(&payload);
        payload.extend_from_slice(&sum.to_le_bytes());
        payload
    }

    fn decode(bytes: &[u8]) -> Option<Manifest> {
        if bytes.len() != MANIFEST_LEN {
            return None;
        }
        let (payload, trailer) = bytes.split_at(MANIFEST_LEN - 8);
        if trailer != fnv64(payload).to_le_bytes() {
            return None;
        }
        if payload[..4] != MANIFEST_MAGIC {
            return None;
        }
        let u64_at = |i: usize| -> Option<u64> {
            Some(u64::from_le_bytes(payload[i..i + 8].try_into().ok()?))
        };
        let version = u32::from_le_bytes(payload[4..8].try_into().ok()?);
        if version != MANIFEST_VERSION {
            return None;
        }
        Some(Manifest {
            manifest_seq: u64_at(8)?,
            generation: u64_at(16)?,
            snapshot_len: u64_at(24)?,
            snapshot_fnv: u64_at(32)?,
        })
    }
}

/// Cumulative store observability counters (all attempt/record counts,
/// never clocks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Generations committed (manifest flips).
    pub commits: u64,
    /// WAL entries appended durably.
    pub wal_appends: u64,
    /// WAL segment files rolled.
    pub wal_segments_rolled: u64,
    /// Transient-EIO retries that were attempted.
    pub io_retries: u64,
    /// Operations abandoned after the retry budget ran dry.
    pub io_gave_up: u64,
    /// Recovery fallbacks: candidates skipped because they were
    /// unreadable or failed executor validation.
    pub fallbacks: u64,
    /// Generations quarantined (by recovery or scrub).
    pub generations_quarantined: u64,
    /// Old generations garbage-collected after commits.
    pub generations_removed: u64,
}

/// What [`CheckpointStore::recover_artifacts`] hands back: the newest
/// readable generation's artifacts, ready for
/// [`Executor::recover`](crate::executor::Executor::recover).
#[derive(Clone, Debug)]
pub struct RecoveredArtifacts {
    /// The decoded, checksum-verified snapshot.
    pub snapshot: Snapshot,
    /// The generation's WAL after torn-tail repair.
    pub log: EvictionLog,
    /// Which generation was recovered.
    pub generation: u64,
    /// Newer generations skipped (and quarantined) to reach this one.
    pub fallbacks: u64,
    /// WAL entries dropped by torn-tail truncation repair.
    pub torn_entries_dropped: u64,
}

/// Result of the offline integrity scrub.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Validity of the A and B manifest slots.
    pub manifests_valid: [bool; 2],
    /// Generations examined.
    pub generations_checked: u64,
    /// Generations whose snapshot failed verification (now quarantined).
    pub generations_quarantined: Vec<u64>,
    /// WAL entries whose checksums verified.
    pub wal_entries_checked: u64,
    /// Torn (checksum-failing) WAL tails found.
    pub torn_tails: u64,
}

/// Why a recovery candidate could not be loaded.
enum LoadFail {
    /// The artifact is unreadable or fails verification: quarantine the
    /// generation and fall back.
    Corrupt,
    /// The backend itself is dead — no candidate can do better, so the
    /// error propagates instead of quarantining the world.
    Dead(StoreError),
}

/// The generational checkpoint store over one [`StorageBackend`].
///
/// Commits never overwrite the last good generation; see the module
/// docs for the on-disk layout and crash discipline. Most callers hold
/// a [`StoreHandle`] rather than the store itself.
#[derive(Debug)]
pub struct CheckpointStore {
    backend: Box<dyn StorageBackend>,
    retry_budget: u32,
    /// Highest valid manifest sequence seen (0 = no commit yet).
    manifest_seq: u64,
    /// The active generation WAL appends target (0 = none committed).
    generation: u64,
    /// The generation the next commit creates: strictly above every
    /// generation ever seen, so fallback never re-enters a quarantined
    /// directory.
    next_generation: u64,
    /// Current WAL segment index within the active generation.
    wal_segment: u64,
    /// Entries appended to the current segment so far.
    wal_entries: u64,
    /// Generations proven corrupt this process lifetime. In-memory by
    /// design: quarantine is re-derived after a restart, exactly like a
    /// real fsck.
    quarantined: Vec<u64>,
    stats: StoreStats,
}

impl CheckpointStore {
    /// Opens a store over `backend`, scanning manifests and generation
    /// directories to find the commit cursor.
    pub fn open(backend: Box<dyn StorageBackend>) -> Result<CheckpointStore, StoreError> {
        let mut store = CheckpointStore {
            backend,
            retry_budget: DEFAULT_RETRY_BUDGET,
            manifest_seq: 0,
            generation: 0,
            next_generation: 1,
            wal_segment: 0,
            wal_entries: 0,
            quarantined: Vec::new(),
            stats: StoreStats::default(),
        };
        store.rescan()?;
        Ok(store)
    }

    /// Replaces the transient-EIO retry budget (attempt-counted).
    pub fn with_retry_budget(mut self, budget: u32) -> CheckpointStore {
        self.retry_budget = budget;
        self
    }

    /// Re-derives the commit cursor from the backend: best valid
    /// manifest plus a generation-directory scan (shared by `open` and
    /// post-power-cut reopen).
    fn rescan(&mut self) -> Result<(), StoreError> {
        self.manifest_seq = 0;
        self.generation = 0;
        self.wal_segment = 0;
        self.wal_entries = 0;
        self.quarantined.clear();
        if let Some(m) = self.best_manifest() {
            self.manifest_seq = m.manifest_seq;
            self.generation = m.generation;
        }
        let max_gen = self
            .scan_generations()?
            .into_iter()
            .max()
            .unwrap_or(0)
            .max(self.generation);
        self.next_generation = max_gen + 1;
        if self.generation > 0 {
            self.start_fresh_segment(self.generation)?;
        }
        Ok(())
    }

    /// All valid manifests, best (highest seq) first.
    fn read_manifests(&mut self) -> Vec<Manifest> {
        let mut out = Vec::with_capacity(2);
        for slot in [MANIFEST_A, MANIFEST_B] {
            if let Ok(bytes) = self.backend.read(slot) {
                if let Some(m) = Manifest::decode(&bytes) {
                    out.push(m);
                }
            }
        }
        out.sort_by_key(|m| std::cmp::Reverse(m.manifest_seq));
        out
    }

    fn best_manifest(&mut self) -> Option<Manifest> {
        self.read_manifests().into_iter().next()
    }

    /// Generation numbers present on the backend.
    fn scan_generations(&mut self) -> Result<Vec<u64>, StoreError> {
        let names = self.backend.list("")?;
        Ok(names.iter().filter_map(|n| parse_gen(n)).collect())
    }

    /// Points the WAL cursor at a fresh segment past everything already
    /// in `gen` (append-only: reopened stores never extend an old
    /// segment whose entry count they cannot know).
    fn start_fresh_segment(&mut self, gen: u64) -> Result<(), StoreError> {
        let dir = format!("gen-{gen}");
        let names = self.backend.list(&dir)?;
        let max_seg = names.iter().filter_map(|n| parse_wal(n)).max();
        self.wal_segment = max_seg.map_or(0, |k| k + 1);
        self.wal_entries = 0;
        Ok(())
    }

    /// Runs `op` with the attempt-counted transient-EIO retry loop.
    fn retrying<T>(
        &mut self,
        mut op: impl FnMut(&mut dyn StorageBackend) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut attempts = 0u32;
        loop {
            match op(self.backend.as_mut()) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempts < self.retry_budget => {
                    attempts += 1;
                    self.stats.io_retries += 1;
                }
                Err(e) => {
                    if e.is_transient() {
                        self.stats.io_gave_up += 1;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Commits `snapshot` as a new generation: atomic snapshot write,
    /// then the manifest flip (the commit point), then GC of everything
    /// older than the previous generation. On success WAL appends
    /// target the new generation.
    pub fn commit(&mut self, snapshot: &Snapshot) -> Result<(), StoreError> {
        let bytes = snapshot.encode();
        let gen = self.next_generation;
        let snap_path = format!("gen-{gen}/snapshot.bin");
        self.retrying(|b| b.write_atomic(&snap_path, &bytes))?;
        let manifest = Manifest {
            manifest_seq: self.manifest_seq + 1,
            generation: gen,
            snapshot_len: bytes.len() as u64,
            snapshot_fnv: fnv64(&bytes),
        };
        let slot = Manifest::slot(manifest.manifest_seq);
        let encoded = manifest.encode();
        self.retrying(|b| b.write_atomic(slot, &encoded))?;
        let prev = self.generation;
        self.manifest_seq = manifest.manifest_seq;
        self.generation = gen;
        self.next_generation = gen + 1;
        self.wal_segment = 0;
        self.wal_entries = 0;
        self.stats.commits += 1;
        self.gc(prev, gen);
        Ok(())
    }

    /// Best-effort removal of every generation other than the two the
    /// A/B manifests can still name. Failures are ignored — GC retries
    /// implicitly at the next commit.
    fn gc(&mut self, keep_a: u64, keep_b: u64) {
        let Ok(gens) = self.scan_generations() else {
            return;
        };
        for g in gens {
            if g == keep_a || g == keep_b {
                continue;
            }
            let dir = format!("gen-{g}");
            let Ok(files) = self.backend.list(&dir) else {
                continue;
            };
            for f in files {
                let path = format!("{dir}/{f}");
                let _ = self.backend.remove(&path);
            }
            self.quarantined.retain(|&q| q != g);
            self.stats.generations_removed += 1;
        }
    }

    /// Appends one WAL entry durably (framed, checksummed, fsynced)
    /// into the active generation. A no-op before the first commit —
    /// every durable WAL entry belongs to a committed generation, and
    /// the executor commits a genesis checkpoint before record one.
    pub fn append_entry(&mut self, entry: &LogEntry) -> Result<(), StoreError> {
        if self.generation == 0 {
            return Ok(());
        }
        if self.wal_entries >= WAL_SEGMENT_ENTRIES {
            self.wal_segment += 1;
            self.wal_entries = 0;
            self.stats.wal_segments_rolled += 1;
        }
        let path = format!("gen-{}/wal-{}.bin", self.generation, self.wal_segment);
        let payload = encode_log_entry(entry);
        let mut frame = Vec::with_capacity(WAL_FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.retrying(|b| b.append(&path, &frame))?;
        self.retrying(|b| b.sync(&path))?;
        self.wal_entries += 1;
        self.stats.wal_appends += 1;
        Ok(())
    }

    /// Marks `generation` corrupt: recovery and scrub skip it until it
    /// is garbage-collected. Idempotent.
    pub fn quarantine(&mut self, generation: u64) {
        if !self.quarantined.contains(&generation) {
            self.quarantined.push(generation);
            self.stats.generations_quarantined += 1;
        }
    }

    /// The active generation (0 before the first commit).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cumulative counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Loads the newest readable generation's artifacts, quarantining
    /// unreadable candidates and falling back to older ones. `None`
    /// when no generation is readable (fresh start). WAL torn tails are
    /// truncated away on the backend (the repair), so a second recovery
    /// sees identical artifacts.
    pub fn recover_artifacts(&mut self) -> Result<Option<RecoveredArtifacts>, StoreError> {
        let manifests = self.read_manifests();
        let mut candidates: Vec<(u64, Option<Manifest>)> =
            manifests.iter().map(|m| (m.generation, Some(*m))).collect();
        let mut scanned = self.scan_generations()?;
        scanned.sort_unstable_by(|a, b| b.cmp(a));
        for g in scanned {
            if !candidates.iter().any(|&(c, _)| c == g) {
                candidates.push((g, None));
            }
        }
        let mut fallbacks = 0u64;
        for (gen, manifest) in candidates {
            if self.quarantined.contains(&gen) {
                continue;
            }
            match self.try_load(gen, manifest.as_ref()) {
                Ok((snapshot, log, torn_entries_dropped)) => {
                    self.generation = gen;
                    self.start_fresh_segment(gen)?;
                    return Ok(Some(RecoveredArtifacts {
                        snapshot,
                        log,
                        generation: gen,
                        fallbacks,
                        torn_entries_dropped,
                    }));
                }
                Err(LoadFail::Dead(e)) => return Err(e),
                Err(LoadFail::Corrupt) => {
                    self.quarantine(gen);
                    self.stats.fallbacks += 1;
                    fallbacks += 1;
                }
            }
        }
        Ok(None)
    }

    /// Loads and verifies one generation: snapshot bytes against the
    /// manifest checksum (when a manifest names it), then the codec's
    /// own frame, then the WAL chain with torn-tail repair.
    fn try_load(
        &mut self,
        gen: u64,
        manifest: Option<&Manifest>,
    ) -> Result<(Snapshot, EvictionLog, u64), LoadFail> {
        let snap_path = format!("gen-{gen}/snapshot.bin");
        let bytes = self.read_artifact(&snap_path)?;
        if let Some(m) = manifest {
            if bytes.len() as u64 != m.snapshot_len || fnv64(&bytes) != m.snapshot_fnv {
                return Err(LoadFail::Corrupt);
            }
        }
        let snapshot = Snapshot::decode(&bytes).map_err(|_| LoadFail::Corrupt)?;
        let (entries, torn) = self.load_wal(gen, &snapshot)?;
        Ok((snapshot, EvictionLog::from_entries(entries), torn))
    }

    /// Reads one artifact, distinguishing "this artifact is gone"
    /// (fall back) from "the backend is dead" (propagate).
    fn read_artifact(&mut self, path: &str) -> Result<Vec<u8>, LoadFail> {
        let owned = path.to_string();
        match self.retrying(|b| b.read(&owned)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind == StoreErrorKind::Crashed => Err(LoadFail::Dead(e)),
            Err(_) => Err(LoadFail::Corrupt),
        }
    }

    /// Decodes `gen`'s WAL segments in order, enforcing the contiguous
    /// sequence chain from the snapshot's high-water mark. The first
    /// invalid frame (bad length, checksum, codec, or sequence) is a
    /// torn tail: the segment is truncated to the valid prefix, later
    /// segments are removed, and the dropped entries are re-derived
    /// from stream replay. Returns `(entries, entries_dropped)`.
    fn load_wal(
        &mut self,
        gen: u64,
        snapshot: &Snapshot,
    ) -> Result<(Vec<LogEntry>, u64), LoadFail> {
        let dir = format!("gen-{gen}");
        let names = match self.backend.list(&dir) {
            Ok(names) => names,
            Err(e) if e.kind == StoreErrorKind::Crashed => return Err(LoadFail::Dead(e)),
            Err(_) => Vec::new(),
        };
        let mut segs: Vec<u64> = names.iter().filter_map(|n| parse_wal(n)).collect();
        segs.sort_unstable();
        let mut entries: Vec<LogEntry> = Vec::new();
        let mut dropped = 0u64;
        let mut expected_seq = snapshot.seq;
        let mut halted = false;
        for k in segs {
            let path = format!("{dir}/wal-{k}.bin");
            if halted {
                // Past the torn point: the chain is broken, so every
                // later entry is unreachable. Count and remove them.
                dropped += self.count_frames(&path)?;
                let owned = path.clone();
                let _ = self.retrying(|b| b.remove(&owned));
                continue;
            }
            let bytes = match self.read_artifact(&path) {
                Ok(b) => b,
                Err(LoadFail::Dead(e)) => return Err(LoadFail::Dead(e)),
                Err(LoadFail::Corrupt) => {
                    halted = true;
                    continue;
                }
            };
            let mut pos = 0usize;
            while pos < bytes.len() {
                let entry = match decode_frame(&bytes[pos..]) {
                    Some((entry, frame_len)) if entry.seq == expected_seq + 1 => {
                        pos += frame_len;
                        entry
                    }
                    _ => {
                        // Torn tail: truncate the file to the valid
                        // prefix so the repaired store is bit-stable.
                        dropped += 1;
                        halted = true;
                        let owned = path.clone();
                        let _ = self.retrying(|b| b.truncate(&owned, pos));
                        break;
                    }
                };
                expected_seq = entry.seq;
                entries.push(entry);
            }
        }
        Ok((entries, dropped))
    }

    /// Counts the (well-formed) frames in an orphaned segment so the
    /// repair can report how many entries it dropped. Unreadable or
    /// garbage bytes count as one torn frame.
    fn count_frames(&mut self, path: &str) -> Result<u64, LoadFail> {
        let bytes = match self.read_artifact(path) {
            Ok(b) => b,
            Err(LoadFail::Dead(e)) => return Err(LoadFail::Dead(e)),
            Err(LoadFail::Corrupt) => return Ok(1),
        };
        let mut n = 0u64;
        let mut pos = 0usize;
        while pos < bytes.len() {
            match decode_frame(&bytes[pos..]) {
                Some((_, frame_len)) => {
                    n += 1;
                    pos += frame_len;
                }
                None => {
                    n += 1;
                    break;
                }
            }
        }
        Ok(n)
    }

    /// Offline integrity pass: re-verifies every manifest, snapshot and
    /// WAL frame checksum, quarantining generations whose snapshot
    /// fails. Read-only apart from the quarantine list — repair belongs
    /// to [`CheckpointStore::recover_artifacts`].
    pub fn scrub(&mut self) -> Result<ScrubReport, StoreError> {
        let mut report = ScrubReport::default();
        for (i, slot) in [MANIFEST_A, MANIFEST_B].into_iter().enumerate() {
            report.manifests_valid[i] = match self.backend.read(slot) {
                Ok(bytes) => Manifest::decode(&bytes).is_some(),
                Err(_) => false,
            };
        }
        let manifests = self.read_manifests();
        let mut gens = self.scan_generations()?;
        gens.sort_unstable();
        for g in gens {
            report.generations_checked += 1;
            let snap_path = format!("gen-{g}/snapshot.bin");
            let manifest = manifests.iter().find(|m| m.generation == g);
            let snap_ok = match self.backend.read(&snap_path) {
                Ok(bytes) => {
                    manifest.is_none_or(|m| {
                        m.snapshot_len == bytes.len() as u64 && m.snapshot_fnv == fnv64(&bytes)
                    }) && Snapshot::decode(&bytes).is_ok()
                }
                Err(_) => false,
            };
            if !snap_ok {
                self.quarantine(g);
                report.generations_quarantined.push(g);
                continue;
            }
            let dir = format!("gen-{g}");
            let names = self.backend.list(&dir).unwrap_or_default();
            let mut segs: Vec<u64> = names.iter().filter_map(|n| parse_wal(n)).collect();
            segs.sort_unstable();
            for k in segs {
                let path = format!("{dir}/wal-{k}.bin");
                let Ok(bytes) = self.backend.read(&path) else {
                    report.torn_tails += 1;
                    continue;
                };
                let mut pos = 0usize;
                while pos < bytes.len() {
                    match decode_frame(&bytes[pos..]) {
                        Some((_, frame_len)) => {
                            report.wal_entries_checked += 1;
                            pos += frame_len;
                        }
                        None => {
                            report.torn_tails += 1;
                            break;
                        }
                    }
                }
            }
        }
        Ok(report)
    }
}

/// Parses `gen-N` directory names.
fn parse_gen(name: &str) -> Option<u64> {
    name.strip_prefix("gen-")?.parse().ok()
}

/// Parses `wal-K.bin` segment names.
fn parse_wal(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

/// Decodes one WAL frame at the head of `bytes`; `None` on any
/// violation (short header, insane length, checksum or codec failure).
/// Returns the entry and the total frame length consumed.
fn decode_frame(bytes: &[u8]) -> Option<(LogEntry, usize)> {
    if bytes.len() < WAL_FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().ok()?);
    if len > WAL_MAX_PAYLOAD {
        return None;
    }
    let sum = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
    let end = WAL_FRAME_HEADER.checked_add(len as usize)?;
    let payload = bytes.get(WAL_FRAME_HEADER..end)?;
    if fnv64(payload) != sum {
        return None;
    }
    let entry = decode_log_entry(payload).ok()?;
    Some((entry, end))
}

/// Result of a store-backed executor recovery (see
/// [`StoreHandle::recover_executor`]).
#[derive(Debug)]
pub struct StoreRecovery {
    /// The recovered executor with the store re-attached; `None` when
    /// no generation was usable (the caller starts fresh and replays
    /// the stream from record zero).
    pub executor: Option<Executor>,
    /// The recovered generation (0 on fresh start).
    pub generation: u64,
    /// Record high-water mark of the recovered snapshot: the stream
    /// position replay must resume from (0 on fresh start).
    pub records_hwm: u64,
    /// Candidates skipped to get here — when nonzero the recovery fell
    /// back past the newest generation, and any replay shortfall must
    /// be accounted as stale-fallback loss.
    pub fallbacks: u64,
    /// WAL entries dropped by torn-tail repair (re-derived from replay).
    pub torn_entries_dropped: u64,
}

/// A cloneable, thread-safe handle to one [`CheckpointStore`] — what
/// executors, shard drivers and supervisors actually hold. The mutex is
/// poison-proof: a panicking thread elsewhere never takes durability
/// down with it.
#[derive(Clone, Debug)]
pub struct StoreHandle {
    inner: Arc<Mutex<CheckpointStore>>,
}

impl StoreHandle {
    /// Wraps an already-open store.
    pub fn new(store: CheckpointStore) -> StoreHandle {
        StoreHandle {
            inner: Arc::new(Mutex::new(store)),
        }
    }

    /// An empty deterministic in-memory store (simulation backend, no
    /// faults).
    pub fn in_memory() -> Result<StoreHandle, StoreError> {
        CheckpointStore::open(Box::new(SimBackend::new())).map(StoreHandle::new)
    }

    /// An in-memory store with a seeded fault plan armed.
    pub fn in_memory_with_faults(plan: StorageFaultPlan) -> Result<StoreHandle, StoreError> {
        CheckpointStore::open(Box::new(SimBackend::with_faults(plan))).map(StoreHandle::new)
    }

    /// A store over real files rooted at `root`.
    pub fn on_disk<P: Into<PathBuf>>(root: P) -> Result<StoreHandle, StoreError> {
        let backend = DiskBackend::new(root)?;
        CheckpointStore::open(Box::new(backend)).map(StoreHandle::new)
    }

    fn lock(&self) -> MutexGuard<'_, CheckpointStore> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// See [`CheckpointStore::commit`].
    pub fn commit(&self, snapshot: &Snapshot) -> Result<(), StoreError> {
        self.lock().commit(snapshot)
    }

    /// See [`CheckpointStore::append_entry`].
    pub fn append_entry(&self, entry: &LogEntry) -> Result<(), StoreError> {
        self.lock().append_entry(entry)
    }

    /// See [`CheckpointStore::recover_artifacts`].
    pub fn recover_artifacts(&self) -> Result<Option<RecoveredArtifacts>, StoreError> {
        self.lock().recover_artifacts()
    }

    /// See [`CheckpointStore::scrub`].
    pub fn scrub(&self) -> Result<ScrubReport, StoreError> {
        self.lock().scrub()
    }

    /// See [`CheckpointStore::quarantine`].
    pub fn quarantine(&self, generation: u64) {
        self.lock().quarantine(generation)
    }

    /// See [`CheckpointStore::stats`].
    pub fn stats(&self) -> StoreStats {
        self.lock().stats()
    }

    /// See [`CheckpointStore::generation`].
    pub fn generation(&self) -> u64 {
        self.lock().generation()
    }

    /// Models a machine restart: the backend's volatile state resolves
    /// (see [`msa_stream::store::StorageBackend::power_cut`]) and the
    /// store re-derives its commit cursor from what survived — the
    /// in-memory quarantine list is lost, exactly like a real process.
    pub fn power_cut(&self) -> Result<(), StoreError> {
        let mut store = self.lock();
        store.backend.power_cut();
        store.rescan()
    }

    /// Drill/test escape hatch: direct access to the backend for fault
    /// injection (`corrupt`, `truncate`) and forensic reads. Production
    /// code has no business here.
    pub fn with_backend<R>(&self, f: impl FnOnce(&mut dyn StorageBackend) -> R) -> R {
        f(self.lock().backend.as_mut())
    }

    /// Recovers an executor from the newest usable generation.
    ///
    /// Drives the full degradation ladder: load artifacts (falling back
    /// past unreadable generations), validate them against `cfg` via
    /// [`Executor::recover`], and quarantine-and-retry when validation
    /// rejects a candidate (e.g. a lying fsync left the WAL behind the
    /// snapshot). The returned executor has this store re-attached;
    /// `executor: None` means nothing was recoverable and the caller
    /// starts fresh. Either way the outcome is one of the two permitted
    /// ends: bit-identical recovery (given replay from `records_hwm`)
    /// or explicit, accounted fallback — never silent corruption.
    pub fn recover_executor(&self, cfg: &ExecutorConfig) -> StoreRecovery {
        let start_fallbacks = self.stats().fallbacks;
        let mut torn = 0u64;
        loop {
            // Bind before matching: a guard living in the scrutinee
            // would still be held when the arms re-lock the handle.
            let loaded = self.lock().recover_artifacts();
            match loaded {
                Ok(Some(artifacts)) => {
                    torn += artifacts.torn_entries_dropped;
                    match cfg.build().recover(&artifacts.snapshot, artifacts.log) {
                        Ok(ex) => {
                            return StoreRecovery {
                                records_hwm: artifacts.snapshot.records_hwm,
                                generation: artifacts.generation,
                                executor: Some(ex.with_store(self.clone())),
                                fallbacks: self.stats().fallbacks - start_fallbacks,
                                torn_entries_dropped: torn,
                            };
                        }
                        Err(_) => {
                            let mut store = self.lock();
                            store.quarantine(artifacts.generation);
                            store.stats.fallbacks += 1;
                        }
                    }
                }
                Ok(None) | Err(_) => {
                    return StoreRecovery {
                        executor: None,
                        generation: 0,
                        records_hwm: 0,
                        fallbacks: self.stats().fallbacks - start_fallbacks,
                        torn_entries_dropped: torn,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PhysicalPlan, PlanNode};
    use crate::CostParams;
    use msa_stream::{AttrSet, Record};

    fn plan() -> PhysicalPlan {
        PhysicalPlan::new(vec![
            PlanNode {
                attrs: AttrSet::parse("AB").unwrap(),
                parent: None,
                buckets: 4,
                is_query: false,
            },
            PlanNode {
                attrs: AttrSet::parse("A").unwrap(),
                parent: Some(0),
                buckets: 2,
                is_query: true,
            },
            PlanNode {
                attrs: AttrSet::parse("B").unwrap(),
                parent: Some(0),
                buckets: 2,
                is_query: true,
            },
        ])
        .unwrap()
    }

    fn config() -> ExecutorConfig {
        let mut cfg = ExecutorConfig::new(plan(), CostParams::paper(), 1_000, 7);
        cfg.durable = true;
        cfg
    }

    fn records(n: u32) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(&[i % 5, i % 3, 0, 0], (i as u64) * 100))
            .collect()
    }

    /// Runs `recs` through a store-attached executor and returns its
    /// finished per-query totals for comparison.
    fn run_with_store(handle: &StoreHandle, recs: &[Record]) {
        let mut ex = config().build().with_store(handle.clone());
        ex.run(recs);
    }

    #[test]
    fn commit_creates_generations_and_gc_keeps_two() {
        let handle = StoreHandle::in_memory().unwrap();
        run_with_store(&handle, &records(200));
        let stats = handle.stats();
        assert!(stats.commits >= 3, "expected several boundary commits");
        let gens = handle.with_backend(|b| b.list("").unwrap());
        let gen_dirs: Vec<&String> = gens.iter().filter(|n| n.starts_with("gen-")).collect();
        assert!(
            gen_dirs.len() <= 2,
            "GC must keep at most two generations, found {gen_dirs:?}"
        );
        assert!(handle.generation() >= 3);
    }

    #[test]
    fn power_cut_recovery_resumes_from_newest_generation() {
        let handle = StoreHandle::in_memory().unwrap();
        let recs = records(200);
        run_with_store(&handle, &recs);
        let committed_gen = handle.generation();
        handle.power_cut().unwrap();
        let recovery = handle.recover_executor(&config());
        let mut ex = recovery.executor.expect("a generation must be readable");
        assert_eq!(recovery.generation, committed_gen);
        assert_eq!(recovery.fallbacks, 0);
        // Replay the tail and compare against an uninterrupted run.
        ex.run(&recs[recovery.records_hwm as usize..]);
        let (report, hfta) = ex.finish();
        let mut oracle = config().build();
        oracle.run(&recs);
        let (oracle_report, oracle_hfta) = oracle.finish();
        assert_eq!(report.records, oracle_report.records);
        for q in [AttrSet::parse("A").unwrap(), AttrSet::parse("B").unwrap()] {
            assert_eq!(hfta.totals(q), oracle_hfta.totals(q));
        }
    }

    #[test]
    fn corrupt_newest_generation_falls_back_to_older() {
        let handle = StoreHandle::in_memory().unwrap();
        run_with_store(&handle, &records(200));
        let newest = handle.generation();
        handle
            .with_backend(|b| b.corrupt(&format!("gen-{newest}/snapshot.bin"), 12))
            .unwrap();
        let recovery = handle.recover_executor(&config());
        let ex = recovery.executor.expect("older generation must be usable");
        assert!(recovery.generation < newest);
        assert!(recovery.fallbacks >= 1);
        assert!(recovery.records_hwm < 200);
        drop(ex);
        assert!(handle.stats().generations_quarantined >= 1);
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_repair_is_stable() {
        let handle = StoreHandle::in_memory().unwrap();
        run_with_store(&handle, &records(90));
        let gen = handle.generation();
        let dir = format!("gen-{gen}");
        let segs: Vec<String> = handle
            .with_backend(|b| b.list(&dir).unwrap())
            .into_iter()
            .filter(|n| n.starts_with("wal-"))
            .collect();
        let Some(seg) = segs.last() else {
            // No post-commit deliveries: nothing to tear; still a valid
            // recovery case covered elsewhere.
            return;
        };
        let path = format!("{dir}/{seg}");
        let len = handle.with_backend(|b| b.read(&path).unwrap().len());
        handle.with_backend(|b| b.truncate(&path, len - 3)).unwrap();
        let first = handle.recover_artifacts().unwrap().unwrap();
        assert!(first.torn_entries_dropped >= 1);
        // The repair truncated the torn frame: a second recovery sees a
        // clean store and identical artifacts.
        let second = handle.recover_artifacts().unwrap().unwrap();
        assert_eq!(second.torn_entries_dropped, 0);
        assert_eq!(first.snapshot.encode(), second.snapshot.encode());
        assert_eq!(first.log, second.log);
    }

    #[test]
    fn scrub_quarantines_bit_rot_and_counts_wal_entries() {
        let handle = StoreHandle::in_memory().unwrap();
        run_with_store(&handle, &records(120));
        let clean = handle.scrub().unwrap();
        assert!(clean.manifests_valid.iter().any(|&v| v));
        assert!(clean.generations_quarantined.is_empty());
        let gen = handle.generation();
        handle
            .with_backend(|b| b.corrupt(&format!("gen-{gen}/snapshot.bin"), 20))
            .unwrap();
        let dirty = handle.scrub().unwrap();
        assert_eq!(dirty.generations_quarantined, vec![gen]);
    }

    #[test]
    fn transient_eio_is_retried_and_enospc_is_not() {
        let eio = StorageFaultPlan {
            transient_eio: Some((4, 3)),
            ..StorageFaultPlan::none()
        };
        let handle = StoreHandle::in_memory_with_faults(eio).unwrap();
        run_with_store(&handle, &records(60));
        let stats = handle.stats();
        assert!(stats.io_retries >= 3, "retry loop must absorb the window");
        assert_eq!(stats.io_gave_up, 0);

        let enospc = StorageFaultPlan {
            fail_op: Some((2, StoreErrorKind::NoSpace)),
            ..StorageFaultPlan::none()
        };
        let handle = StoreHandle::in_memory_with_faults(enospc).unwrap();
        let mut ex = config().build().with_store(handle.clone());
        ex.run(&records(60));
        // ENOSPC is terminal for the store, not the pipeline: the
        // executor degrades to in-memory artifacts and keeps running.
        assert!(ex.store_degraded());
        assert_eq!(ex.report().records, 60);
    }

    #[test]
    fn manifest_slot_corruption_falls_back_to_other_slot() {
        let handle = StoreHandle::in_memory().unwrap();
        run_with_store(&handle, &records(200));
        // Kill the *winning* manifest slot; the other still names the
        // previous generation.
        let seq_slot = if handle.lock_seq() % 2 == 1 {
            MANIFEST_A
        } else {
            MANIFEST_B
        };
        handle.with_backend(|b| b.corrupt(seq_slot, 5)).unwrap();
        let recovery = handle.recover_executor(&config());
        assert!(recovery.executor.is_some());
        assert!(recovery.generation >= 1);
    }

    impl StoreHandle {
        /// Test-only peek at the manifest sequence.
        fn lock_seq(&self) -> u64 {
            self.lock().manifest_seq
        }
    }
}
