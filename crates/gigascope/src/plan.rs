//! Physical plans: executable configurations.
//!
//! A *configuration* (paper §3.1) is a tree of relations — user queries
//! plus chosen phantoms — with a bucket allocation. The optimizer crate
//! reasons about configurations symbolically; this module holds the
//! minimal physical description the executor needs, so that the
//! substrate does not depend on the optimizer.

use msa_stream::AttrSet;

/// One relation in a plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanNode {
    /// The relation's grouping attributes.
    pub attrs: AttrSet,
    /// Index of the feeding parent in the plan's node list; `None` for a
    /// raw relation (fed directly by the stream).
    pub parent: Option<usize>,
    /// Hash-table buckets allocated to this relation.
    pub buckets: usize,
    /// True if this relation is a user query (its evictions go to the
    /// HFTA); false for phantoms.
    pub is_query: bool,
}

/// An executable configuration: a forest of feeding trees.
#[derive(Clone, Debug, Default)]
pub struct PhysicalPlan {
    nodes: Vec<PlanNode>,
}

impl PhysicalPlan {
    /// Builds a plan, validating the tree structure:
    ///
    /// * every parent index must precede its child (topological order),
    /// * a child's attributes must be a proper subset of its parent's,
    /// * every node needs at least one bucket,
    /// * phantoms must have at least one child (a phantom feeding
    ///   nothing is pure overhead — the paper proves it is never
    ///   beneficial).
    pub fn new(nodes: Vec<PlanNode>) -> Result<PhysicalPlan, PlanError> {
        let mut has_child = vec![false; nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            if n.buckets == 0 {
                return Err(PlanError::ZeroBuckets { node: i });
            }
            if let Some(p) = n.parent {
                let parent = match nodes.get(p).filter(|_| p < i) {
                    Some(parent) => parent,
                    None => return Err(PlanError::ParentOrder { node: i, parent: p }),
                };
                if !n.attrs.is_proper_subset_of(parent.attrs) {
                    return Err(PlanError::NotSubset { node: i, parent: p });
                }
                if let Some(h) = has_child.get_mut(p) {
                    *h = true;
                }
            }
        }
        for (i, (n, has)) in nodes.iter().zip(&has_child).enumerate() {
            if !n.is_query && !has {
                return Err(PlanError::ChildlessPhantom { node: i });
            }
        }
        Ok(PhysicalPlan { nodes })
    }

    /// The nodes in topological (parent-before-child) order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// Indices of raw relations (fed directly by the stream).
    pub fn raw_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent.is_none())
            .map(|(i, _)| i)
    }

    /// Child indices of node `i`.
    pub fn children(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.parent == Some(i))
            .map(|(i, _)| i)
    }

    /// Indices of query nodes.
    pub fn query_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_query)
            .map(|(i, _)| i)
    }

    /// The attribute sets of the query nodes, in slot order — the
    /// queries a record feeds, which is what a poison-record report
    /// names as the blast radius of a quarantined record.
    pub fn query_attrs(&self) -> Vec<AttrSet> {
        self.query_nodes().map(|i| self.nodes[i].attrs).collect()
    }

    /// Total space in 4-byte words (`Σ buckets·(arity+1)`), the quantity
    /// bounded by the LFTA memory limit `M`.
    pub fn space_words(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.buckets * n.attrs.entry_words())
            .sum()
    }

    /// The per-shard plan of an `N`-way sharded deployment: the same
    /// tree with every allocation cut to `buckets/N` (floored, at least
    /// one bucket), so `N` shard instances together stay within the
    /// memory limit `M` the original plan was sized for. `N = 1` is the
    /// identity.
    pub fn split_for_shards(&self, shards: usize) -> PhysicalPlan {
        PhysicalPlan {
            nodes: self
                .nodes
                .iter()
                .map(|n| PlanNode {
                    buckets: (n.buckets / shards.max(1)).max(1),
                    ..*n
                })
                .collect(),
        }
    }

    /// Convenience: a plan with no phantoms — every query is raw, with
    /// the given `(attrs, buckets)` list (bucket counts clamped to at
    /// least one).
    ///
    /// Such a plan satisfies every invariant [`PhysicalPlan::new`]
    /// checks, so construction is infallible — planners also use it as
    /// the degraded fallback when a composed plan fails validation.
    pub fn flat(queries: impl IntoIterator<Item = (AttrSet, usize)>) -> PhysicalPlan {
        PhysicalPlan {
            nodes: queries
                .into_iter()
                .map(|(attrs, buckets)| PlanNode {
                    attrs,
                    parent: None,
                    buckets: buckets.max(1),
                    is_query: true,
                })
                .collect(),
        }
    }
}

/// Plan validation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A node has no buckets.
    ZeroBuckets {
        /// Offending node index.
        node: usize,
    },
    /// A parent index does not precede its child.
    ParentOrder {
        /// Offending node index.
        node: usize,
        /// Claimed parent index.
        parent: usize,
    },
    /// A child's attribute set is not a proper subset of its parent's.
    NotSubset {
        /// Offending node index.
        node: usize,
        /// Parent index.
        parent: usize,
    },
    /// A phantom with no children.
    ChildlessPhantom {
        /// Offending node index.
        node: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ZeroBuckets { node } => write!(f, "node {node} has zero buckets"),
            PlanError::ParentOrder { node, parent } => {
                write!(f, "node {node} references later parent {parent}")
            }
            PlanError::NotSubset { node, parent } => {
                write!(f, "node {node} is not a proper subset of parent {parent}")
            }
            PlanError::ChildlessPhantom { node } => {
                write!(f, "phantom node {node} feeds no relations")
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    #[test]
    fn valid_phantom_tree() {
        // ABC feeds A, B, C (paper Fig. 2).
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("ABC"),
                parent: None,
                buckets: 100,
                is_query: false,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 10,
                is_query: true,
            },
            PlanNode {
                attrs: s("B"),
                parent: Some(0),
                buckets: 10,
                is_query: true,
            },
            PlanNode {
                attrs: s("C"),
                parent: Some(0),
                buckets: 10,
                is_query: true,
            },
        ])
        .unwrap();
        assert_eq!(plan.raw_nodes().collect::<Vec<_>>(), vec![0]);
        assert_eq!(plan.children(0).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(plan.query_nodes().count(), 3);
        // Space: 100·4 + 3·10·2 = 460 words.
        assert_eq!(plan.space_words(), 460);
    }

    #[test]
    fn rejects_childless_phantom() {
        let err = PhysicalPlan::new(vec![PlanNode {
            attrs: s("AB"),
            parent: None,
            buckets: 10,
            is_query: false,
        }])
        .unwrap_err();
        assert_eq!(err, PlanError::ChildlessPhantom { node: 0 });
    }

    #[test]
    fn rejects_non_subset_edge() {
        let err = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("AB"),
                parent: None,
                buckets: 10,
                is_query: true,
            },
            PlanNode {
                attrs: s("CD"),
                parent: Some(0),
                buckets: 10,
                is_query: true,
            },
        ])
        .unwrap_err();
        assert!(matches!(err, PlanError::NotSubset { .. }));
    }

    #[test]
    fn rejects_forward_parent() {
        let err = PhysicalPlan::new(vec![PlanNode {
            attrs: s("A"),
            parent: Some(0),
            buckets: 10,
            is_query: true,
        }])
        .unwrap_err();
        assert!(matches!(err, PlanError::ParentOrder { .. }));
    }

    #[test]
    fn rejects_zero_buckets() {
        let err = PhysicalPlan::new(vec![PlanNode {
            attrs: s("A"),
            parent: None,
            buckets: 0,
            is_query: true,
        }])
        .unwrap_err();
        assert!(matches!(err, PlanError::ZeroBuckets { .. }));
    }

    #[test]
    fn split_for_shards_divides_space() {
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("ABC"),
                parent: None,
                buckets: 100,
                is_query: false,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 10,
                is_query: true,
            },
            PlanNode {
                attrs: s("B"),
                parent: Some(0),
                buckets: 3,
                is_query: true,
            },
        ])
        .unwrap();
        // N = 1 is the identity.
        assert_eq!(plan.split_for_shards(1).nodes(), plan.nodes());
        let quarter = plan.split_for_shards(4);
        assert_eq!(quarter.nodes()[0].buckets, 25);
        assert_eq!(quarter.nodes()[1].buckets, 2);
        // Small allocations floor at one bucket, never zero.
        assert_eq!(quarter.nodes()[2].buckets, 1);
        // Tree shape is untouched.
        assert_eq!(quarter.nodes()[1].parent, Some(0));
        assert!(quarter.space_words() <= plan.space_words() / 4 + 8);
    }

    #[test]
    fn flat_plan_is_all_raw_queries() {
        let plan = PhysicalPlan::flat([(s("AB"), 5), (s("CD"), 6)]);
        assert_eq!(plan.raw_nodes().count(), 2);
        assert_eq!(plan.query_nodes().count(), 2);
        // 5·3 + 6·3 = 33 words.
        assert_eq!(plan.space_words(), 33);
    }
}
