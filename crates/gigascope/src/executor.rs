//! The two-level executor: streams records through a configuration.
//!
//! Semantics follow the paper exactly:
//!
//! * every arriving record probes the table of **each raw relation**
//!   (cost `c1` per probe);
//! * a collision in a phantom table evicts the occupant, which is pushed
//!   into each of the phantom's children (one `c1` probe per child),
//!   recursively;
//! * a collision in a *query* table evicts the occupant to the HFTA
//!   (cost `c2`); if the query also feeds children, the occupant feeds
//!   them too;
//! * at each epoch boundary, tables are scanned top-down: every entry is
//!   propagated to the children (collisions cascade as usual) and query
//!   tables finally evict everything to the HFTA (§3.2.2).
//!
//! The executor meters intra-epoch and end-of-epoch costs separately, so
//! experiments can compare measured values against Eq. 7 and Eq. 8.

use crate::hfta::Hfta;
use crate::plan::PhysicalPlan;
use crate::table::{AggState, LftaTable, Probe, TableStats};
use crate::CostParams;
use msa_stream::hash::mix64;
use msa_stream::{AttrSet, Filter, GroupKey, Record};

/// Where a record's metric value (e.g. packet length) comes from.
///
/// Aggregates beyond `count(*)` — the paper's "average packet length"
/// queries — need a per-record metric. The metric is one of the
/// record's attribute slots, typically one that no query groups by.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValueSource {
    /// No metric: entries carry counts only.
    #[default]
    None,
    /// Read the metric from attribute slot `0..MAX_ATTRS`.
    Attr(u8),
}

impl ValueSource {
    #[inline]
    fn extract(&self, record: &Record) -> AggState {
        match *self {
            ValueSource::None => AggState::unit(),
            ValueSource::Attr(i) => AggState::from_value(record.attrs[i as usize]),
        }
    }
}

/// Cost and throughput report of a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Records processed.
    pub records: u64,
    /// Intra-epoch LFTA probes (raw-record probes plus cascade feeds).
    pub intra_probes: u64,
    /// Intra-epoch evictions to the HFTA.
    pub intra_evictions: u64,
    /// End-of-epoch probes (flush propagation).
    pub flush_probes: u64,
    /// End-of-epoch evictions to the HFTA.
    pub flush_evictions: u64,
    /// Number of epochs closed.
    pub epochs: u64,
    /// Records rejected by the selection filter (they are included in
    /// `records` but cost nothing downstream).
    pub filtered_out: u64,
    /// Cost parameters used.
    pub costs: CostParams,
}

impl RunReport {
    /// Intra-epoch (maintenance) cost `E_m`.
    pub fn intra_cost(&self) -> f64 {
        self.costs.c1 * self.intra_probes as f64 + self.costs.c2 * self.intra_evictions as f64
    }

    /// End-of-epoch (update) cost `E_u`, summed over all epochs.
    pub fn flush_cost(&self) -> f64 {
        self.costs.c1 * self.flush_probes as f64 + self.costs.c2 * self.flush_evictions as f64
    }

    /// Total cost.
    pub fn total_cost(&self) -> f64 {
        self.intra_cost() + self.flush_cost()
    }

    /// Per-record intra-epoch cost `e_m` (Eq. 7's measured counterpart).
    pub fn per_record_cost(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.intra_cost() / self.records as f64
        }
    }
}

/// Streams records through a [`PhysicalPlan`], maintaining the LFTA
/// tables and the HFTA combiner, and accounting every cost.
#[derive(Clone, Debug)]
pub struct Executor {
    plan: PhysicalPlan,
    tables: Vec<LftaTable>,
    children: Vec<Vec<usize>>,
    raw: Vec<usize>,
    /// HFTA query slot per node (`None` for phantoms).
    query_slot: Vec<Option<usize>>,
    hfta: Hfta,
    epoch_micros: u64,
    current_epoch: u64,
    in_flush: bool,
    value_source: ValueSource,
    filter: Filter,
    report: RunReport,
}

impl Executor {
    /// Creates an executor over `plan` with epoch length `epoch_micros`
    /// (use `u64::MAX` for a single open-ended epoch) and hash seed
    /// `seed`.
    pub fn new(plan: PhysicalPlan, costs: CostParams, epoch_micros: u64, seed: u64) -> Executor {
        let n = plan.nodes().len();
        let mut children = vec![Vec::new(); n];
        for (i, node) in plan.nodes().iter().enumerate() {
            if let Some(p) = node.parent {
                children[p].push(i);
            }
        }
        let raw: Vec<usize> = plan.raw_nodes().collect();
        let tables: Vec<LftaTable> = plan
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, node)| LftaTable::new(node.attrs, node.buckets, mix64(seed ^ i as u64)))
            .collect();
        let mut query_slot = vec![None; n];
        let mut queries = Vec::new();
        for (i, node) in plan.nodes().iter().enumerate() {
            if node.is_query {
                query_slot[i] = Some(queries.len());
                queries.push(node.attrs);
            }
        }
        Executor {
            plan,
            tables,
            children,
            raw,
            query_slot,
            hfta: Hfta::new(queries),
            epoch_micros: epoch_micros.max(1),
            current_epoch: 0,
            in_flush: false,
            value_source: ValueSource::None,
            filter: Filter::all(),
            report: RunReport {
                costs,
                ..RunReport::default()
            },
        }
    }

    /// Disables HFTA result retention (pure cost-measurement runs).
    pub fn discard_results(mut self) -> Executor {
        self.hfta = std::mem::take(&mut self.hfta).discard_results();
        self
    }

    /// Sets the metric-value source for SUM/MIN/MAX/AVG aggregates.
    pub fn with_value_source(mut self, source: ValueSource) -> Executor {
        self.value_source = source;
        self
    }

    /// Installs a selection filter, evaluated per record ahead of all
    /// hash-table probes (the "F" of LFTA).
    pub fn with_filter(mut self, filter: Filter) -> Executor {
        self.filter = filter;
        self
    }

    /// The plan being executed.
    pub fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    /// Per-table statistics `(relation, stats)` in plan order.
    pub fn table_stats(&self) -> Vec<(AttrSet, TableStats)> {
        self.tables.iter().map(|t| (t.attrs(), t.stats())).collect()
    }

    /// Pushes `(key, count)` into node `i`'s table and cascades any
    /// eviction.
    fn push(&mut self, i: usize, key: GroupKey, agg: AggState) {
        if self.in_flush {
            self.report.flush_probes += 1;
        } else {
            self.report.intra_probes += 1;
        }
        if let Probe::Evicted(old) = self.tables[i].probe(key, agg) {
            self.emit(i, old.key, old.agg);
        }
    }

    /// Routes an entry leaving node `i` (eviction or flush scan) to the
    /// HFTA and/or the node's children.
    fn emit(&mut self, i: usize, key: GroupKey, agg: AggState) {
        if self.query_slot[i].is_some() {
            let slot = self.query_slot[i].expect("checked");
            self.hfta.receive(slot, key, agg);
            if self.in_flush {
                self.report.flush_evictions += 1;
            } else {
                self.report.intra_evictions += 1;
            }
        }
        let own = self.plan.nodes()[i].attrs;
        // Children are few; clone the index list to appease the borrow
        // checker without restructuring the hot path.
        let kids = self.children[i].clone();
        for c in kids {
            let child_attrs = self.plan.nodes()[c].attrs;
            let child_key = key.reproject(own, child_attrs);
            self.push(c, child_key, agg);
        }
    }

    /// Processes one record, closing epochs as its timestamp dictates.
    #[inline]
    pub fn process(&mut self, record: &Record) {
        while record.ts_micros >= (self.current_epoch + 1).saturating_mul(self.epoch_micros) {
            self.flush_epoch();
        }
        self.report.records += 1;
        if !self.filter.matches(record) {
            self.report.filtered_out += 1;
            return;
        }
        let agg = self.value_source.extract(record);
        for idx in 0..self.raw.len() {
            let node = self.raw[idx];
            let key = record.project(self.plan.nodes()[node].attrs);
            self.push(node, key, agg);
        }
    }

    /// Processes a batch of records.
    pub fn run(&mut self, records: &[Record]) {
        for r in records {
            self.process(r);
        }
    }

    /// Closes the current epoch: scans tables top-down, propagating every
    /// entry to the children and finally evicting query contents to the
    /// HFTA (§3.2.2).
    pub fn flush_epoch(&mut self) {
        self.in_flush = true;
        for i in 0..self.tables.len() {
            let entries = self.tables[i].drain();
            for e in entries {
                self.emit(i, e.key, e.agg);
            }
        }
        self.in_flush = false;
        self.hfta.close_epoch();
        self.current_epoch += 1;
        self.report.epochs += 1;
    }

    /// Flushes the final epoch and returns the report.
    pub fn finish(mut self) -> (RunReport, Hfta) {
        self.flush_epoch();
        (self.report.clone(), self.hfta)
    }

    /// The report so far (without flushing).
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Resets per-table statistics (drift detection works on windows;
    /// table contents and cost counters are unaffected).
    pub fn reset_table_stats(&mut self) {
        for t in &mut self.tables {
            t.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PhysicalPlan, PlanNode};
    use msa_stream::hash::FastMap;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    /// Exact per-group counts computed naively.
    fn exact_counts(records: &[Record], q: AttrSet) -> FastMap<GroupKey, u64> {
        let mut m = FastMap::default();
        for r in records {
            *m.entry(r.project(q)).or_insert(0) += 1;
        }
        m
    }

    fn records(tuples: &[[u32; 4]]) -> Vec<Record> {
        tuples
            .iter()
            .enumerate()
            .map(|(i, t)| Record::new(t, i as u64))
            .collect()
    }

    #[test]
    fn flat_plan_produces_exact_results() {
        let recs = records(&[
            [1, 10, 100, 0],
            [1, 11, 100, 0],
            [2, 10, 101, 0],
            [1, 10, 100, 0],
        ]);
        let plan = PhysicalPlan::flat(&[(s("A"), 4), (s("B"), 4)]).unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 1);
        ex.run(&recs);
        let (report, hfta) = ex.finish();
        assert_eq!(report.records, 4);
        assert_eq!(hfta.totals(s("A")), exact_counts(&recs, s("A")));
        assert_eq!(hfta.totals(s("B")), exact_counts(&recs, s("B")));
    }

    #[test]
    fn phantom_plan_produces_exact_results() {
        // ABC feeds A, B, C; tiny tables force heavy cascading.
        let recs: Vec<Record> = (0..500u32)
            .map(|i| Record::new(&[i % 7, i % 5, i % 3, 0], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("ABC"),
                parent: None,
                buckets: 4,
                is_query: false,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 2,
                is_query: true,
            },
            PlanNode {
                attrs: s("B"),
                parent: Some(0),
                buckets: 2,
                is_query: true,
            },
            PlanNode {
                attrs: s("C"),
                parent: Some(0),
                buckets: 2,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 3);
        ex.run(&recs);
        let (_, hfta) = ex.finish();
        for q in ["A", "B", "C"] {
            assert_eq!(
                hfta.totals(s(q)),
                exact_counts(&recs, s(q)),
                "query {q} mismatch"
            );
        }
    }

    #[test]
    fn multi_level_phantoms_remain_exact() {
        // (ABCD(AB BCD(BC BD CD))) — paper Fig. 3(c).
        let recs: Vec<Record> = (0..2000u32)
            .map(|i| Record::new(&[i % 11, i % 6, i % 4, i % 3], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("ABCD"),
                parent: None,
                buckets: 16,
                is_query: false,
            },
            PlanNode {
                attrs: s("AB"),
                parent: Some(0),
                buckets: 8,
                is_query: true,
            },
            PlanNode {
                attrs: s("BCD"),
                parent: Some(0),
                buckets: 8,
                is_query: false,
            },
            PlanNode {
                attrs: s("BC"),
                parent: Some(2),
                buckets: 4,
                is_query: true,
            },
            PlanNode {
                attrs: s("BD"),
                parent: Some(2),
                buckets: 4,
                is_query: true,
            },
            PlanNode {
                attrs: s("CD"),
                parent: Some(2),
                buckets: 4,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 5);
        ex.run(&recs);
        let (_, hfta) = ex.finish();
        for q in ["AB", "BC", "BD", "CD"] {
            assert_eq!(
                hfta.totals(s(q)),
                exact_counts(&recs, s(q)),
                "query {q} mismatch"
            );
        }
    }

    #[test]
    fn epochs_split_results_and_counts_flush_cost() {
        let recs = vec![
            Record::new(&[1, 0, 0, 0], 0),
            Record::new(&[1, 0, 0, 0], 500_000),
            Record::new(&[1, 0, 0, 0], 1_500_000), // second epoch
        ];
        let plan = PhysicalPlan::flat(&[(s("A"), 4)]).unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), 1_000_000, 0);
        ex.run(&recs);
        let (report, hfta) = ex.finish();
        assert_eq!(report.epochs, 2);
        let res = hfta.results();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].total_count(), 2);
        assert_eq!(res[1].total_count(), 1);
        // Each epoch flushes one entry from the single query table.
        assert_eq!(report.flush_evictions, 2);
    }

    #[test]
    fn cost_accounting_flat_no_collisions() {
        // 3 distinct groups into 64 buckets: collisions vanishingly rare.
        let recs = records(&[[1, 0, 0, 0], [2, 0, 0, 0], [3, 0, 0, 0]]);
        let plan = PhysicalPlan::flat(&[(s("A"), 64)]).unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 9);
        ex.run(&recs);
        let (report, _) = ex.finish();
        assert_eq!(report.intra_probes, 3);
        assert_eq!(report.intra_evictions, 0);
        assert_eq!(report.flush_evictions, 3);
        assert_eq!(report.intra_cost(), 3.0);
        assert_eq!(report.flush_cost(), 150.0);
        assert_eq!(report.per_record_cost(), 1.0);
    }

    #[test]
    fn phantom_cascade_costs_match_model_shape() {
        // One phantom AB feeding A and B: each phantom collision should
        // add exactly two child probes (E2 structure of §2.5).
        let recs: Vec<Record> = (0..1000u32)
            .map(|i| Record::new(&[i % 50, i / 50, 0, 0], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("AB"),
                parent: None,
                buckets: 8,
                is_query: false,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 8,
                is_query: true,
            },
            PlanNode {
                attrs: s("B"),
                parent: Some(0),
                buckets: 8,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 13);
        ex.run(&recs);
        let stats = ex.table_stats();
        let phantom_collisions = stats[0].1.collisions;
        let child_feeds = stats[1].1.probes + stats[2].1.probes;
        assert_eq!(child_feeds, 2 * phantom_collisions);
        let report = ex.report();
        // Intra probes = n raw probes + child feeds.
        assert_eq!(report.intra_probes, 1000 + child_feeds);
    }

    #[test]
    fn query_feeding_query_reaches_both_hfta_and_child() {
        // Query AB feeds query A: AB evictions must land in the HFTA and
        // also feed A's table.
        let recs: Vec<Record> = (0..200u32)
            .map(|i| Record::new(&[i % 10, i % 7, 0, 0], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("AB"),
                parent: None,
                buckets: 4,
                is_query: true,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 4,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 21);
        ex.run(&recs);
        let (_, hfta) = ex.finish();
        assert_eq!(hfta.totals(s("AB")), exact_counts(&recs, s("AB")));
        assert_eq!(hfta.totals(s("A")), exact_counts(&recs, s("A")));
    }

    #[test]
    fn value_aggregates_survive_the_cascade() {
        // Metric = attribute D (e.g. packet length); grouping on A via
        // phantom AB. SUM/MIN/MAX per A-group must match a naive pass,
        // no matter how entries bounce through the phantom.
        let recs: Vec<Record> = (0..600u32)
            .map(|i| Record::new(&[i % 12, i % 7, 0, 100 + (i % 50)], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("AB"),
                parent: None,
                buckets: 4,
                is_query: false,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 4,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 8)
            .with_value_source(ValueSource::Attr(3));
        ex.run(&recs);
        let (_, hfta) = ex.finish();
        let got = hfta.aggregate_totals(s("A"));
        // Naive ground truth.
        let mut want: FastMap<GroupKey, (u64, u64, u32, u32)> = FastMap::default();
        for r in &recs {
            let k = r.project(s("A"));
            let v = r.attrs[3];
            let e = want.entry(k).or_insert((0, 0, u32::MAX, 0));
            e.0 += 1;
            e.1 += u64::from(v);
            e.2 = e.2.min(v);
            e.3 = e.3.max(v);
        }
        assert_eq!(got.len(), want.len());
        for (k, (count, sum, min, max)) in want {
            let a = got[&k];
            assert_eq!((a.count, a.sum, a.min, a.max), (count, sum, min, max), "group {k}");
        }
    }

    #[test]
    fn selection_filter_runs_before_probes() {
        use msa_stream::{CmpOp, Filter};
        // Keep only records with B = 0 (e.g. "dstPort = 80").
        let recs: Vec<Record> = (0..300u32)
            .map(|i| Record::new(&[i % 10, i % 3, 0, 0], i as u64))
            .collect();
        let plan = PhysicalPlan::flat(&[(s("A"), 32)]).unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 6)
            .with_filter(Filter::all().and(1, CmpOp::Eq, 0));
        ex.run(&recs);
        let (report, hfta) = ex.finish();
        assert_eq!(report.records, 300);
        assert_eq!(report.filtered_out, 200);
        // Probes happened only for passing records.
        assert_eq!(report.intra_probes, 100);
        // Results equal a naive filtered computation.
        let filtered: Vec<Record> = recs
            .iter()
            .copied()
            .filter(|r| r.attrs[1] == 0)
            .collect();
        assert_eq!(hfta.totals(s("A")), exact_counts(&filtered, s("A")));
    }

    #[test]
    fn results_conserve_record_counts() {
        // Σ counts per query = number of records, whatever the plan.
        let recs: Vec<Record> = (0..777u32)
            .map(|i| Record::new(&[i % 13, i % 9, i % 2, 0], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("ABC"),
                parent: None,
                buckets: 8,
                is_query: false,
            },
            PlanNode {
                attrs: s("AB"),
                parent: Some(0),
                buckets: 4,
                is_query: true,
            },
            PlanNode {
                attrs: s("C"),
                parent: Some(0),
                buckets: 2,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 2);
        ex.run(&recs);
        let (_, hfta) = ex.finish();
        for q in ["AB", "C"] {
            let total: u64 = hfta.totals(s(q)).values().sum();
            assert_eq!(total, 777, "query {q}");
        }
    }
}
