//! The two-level executor: streams records through a configuration.
//!
//! Semantics follow the paper exactly:
//!
//! * every arriving record probes the table of **each raw relation**
//!   (cost `c1` per probe);
//! * a collision in a phantom table evicts the occupant, which is pushed
//!   into each of the phantom's children (one `c1` probe per child),
//!   recursively;
//! * a collision in a *query* table evicts the occupant to the HFTA
//!   (cost `c2`); if the query also feeds children, the occupant feeds
//!   them too;
//! * at each epoch boundary, tables are scanned top-down: every entry is
//!   propagated to the children (collisions cascade as usual) and query
//!   tables finally evict everything to the HFTA (§3.2.2).
//!
//! The executor meters intra-epoch and end-of-epoch costs separately, so
//! experiments can compare measured values against Eq. 7 and Eq. 8.

use crate::bounds::BoundsReport;
use crate::channel::{ChannelStats, Delivery, EvictionChannel};
use crate::faults::{CrashPlan, FaultPlan};
use crate::guard::{GuardLevel, GuardPolicy, GuardTransition, OverloadGuard, ShedDecision};
use crate::hfta::Hfta;
use crate::plan::PhysicalPlan;
use crate::snapshot::{
    plan_fingerprint, EvictionLog, LogEntry, RecoveryError, Snapshot, SnapshotError,
};
use crate::store::StoreHandle;
use crate::table::{AggState, LftaTable, Probe, TableStats};
use crate::CostParams;
use msa_stream::hash::mix64;
use msa_stream::{AttrSet, Filter, GroupKey, Record, RecordChunk};

/// Where a record's metric value (e.g. packet length) comes from.
///
/// Aggregates beyond `count(*)` — the paper's "average packet length"
/// queries — need a per-record metric. The metric is one of the
/// record's attribute slots, typically one that no query groups by.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValueSource {
    /// No metric: entries carry counts only.
    #[default]
    None,
    /// Read the metric from attribute slot `0..MAX_ATTRS`.
    Attr(u8),
}

impl ValueSource {
    #[inline]
    fn extract(&self, record: &Record) -> AggState {
        match *self {
            ValueSource::None => AggState::unit(),
            ValueSource::Attr(i) => {
                AggState::from_value(record.attrs.get(i as usize).copied().unwrap_or(0))
            }
        }
    }
}

/// Uniform ingestion surface over the scalar and chunked paths.
///
/// The differential battery (`tests/vectorized.rs`) drives the same
/// workload through both methods of this trait and asserts bit-identical
/// reports, bounds and snapshots: [`Ingest::offer`] is the per-record
/// oracle, [`Ingest::offer_chunk`] the columnar fast path.
pub trait Ingest {
    /// Processes one record (the scalar oracle path).
    fn offer(&mut self, record: &Record);

    /// Processes a columnar chunk, observationally identical to
    /// offering every lane in order.
    fn offer_chunk(&mut self, chunk: &RecordChunk);
}

impl Ingest for Executor {
    #[inline]
    fn offer(&mut self, record: &Record) {
        self.process(record);
    }

    #[inline]
    fn offer_chunk(&mut self, chunk: &RecordChunk) {
        Executor::offer_chunk(self, chunk);
    }
}

/// Cost and throughput report of a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Records processed.
    pub records: u64,
    /// Intra-epoch LFTA probes (raw-record probes plus cascade feeds).
    pub intra_probes: u64,
    /// Intra-epoch evictions to the HFTA.
    pub intra_evictions: u64,
    /// End-of-epoch probes (flush propagation).
    pub flush_probes: u64,
    /// End-of-epoch evictions to the HFTA.
    pub flush_evictions: u64,
    /// Number of epochs closed.
    pub epochs: u64,
    /// Records rejected by the selection filter (they are included in
    /// `records` but cost nothing downstream).
    pub filtered_out: u64,
    /// Records dropped by overload shedding (included in `records`;
    /// every query undercounts by exactly this many records).
    pub records_shed: u64,
    /// Evictions lost on the LFTA → HFTA channel.
    pub evictions_dropped: u64,
    /// Evictions delivered twice on the channel.
    pub evictions_duplicated: u64,
    /// Per-query record mass lost to dropped evictions: `(query,
    /// Σ count of dropped partials)`.
    pub dropped_records: Vec<(AttrSet, u64)>,
    /// Per-query record mass double-counted by duplicated evictions.
    pub duplicated_records: Vec<(AttrSet, u64)>,
    /// Epochs that ran at a degradation level above normal.
    pub epochs_degraded: u64,
    /// Every overload-guard state change, in order.
    pub guard_transitions: Vec<GuardTransition>,
    /// Per-epoch cost trace: `(epoch, intra_cost, flush_cost)` of each
    /// closed epoch — what the overload guard judges against `E_p`.
    pub epoch_costs: Vec<(u64, f64, f64)>,
    /// Per-epoch channel faults: `(epoch, dropped, duplicated)`,
    /// recorded only for epochs where at least one fault fired.
    pub epoch_faults: Vec<(u64, u64, u64)>,
    /// Times the shard supervisor restarted a shard from its snapshot
    /// (a panic boundary caught a death, or the stuck deadline fired).
    pub shard_restarts: u64,
    /// Records quarantined as poison: each deterministically killed its
    /// shard `poison_threshold` consecutive times and was skipped. They
    /// are included in `records` and every query undercounts by exactly
    /// this many; the typed per-record reports live in
    /// [`crate::supervise::PoisonRecord`].
    pub records_poisoned: u64,
    /// Records that could not be replayed after a restart because they
    /// had already left the bounded replay buffer. Counted into
    /// `records_shed` (they degrade through the same explicit ledger as
    /// guard shedding), and broken out here so operators can tell
    /// replay-buffer overruns from overload.
    pub records_unreplayed: u64,
    /// The subset of `records_shed` stranded by shutdown: feed records
    /// still in flight when a crashed shard's feed closed. Broken out
    /// so the bounds subsystem can attribute each lost record to one
    /// loss class (`records_shed − records_unreplayed −
    /// records_shutdown_lost` is pure guard shedding).
    pub records_shutdown_lost: u64,
    /// The subset of `records_shed` lost because recovery fell back to
    /// an older durable generation (the newest checkpoint was
    /// unreadable) and the replay source could not reach far enough
    /// back to re-feed the gap. Its own loss class in `bounds.rs`, so a
    /// stale checkpoint degrades the guaranteed interval explicitly
    /// instead of going silently stale.
    pub records_stale_lost: u64,
    /// Shed requests the overload guard *denied* because the
    /// [`crate::guard::DegradationPolicy`] loss budget was exhausted —
    /// the records were processed normally, at the cost the ladder
    /// wanted to avoid.
    pub records_shed_denied: u64,
    /// Per-query record mass stranded in a crashed, never-recovered
    /// executor at shutdown (tables, a mid-flush drain, or the HFTA's
    /// open-epoch maps). Its own loss class: unlike `dropped_records`
    /// these losses are certain — nothing downstream ever saw the mass.
    pub abandoned_records: Vec<(AttrSet, u64)>,
    /// Hot-swap transactions committed: the adaptive runtime re-planned
    /// and transplanted this deployment's state into a new feeding
    /// graph at an epoch boundary (see `shard::ShardedExecutor::hot_swap`).
    pub replans_committed: u64,
    /// Hot-swap transactions rolled back: handoff validation failed (or
    /// a rollback was injected) and the deployment kept the old plan.
    pub replans_rolled_back: u64,
    /// The degradation promise was breached: uncontrolled loss pushed
    /// the accounted total past the policy's budget. Latched; merges
    /// with OR so one breached shard flags the whole deployment.
    pub bound_breached: bool,
    /// Cost parameters used.
    pub costs: CostParams,
}

impl RunReport {
    /// Intra-epoch (maintenance) cost `E_m`.
    pub fn intra_cost(&self) -> f64 {
        self.costs.c1 * self.intra_probes as f64 + self.costs.c2 * self.intra_evictions as f64
    }

    /// End-of-epoch (update) cost `E_u`, summed over all epochs.
    pub fn flush_cost(&self) -> f64 {
        self.costs.c1 * self.flush_probes as f64 + self.costs.c2 * self.flush_evictions as f64
    }

    /// Total cost.
    pub fn total_cost(&self) -> f64 {
        self.intra_cost() + self.flush_cost()
    }

    /// Per-record intra-epoch cost `e_m` (Eq. 7's measured counterpart).
    pub fn per_record_cost(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.intra_cost() / self.records as f64
        }
    }

    fn bump(keyed: &mut Vec<(AttrSet, u64)>, query: AttrSet, n: u64) {
        match keyed.iter_mut().find(|(q, _)| *q == query) {
            Some((_, total)) => *total += n,
            None => keyed.push((query, n)),
        }
    }

    /// Record mass `query` lost to dropped evictions.
    pub fn dropped_records_for(&self, query: AttrSet) -> u64 {
        self.dropped_records
            .iter()
            .find(|(q, _)| *q == query)
            .map_or(0, |(_, n)| *n)
    }

    /// Record mass `query` double-counted via duplicated evictions.
    pub fn duplicated_records_for(&self, query: AttrSet) -> u64 {
        self.duplicated_records
            .iter()
            .find(|(q, _)| *q == query)
            .map_or(0, |(_, n)| *n)
    }

    /// Record mass `query` abandoned at shutdown (crashed, unrecovered).
    pub fn abandoned_records_for(&self, query: AttrSet) -> u64 {
        self.abandoned_records
            .iter()
            .find(|(q, _)| *q == query)
            .map_or(0, |(_, n)| *n)
    }

    /// Exact count bias of `query`: `observed_total − true_total`.
    ///
    /// Every processed record contributes one count to every query, so
    /// shedding undercounts each query by `records_shed` and poison
    /// quarantine by `records_poisoned`; channel drops and duplicates
    /// shift the count by the dropped/duplicated record mass, and an
    /// abandoned shutdown by the stranded mass. The identity
    /// `observed = true + count_bias(q)` holds exactly — the chaos
    /// tests assert it per injected event.
    pub fn count_bias(&self, query: AttrSet) -> i64 {
        self.duplicated_records_for(query) as i64
            - self.dropped_records_for(query) as i64
            - self.abandoned_records_for(query) as i64
            - self.records_shed as i64
            - self.records_poisoned as i64
    }

    /// Folds `other` into `self` (an engine retiring one executor of a
    /// multi-executor run, or a sharded run combining per-shard
    /// reports). Epoch numbering is absolute, so `epochs` takes the
    /// maximum; everything else accumulates.
    ///
    /// The merge **commutes**: `A.merge(B)` equals `B.merge(A)` field
    /// for field. Keyed vectors are re-sorted into a canonical order,
    /// per-epoch traces are coalesced by epoch (shards close the same
    /// absolute epochs; sequential executors cover disjoint ones, for
    /// which coalescing is a no-op), and the cost sums rely on IEEE 754
    /// two-operand addition being commutative. Only `costs` is taken
    /// from `self` — merging reports with different cost parameters is
    /// meaningless.
    ///
    /// `other` is destructured exhaustively — no `..` — so adding a
    /// counter field without deciding how it merges is a compile error,
    /// not a silently-unsound bound (the top drift hazard for the
    /// guaranteed intervals `bounds.rs` derives from this ledger).
    pub fn merge(&mut self, other: &RunReport) {
        let RunReport {
            records,
            intra_probes,
            intra_evictions,
            flush_probes,
            flush_evictions,
            epochs,
            filtered_out,
            records_shed,
            evictions_dropped,
            evictions_duplicated,
            dropped_records,
            duplicated_records,
            epochs_degraded,
            guard_transitions,
            epoch_costs,
            epoch_faults,
            shard_restarts,
            records_poisoned,
            records_unreplayed,
            records_shutdown_lost,
            records_stale_lost,
            records_shed_denied,
            abandoned_records,
            replans_committed,
            replans_rolled_back,
            bound_breached,
            costs: _, // kept from `self` by design
        } = other;
        self.records += records;
        self.intra_probes += intra_probes;
        self.intra_evictions += intra_evictions;
        self.flush_probes += flush_probes;
        self.flush_evictions += flush_evictions;
        self.filtered_out += filtered_out;
        self.records_shed += records_shed;
        self.evictions_dropped += evictions_dropped;
        self.evictions_duplicated += evictions_duplicated;
        self.epochs = self.epochs.max(*epochs);
        self.epochs_degraded += epochs_degraded;
        self.shard_restarts += shard_restarts;
        self.records_poisoned += records_poisoned;
        self.records_unreplayed += records_unreplayed;
        self.records_shutdown_lost += records_shutdown_lost;
        self.records_stale_lost += records_stale_lost;
        self.records_shed_denied += records_shed_denied;
        self.replans_committed += replans_committed;
        self.replans_rolled_back += replans_rolled_back;
        self.bound_breached |= bound_breached;
        for &(q, n) in dropped_records {
            RunReport::bump(&mut self.dropped_records, q, n);
        }
        for &(q, n) in duplicated_records {
            RunReport::bump(&mut self.duplicated_records, q, n);
        }
        for &(q, n) in abandoned_records {
            RunReport::bump(&mut self.abandoned_records, q, n);
        }
        self.dropped_records.sort_by_key(|(q, _)| q.bits());
        self.duplicated_records.sort_by_key(|(q, _)| q.bits());
        self.abandoned_records.sort_by_key(|(q, _)| q.bits());
        self.guard_transitions
            .extend(guard_transitions.iter().copied());
        self.guard_transitions.sort_by_key(|t| {
            (
                t.epoch,
                t.from.index(),
                t.to.index(),
                t.observed_cost.to_bits(),
            )
        });
        for &(e, intra, flush) in epoch_costs {
            match self.epoch_costs.iter_mut().find(|(e2, _, _)| *e2 == e) {
                Some((_, i2, f2)) => {
                    *i2 += intra;
                    *f2 += flush;
                }
                None => self.epoch_costs.push((e, intra, flush)),
            }
        }
        self.epoch_costs.sort_by_key(|&(e, _, _)| e);
        for &(e, dropped, duplicated) in epoch_faults {
            match self.epoch_faults.iter_mut().find(|(e2, _, _)| *e2 == e) {
                Some((_, d2, u2)) => {
                    *d2 += dropped;
                    *u2 += duplicated;
                }
                None => self.epoch_faults.push((e, dropped, duplicated)),
            }
        }
        self.epoch_faults.sort_by_key(|&(e, _, _)| e);
    }
}

/// A reusable recipe for building identically configured [`Executor`]s.
///
/// The sharded runtime needs to construct the same executor shape many
/// times — once per shard, and again from scratch when a crashed shard
/// is recovered — so the builder-chain configuration is reified into a
/// plain value that can be cloned, adjusted per shard (plan split,
/// derived seeds, scaled guard budget) and turned into a live executor
/// on demand.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// The physical plan to instantiate.
    pub plan: PhysicalPlan,
    /// Cost parameters for the report.
    pub costs: CostParams,
    /// Epoch length in microseconds (`u64::MAX` for one open epoch).
    pub epoch_micros: u64,
    /// Hash-seed base.
    pub seed: u64,
    /// Metric-value source for SUM/MIN/MAX/AVG aggregates.
    pub value_source: ValueSource,
    /// Selection filter applied ahead of all probes.
    pub filter: Filter,
    /// Channel-level fault injection, if any.
    pub faults: Option<FaultPlan>,
    /// Overload-guard policy, if enabled.
    pub guard: Option<GuardPolicy>,
    /// Enable the write-ahead eviction log plus boundary checkpoints.
    pub durable: bool,
    /// Armed crash fuses.
    pub crash: CrashPlan,
}

impl ExecutorConfig {
    /// A config with the same defaults as [`Executor::new`].
    pub fn new(
        plan: PhysicalPlan,
        costs: CostParams,
        epoch_micros: u64,
        seed: u64,
    ) -> ExecutorConfig {
        ExecutorConfig {
            plan,
            costs,
            epoch_micros,
            seed,
            value_source: ValueSource::None,
            filter: Filter::all(),
            faults: None,
            guard: None,
            durable: false,
            crash: CrashPlan::none(),
        }
    }

    /// Builds a fresh executor from this recipe.
    pub fn build(&self) -> Executor {
        let mut ex = Executor::new(self.plan.clone(), self.costs, self.epoch_micros, self.seed)
            .with_value_source(self.value_source)
            .with_filter(self.filter.clone());
        if let Some(faults) = &self.faults {
            ex = ex.with_faults(faults);
        }
        if let Some(policy) = self.guard {
            ex = ex.with_guard(policy);
        }
        if self.durable {
            ex = ex.with_eviction_log().with_snapshots();
        }
        if !self.crash.is_none() {
            ex = ex.with_crash(self.crash);
        }
        ex
    }
}

/// Streams records through a [`PhysicalPlan`], maintaining the LFTA
/// tables and the HFTA combiner, and accounting every cost.
#[derive(Clone, Debug)]
pub struct Executor {
    plan: PhysicalPlan,
    tables: Vec<LftaTable>,
    children: Vec<Vec<usize>>,
    raw: Vec<usize>,
    /// Indices of query nodes (the phantom-bypass targets).
    query_nodes: Vec<usize>,
    /// HFTA query slot per node (`None` for phantoms).
    query_slot: Vec<Option<usize>>,
    /// Query attribute set per HFTA slot.
    queries: Vec<AttrSet>,
    hfta: Hfta,
    channel: EvictionChannel,
    guard: Option<OverloadGuard>,
    epoch_micros: u64,
    current_epoch: u64,
    /// Cost/fault counters at the previous epoch boundary, for the
    /// per-epoch deltas the guard and the report's traces consume.
    intra_cost_mark: f64,
    flush_cost_mark: f64,
    dropped_mark: u64,
    duplicated_mark: u64,
    in_flush: bool,
    value_source: ValueSource,
    filter: Filter,
    report: RunReport,
    /// Hash-seed base (kept for the recovery fingerprint).
    seed: u64,
    /// Delivery-sequence counter: one per channel delivery event
    /// (`Delivered` or `Duplicated`; drops consume no number).
    seq: u64,
    /// Deliveries with `seq ≤ dedup_until` already reached the HFTA
    /// before a crash (via the replayed log); re-processing skips their
    /// HFTA application and log append — the exactly-once rule.
    dedup_until: u64,
    /// Write-ahead eviction log, when durability is enabled.
    wal: Option<EvictionLog>,
    /// Take a checkpoint at every epoch boundary.
    auto_snapshot: bool,
    /// The most recent boundary checkpoint (the durable one a crash
    /// leaves behind).
    latest_snapshot: Option<Box<Snapshot>>,
    /// Armed crash fuses.
    crash: CrashPlan,
    /// A fuse fired: the executor is inert (simulated dead process).
    crashed: bool,
    /// Generational checkpoint store, when real durability is wired in:
    /// boundary checkpoints commit here and WAL appends mirror here.
    store: Option<StoreHandle>,
    /// A store operation failed past its retry budget: stop writing,
    /// keep running on in-memory artifacts (graceful degradation — a
    /// later recovery falls back to the last committed generation and
    /// accounts the gap explicitly).
    store_broken: bool,
}

impl Executor {
    /// Creates an executor over `plan` with epoch length `epoch_micros`
    /// (use `u64::MAX` for a single open-ended epoch) and hash seed
    /// `seed`.
    pub fn new(plan: PhysicalPlan, costs: CostParams, epoch_micros: u64, seed: u64) -> Executor {
        let n = plan.nodes().len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in plan.nodes().iter().enumerate() {
            if let Some(kids) = node.parent.and_then(|p| children.get_mut(p)) {
                kids.push(i);
            }
        }
        let raw: Vec<usize> = plan.raw_nodes().collect();
        let tables: Vec<LftaTable> = plan
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, node)| LftaTable::new(node.attrs, node.buckets, mix64(seed ^ i as u64)))
            .collect();
        let mut query_slot = vec![None; n];
        let mut query_nodes = Vec::new();
        let mut queries = Vec::new();
        for (i, node) in plan.nodes().iter().enumerate() {
            if node.is_query {
                if let Some(slot) = query_slot.get_mut(i) {
                    *slot = Some(queries.len());
                }
                query_nodes.push(i);
                queries.push(node.attrs);
            }
        }
        Executor {
            plan,
            tables,
            children,
            raw,
            query_nodes,
            query_slot,
            hfta: Hfta::new(queries.clone()),
            queries,
            channel: EvictionChannel::lossless(),
            guard: None,
            epoch_micros: epoch_micros.max(1),
            current_epoch: 0,
            intra_cost_mark: 0.0,
            flush_cost_mark: 0.0,
            dropped_mark: 0,
            duplicated_mark: 0,
            in_flush: false,
            value_source: ValueSource::None,
            filter: Filter::all(),
            report: RunReport {
                costs,
                ..RunReport::default()
            },
            seed,
            seq: 0,
            dedup_until: 0,
            wal: None,
            auto_snapshot: false,
            latest_snapshot: None,
            crash: CrashPlan::none(),
            crashed: false,
            store: None,
            store_broken: false,
        }
    }

    /// Disables HFTA result retention (pure cost-measurement runs).
    pub fn discard_results(mut self) -> Executor {
        self.hfta = std::mem::take(&mut self.hfta).discard_results();
        self
    }

    /// Sets the metric-value source for SUM/MIN/MAX/AVG aggregates.
    pub fn with_value_source(mut self, source: ValueSource) -> Executor {
        self.value_source = source;
        self
    }

    /// Installs a selection filter, evaluated per record ahead of all
    /// hash-table probes (the "F" of LFTA).
    pub fn with_filter(mut self, filter: Filter) -> Executor {
        self.filter = filter;
        self
    }

    /// Replaces the LFTA → HFTA hand-off with `channel` (bounded and/or
    /// fault-injecting).
    pub fn with_channel(mut self, channel: EvictionChannel) -> Executor {
        self.channel = channel;
        self
    }

    /// Wires the channel-level faults of `plan` into the executor.
    /// Stream-level faults (bursts, clock skew) must be applied to the
    /// record stream first via [`FaultPlan::apply_to_stream`].
    pub fn with_faults(mut self, plan: &FaultPlan) -> Executor {
        self.channel = EvictionChannel::new(plan.channel_faults(), plan.seed);
        self
    }

    /// Enables the overload guard under `policy`.
    pub fn with_guard(mut self, policy: GuardPolicy) -> Executor {
        self.guard = Some(OverloadGuard::new(policy));
        self
    }

    /// Installs an existing guard (state transplant across executor
    /// rebuilds — the engine preserves escalation history when it swaps
    /// allocations).
    pub fn with_guard_state(mut self, guard: OverloadGuard) -> Executor {
        self.guard = Some(guard);
        self
    }

    /// Starts epoch numbering at `epoch` instead of 0 (an engine
    /// swapping executors mid-stream keeps absolute epoch labels and
    /// avoids a storm of empty catch-up flushes).
    pub fn with_start_epoch(mut self, epoch: u64) -> Executor {
        self.current_epoch = epoch;
        self.hfta.set_epoch(epoch);
        self
    }

    /// Enables the write-ahead eviction log: every LFTA → HFTA delivery
    /// is logged (with its sequence number and delivered copy count)
    /// *before* the HFTA applies it, so a crash can replay the open
    /// epoch's deliveries exactly once.
    pub fn with_eviction_log(mut self) -> Executor {
        self.wal = Some(EvictionLog::new());
        self
    }

    /// Enables automatic checkpoints: a [`Snapshot`] is captured at
    /// every epoch boundary (and once lazily before the first record),
    /// and the write-ahead log is truncated to the entries the latest
    /// checkpoint does not already cover.
    pub fn with_snapshots(mut self) -> Executor {
        self.auto_snapshot = true;
        self
    }

    /// Attaches a generational checkpoint store: boundary checkpoints
    /// commit to it (atomically, behind the A/B manifest) and every WAL
    /// append mirrors into its current generation's segments. Implies
    /// [`Executor::with_eviction_log`] and [`Executor::with_snapshots`];
    /// on an executor that just [`Executor::recover`]ed, the replayed
    /// log is kept. Store failures never panic the pipeline: past the
    /// retry budget the executor latches [`Executor::store_degraded`]
    /// and continues on in-memory artifacts.
    pub fn with_store(mut self, store: StoreHandle) -> Executor {
        if self.wal.is_none() {
            self.wal = Some(EvictionLog::new());
        }
        self.auto_snapshot = true;
        self.store = Some(store);
        self.store_broken = false;
        self
    }

    /// The attached checkpoint store, if any (shard drivers clone this
    /// so restarts recover from durable generations).
    pub fn store_handle(&self) -> Option<StoreHandle> {
        self.store.clone()
    }

    /// True once a store operation failed past its retry budget and the
    /// executor fell back to in-memory artifacts only.
    pub fn store_degraded(&self) -> bool {
        self.store_broken
    }

    /// Arms crash fuses (see [`CrashPlan`]). When a fuse fires the
    /// executor becomes inert, exactly as if the process died: no
    /// farewell flush, no final snapshot — only the durable artifacts
    /// remain (see [`Executor::durable_state`]).
    pub fn with_crash(mut self, crash: CrashPlan) -> Executor {
        self.crash = crash;
        self
    }

    /// The overload guard, if enabled.
    pub fn guard(&self) -> Option<&OverloadGuard> {
        self.guard.as_ref()
    }

    /// Whether the guard has an unconsumed repair request.
    pub fn repair_pending(&self) -> bool {
        self.guard.as_ref().is_some_and(|g| g.repair_requested())
    }

    /// Consumes a pending repair request (see
    /// [`OverloadGuard::take_repair_request`]).
    pub fn take_repair_request(&mut self) -> bool {
        self.guard.as_mut().is_some_and(|g| g.take_repair_request())
    }

    /// Cumulative eviction-channel accounting.
    pub fn channel_stats(&self) -> &ChannelStats {
        self.channel.stats()
    }

    /// The plan being executed.
    pub fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    /// Query attribute sets in HFTA slot order.
    pub fn queries(&self) -> &[AttrSet] {
        &self.queries
    }

    /// Per-table statistics `(relation, stats)` in plan order.
    pub fn table_stats(&self) -> Vec<(AttrSet, TableStats)> {
        self.tables.iter().map(|t| (t.attrs(), t.stats())).collect()
    }

    /// Pushes `(key, count)` into node `i`'s table and cascades any
    /// eviction.
    fn push(&mut self, i: usize, key: GroupKey, agg: AggState) {
        if self.crashed {
            return;
        }
        if self.in_flush {
            self.report.flush_probes += 1;
        } else {
            self.report.intra_probes += 1;
        }
        let Some(table) = self.tables.get_mut(i) else {
            return;
        };
        if let Probe::Evicted(old) = table.probe(key, agg) {
            self.emit(i, old.key, old.agg);
        }
    }

    /// Applies one channel delivery event to the HFTA under the
    /// exactly-once rule: the event gets the next sequence number; if it
    /// is new (past the replayed-log high-water mark) it is logged
    /// write-ahead and applied, otherwise the replay already applied it
    /// and only the sequence counter advances.
    fn deliver(&mut self, slot: usize, key: GroupKey, agg: AggState, copies: u8) {
        self.seq += 1;
        if self.seq <= self.dedup_until {
            return;
        }
        if let Some(wal) = &mut self.wal {
            let entry = LogEntry {
                epoch: self.current_epoch,
                seq: self.seq,
                slot: slot as u32,
                copies,
                key,
                agg,
            };
            wal.append(entry);
            if !self.store_broken {
                if let Some(store) = &self.store {
                    if store.append_entry(&entry).is_err() {
                        self.store_broken = true;
                    }
                }
            }
        }
        for _ in 0..copies {
            self.hfta.receive(slot, key, agg);
        }
    }

    /// Commits a boundary checkpoint to the attached store, degrading
    /// (never panicking) past the retry budget: the run continues on
    /// in-memory artifacts and recovery falls back to the last good
    /// generation with the gap accounted as stale-fallback loss.
    fn store_commit(&mut self, snap: &Snapshot) {
        if self.store_broken {
            return;
        }
        if let Some(store) = &self.store {
            if store.commit(snap).is_err() {
                self.store_broken = true;
            }
        }
    }

    /// Persists the current boundary state to the attached store as the
    /// durable commit of a hot-swap handoff. Unlike the run-time hooks
    /// this *surfaces* the failure instead of latching degraded: the
    /// swap transaction must roll back when its commit cannot be made
    /// durable. A no-op `Ok` without a store.
    pub(crate) fn commit_handoff(&mut self) -> Result<(), msa_stream::store::StoreError> {
        let Some(store) = self.store.clone() else {
            return Ok(());
        };
        let snap = self.make_snapshot();
        store.commit(&snap)?;
        self.latest_snapshot = Some(Box::new(snap));
        Ok(())
    }

    /// Routes an entry leaving node `i` (eviction or flush scan) to the
    /// HFTA and/or the node's children. The HFTA hop goes through the
    /// eviction channel, which may drop or duplicate the entry; either
    /// way the report accounts the exact record mass affected.
    fn emit(&mut self, i: usize, key: GroupKey, agg: AggState) {
        if self.crashed {
            return;
        }
        if let Some(slot) = self.query_slot.get(i).copied().flatten() {
            // Crash fuse: dies right before offer `after_offers + 1`
            // (offers are counted by the eviction totals, so a fuse
            // between two boundary counts lands mid-flush).
            if let Some(n) = self.crash.after_offers {
                if self.report.intra_evictions + self.report.flush_evictions >= n {
                    self.crashed = true;
                    return;
                }
            }
            // The transfer attempt costs `c2` whatever its fate.
            if self.in_flush {
                self.report.flush_evictions += 1;
            } else {
                self.report.intra_evictions += 1;
            }
            let query = self.queries.get(slot).copied().unwrap_or(AttrSet::EMPTY);
            match self.channel.offer() {
                Delivery::Delivered => self.deliver(slot, key, agg, 1),
                Delivery::Duplicated => {
                    self.deliver(slot, key, agg, 2);
                    self.report.evictions_duplicated += 1;
                    RunReport::bump(&mut self.report.duplicated_records, query, agg.count);
                    // Uncontrolled overcount: it widens the guaranteed
                    // interval, so it draws down the degradation budget.
                    if let Some(g) = &mut self.guard {
                        g.account_loss(agg.count);
                    }
                }
                Delivery::Dropped => {
                    self.report.evictions_dropped += 1;
                    RunReport::bump(&mut self.report.dropped_records, query, agg.count);
                    // Uncontrolled undercount, same budget accounting.
                    if let Some(g) = &mut self.guard {
                        g.account_loss(agg.count);
                    }
                }
            }
        }
        // At level ≥ 2 raw records probe the query tables directly, so a
        // query occupant cascading into a child query would be counted
        // twice; the guard switches levels only at epoch boundaries
        // (tables empty), so suppressing the cascade keeps counts exact.
        if self.guard.as_ref().is_some_and(|g| g.phantoms_disabled()) {
            return;
        }
        let Some(own) = self.plan.nodes().get(i).map(|n| n.attrs) else {
            return;
        };
        // Children are few; clone the index list to appease the borrow
        // checker without restructuring the hot path.
        let kids = self.children.get(i).cloned().unwrap_or_default();
        for c in kids {
            let Some(child_attrs) = self.plan.nodes().get(c).map(|n| n.attrs) else {
                continue;
            };
            let child_key = key.reproject(own, child_attrs);
            self.push(c, child_key, agg);
        }
    }

    /// Processes one record, closing epochs as its timestamp dictates.
    #[inline]
    pub fn process(&mut self, record: &Record) {
        if self.crashed {
            return;
        }
        // Genesis checkpoint: before the first record everything is at
        // an epoch boundary by construction, so a crash ahead of the
        // first real boundary still has something to recover from.
        if self.auto_snapshot && self.latest_snapshot.is_none() {
            let snap = self.make_snapshot();
            self.store_commit(&snap);
            self.latest_snapshot = Some(Box::new(snap));
        }
        // Crash fuse: dies before processing record `at_record`.
        if let Some(n) = self.crash.at_record {
            if self.report.records >= n {
                self.crashed = true;
                return;
            }
        }
        while record.ts_micros >= (self.current_epoch + 1).saturating_mul(self.epoch_micros) {
            self.flush_epoch();
            if self.crashed {
                return;
            }
        }
        self.report.records += 1;
        if !self.filter.matches(record) {
            self.report.filtered_out += 1;
            return;
        }
        let mut phantoms_off = false;
        if let Some(g) = &mut self.guard {
            match g.shed_decision() {
                ShedDecision::Shed => {
                    // A controlled loss: the guard meters it against the
                    // degradation budget so the promised bound holds.
                    g.account_loss(1);
                    self.report.records_shed += 1;
                    return;
                }
                ShedDecision::Denied => {
                    // Budget exhausted: process the record anyway and
                    // count the denial for the operator.
                    self.report.records_shed_denied += 1;
                }
                ShedDecision::Process => {}
            }
            phantoms_off = g.phantoms_disabled();
        }
        let agg = self.value_source.extract(record);
        // At level ≥ 2 the record probes every query table directly
        // (phantom maintenance off); otherwise it probes the raw nodes
        // and evictions cascade as usual.
        let n = if phantoms_off {
            self.query_nodes.len()
        } else {
            self.raw.len()
        };
        for idx in 0..n {
            let node = if phantoms_off {
                self.query_nodes.get(idx)
            } else {
                self.raw.get(idx)
            };
            let Some(&node) = node else { continue };
            let Some(attrs) = self.plan.nodes().get(node).map(|n| n.attrs) else {
                continue;
            };
            let key = record.project(attrs);
            self.push(node, key, agg);
        }
    }

    /// Processes a batch of records (stops early if a crash fuse fires).
    pub fn run(&mut self, records: &[Record]) {
        for r in records {
            if self.crashed {
                break;
            }
            self.process(r);
        }
    }

    /// Processes a columnar chunk, bit-identical to calling
    /// [`Executor::process`] on every lane in order.
    ///
    /// The chunk is cut into *epoch segments* — maximal lane runs whose
    /// timestamps fall inside the current epoch — and each segment goes
    /// through three passes:
    ///
    /// 1. **pack**: group keys for every `(node, lane)` pair are
    ///    projected column-at-a-time ([`RecordChunk::project_range`])
    ///    and their bucket slots precomputed ([`LftaTable::slot_of`]) —
    ///    pure work, hoisted out of the stateful loop;
    /// 2. **warm**: the precomputed slots are touched branch-free
    ///    ([`LftaTable::warm_slot`]), so the independent bucket loads
    ///    overlap instead of serializing behind each probe;
    /// 3. **apply**: a record-major loop replays the *exact* scalar
    ///    op sequence — shed decisions, probes, evictions, channel
    ///    offers, WAL appends — so every PRNG draw and sequence number
    ///    lands in the same order as the scalar oracle.
    ///
    /// Guard-level and node-set reads are hoisted per segment (the
    /// guard changes level only at epoch boundaries), and the
    /// `records`/`intra_probes` counters are accumulated locally and
    /// flushed at segment boundaries — before any epoch flush,
    /// checkpoint, or return observes the report.
    pub fn offer_chunk(&mut self, chunk: &RecordChunk) {
        let mut nodes: Vec<usize> = Vec::new();
        let mut keys: Vec<GroupKey> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        let mut i = 0usize;
        while i < chunk.len() {
            if self.crashed {
                return;
            }
            if self.auto_snapshot && self.latest_snapshot.is_none() {
                let snap = self.make_snapshot();
                self.store_commit(&snap);
                self.latest_snapshot = Some(Box::new(snap));
            }
            // Crash fuse first, then epoch flushes: the scalar path
            // checks `at_record` *before* closing epochs.
            if let Some(n) = self.crash.at_record {
                if self.report.records >= n {
                    self.crashed = true;
                    return;
                }
            }
            let Some(&ts) = chunk.timestamps().get(i) else {
                return;
            };
            while ts >= (self.current_epoch + 1).saturating_mul(self.epoch_micros) {
                self.flush_epoch();
                if self.crashed {
                    return;
                }
            }
            // Extend the segment over every following lane that stays
            // inside the now-current epoch.
            let boundary = (self.current_epoch + 1).saturating_mul(self.epoch_micros);
            let mut j = i + 1;
            while chunk.timestamps().get(j).is_some_and(|&t| t < boundary) {
                j += 1;
            }
            self.apply_segment(chunk, i, j, &mut nodes, &mut keys, &mut slots);
            if self.crashed {
                return;
            }
            i = j;
        }
    }

    /// Feeds `records` through [`Executor::offer_chunk`] in chunks of
    /// `chunk_size` lanes (the chunked analogue of [`Executor::run`]).
    pub fn run_chunked(&mut self, records: &[Record], chunk_size: usize) {
        for batch in records.chunks(chunk_size.max(1)) {
            if self.crashed {
                break;
            }
            self.offer_chunk(&RecordChunk::from_records(batch));
        }
    }

    /// Applies lanes `[from, to)` of `chunk` — all inside the current
    /// epoch — with packed keys, precomputed slots and a warmed cache.
    fn apply_segment(
        &mut self,
        chunk: &RecordChunk,
        from: usize,
        to: usize,
        nodes: &mut Vec<usize>,
        keys: &mut Vec<GroupKey>,
        slots: &mut Vec<usize>,
    ) {
        let seg = to.saturating_sub(from);
        if seg == 0 {
            return;
        }
        // The guard escalates/recovers only inside `observe_epoch`
        // (called from `flush_epoch`), so the phantom-bypass level —
        // and with it the active node set — is constant across the
        // segment. Shed decisions still run per record below.
        let phantoms_off = self.guard.as_ref().is_some_and(|g| g.phantoms_disabled());
        let active = if phantoms_off {
            self.query_nodes.len()
        } else {
            self.raw.len()
        };
        // Pass 1 — pack: keys and bucket slots for every (node, lane).
        // Nodes without a plan entry are excluded here, exactly as the
        // scalar path skips them before counting a probe.
        nodes.clear();
        keys.clear();
        slots.clear();
        for nidx in 0..active {
            let node = if phantoms_off {
                self.query_nodes.get(nidx)
            } else {
                self.raw.get(nidx)
            };
            let Some(&node) = node else { continue };
            let Some(attrs) = self.plan.nodes().get(node).map(|n| n.attrs) else {
                continue;
            };
            nodes.push(node);
            chunk.project_range(attrs, from, to, keys);
            let packed = keys.len().saturating_sub(seg);
            if let Some(table) = self.tables.get(node) {
                for key in keys.get(packed..).unwrap_or(&[]) {
                    slots.push(table.slot_of(key));
                }
            } else {
                slots.resize(keys.len(), 0);
            }
        }
        // Passes 2+3 — warm, then apply, a block of lanes at a time.
        // Warming the whole segment up front would touch more lines
        // than L1/L2 hold, evicting the early nodes' slots before the
        // apply loop reaches them; a block's worth of independent loads
        // still overlaps fully but stays resident.
        let fuse = self.crash.at_record;
        let pass_all = self.filter.is_pass_all();
        let records_base = self.report.records;
        let mut local_records = 0u64;
        let mut local_probes = 0u64;
        // With no crash fuse armed, no guard, a pass-all filter and
        // unit aggregation, per-lane work reduces to the probes alone:
        // nothing in `emit` can crash the executor or consult the
        // report mid-segment, so the per-lane checks below hoist out
        // entirely. Every test cell that arms any of those features
        // takes the general loop, whose op order is the contract.
        let fast = fuse.is_none()
            && self.crash.after_offers.is_none()
            && self.guard.is_none()
            && pass_all
            && matches!(self.value_source, ValueSource::None);
        const WARM_BLOCK: usize = 32;
        let mut block = 0usize;
        while block < seg && !self.crashed {
            let block_end = (block + WARM_BLOCK).min(seg);
            for (nidx, &node) in nodes.iter().enumerate() {
                let Some(table) = self.tables.get(node) else {
                    continue;
                };
                let base = nidx * seg;
                for &slot in slots.get(base + block..base + block_end).unwrap_or(&[]) {
                    table.warm_slot(slot);
                }
            }
            if fast {
                for lane in block..block_end {
                    for (nidx, &node) in nodes.iter().enumerate() {
                        let at = nidx * seg + lane;
                        let (Some(&key), Some(&slot)) = (keys.get(at), slots.get(at)) else {
                            continue;
                        };
                        local_probes += 1;
                        let probe = match self.tables.get_mut(node) {
                            Some(table) => table.probe_at(slot, key, AggState::unit()),
                            None => continue,
                        };
                        if let Probe::Evicted(old) = probe {
                            self.emit(node, old.key, old.agg);
                        }
                    }
                }
                local_records += (block_end - block) as u64;
                block = block_end;
                continue;
            }
            for lane in block..block_end {
                if let Some(n) = fuse {
                    if records_base + local_records >= n {
                        self.crashed = true;
                        break;
                    }
                }
                local_records += 1;
                if !pass_all {
                    let Some(record) = chunk.get(from + lane) else {
                        continue;
                    };
                    if !self.filter.matches(&record) {
                        self.report.filtered_out += 1;
                        continue;
                    }
                }
                if let Some(g) = &mut self.guard {
                    match g.shed_decision() {
                        ShedDecision::Shed => {
                            g.account_loss(1);
                            self.report.records_shed += 1;
                            continue;
                        }
                        ShedDecision::Denied => {
                            self.report.records_shed_denied += 1;
                        }
                        ShedDecision::Process => {}
                    }
                }
                let agg = match self.value_source {
                    ValueSource::None => AggState::unit(),
                    ValueSource::Attr(a) => AggState::from_value(
                        chunk
                            .column(a as usize)
                            .get(from + lane)
                            .copied()
                            .unwrap_or(0),
                    ),
                };
                for (nidx, &node) in nodes.iter().enumerate() {
                    // An emit may fire a crash fuse mid-record; the scalar
                    // `push` no-ops once crashed, counting nothing.
                    if self.crashed {
                        break;
                    }
                    let at = nidx * seg + lane;
                    let (Some(&key), Some(&slot)) = (keys.get(at), slots.get(at)) else {
                        continue;
                    };
                    local_probes += 1;
                    let probe = match self.tables.get_mut(node) {
                        Some(table) => table.probe_at(slot, key, agg),
                        None => continue,
                    };
                    if let Probe::Evicted(old) = probe {
                        self.emit(node, old.key, old.agg);
                    }
                }
                if self.crashed {
                    break;
                }
            }
            block = block_end;
        }
        // Flush the amortized counters before anything — epoch close,
        // checkpoint, caller — reads the report.
        self.report.records += local_records;
        self.report.intra_probes += local_probes;
    }

    /// Closes the current epoch: scans tables top-down, propagating every
    /// entry to the children and finally evicting query contents to the
    /// HFTA (§3.2.2).
    pub fn flush_epoch(&mut self) {
        if self.crashed {
            return;
        }
        self.in_flush = true;
        for i in 0..self.tables.len() {
            let Some(table) = self.tables.get_mut(i) else {
                continue;
            };
            let entries = table.drain();
            for e in entries {
                self.emit(i, e.key, e.agg);
                if self.crashed {
                    // Died mid-flush: the epoch never closes; the rest
                    // of the drained entries vanish with the process.
                    return;
                }
            }
        }
        self.in_flush = false;
        self.hfta.close_epoch();
        self.channel.end_epoch();
        let closed = self.current_epoch;
        self.current_epoch += 1;
        // Absolute count (equals the increment when starting at epoch 0;
        // see `with_start_epoch`).
        self.report.epochs = self.current_epoch;
        // Per-epoch deltas for the traces and the guard.
        let epoch_intra = self.report.intra_cost() - self.intra_cost_mark;
        let epoch_flush = self.report.flush_cost() - self.flush_cost_mark;
        self.intra_cost_mark = self.report.intra_cost();
        self.flush_cost_mark = self.report.flush_cost();
        self.report
            .epoch_costs
            .push((closed, epoch_intra, epoch_flush));
        let dropped = self.report.evictions_dropped - self.dropped_mark;
        let duplicated = self.report.evictions_duplicated - self.duplicated_mark;
        self.dropped_mark = self.report.evictions_dropped;
        self.duplicated_mark = self.report.evictions_duplicated;
        if dropped > 0 || duplicated > 0 {
            self.report.epoch_faults.push((closed, dropped, duplicated));
        }
        if let Some(g) = &mut self.guard {
            // The guard judges the epoch's *total* cost — a rate burst
            // shows up in the intra term, a group explosion in the flush
            // term; both are work the LFTA must absorb per epoch.
            if let Some(t) = g.observe_epoch(self.current_epoch, epoch_intra + epoch_flush) {
                self.report.guard_transitions.push(t);
            }
            if g.level() != GuardLevel::Normal {
                self.report.epochs_degraded += 1;
            }
            // Publish a latched budget breach at the boundary, before
            // the checkpoint below captures the report.
            if g.bound_breached() {
                self.report.bound_breached = true;
            }
        }
        if self.auto_snapshot {
            let snap = self.make_snapshot();
            if let Some(wal) = &mut self.wal {
                // Checkpoint truncation: the snapshot covers every
                // delivery up to `snap.seq`, so only the (empty, at a
                // boundary) suffix needs to stay durable.
                *wal = EvictionLog::from_entries(wal.suffix(snap.seq).copied().collect());
            }
            self.store_commit(&snap);
            self.latest_snapshot = Some(Box::new(snap));
        }
    }

    fn fingerprint(&self) -> u64 {
        plan_fingerprint(
            &self.plan,
            self.seed,
            self.epoch_micros,
            self.report.costs,
            self.value_source,
        )
    }

    /// Captures the boundary state (caller guarantees alignment).
    fn make_snapshot(&self) -> Snapshot {
        debug_assert!(
            self.tables.iter().all(|t| t.occupied() == 0) && self.hfta.in_flight() == 0,
            "checkpoints are epoch-aligned"
        );
        Snapshot {
            plan_fingerprint: self.fingerprint(),
            epoch: self.current_epoch,
            seq: self.seq,
            records_hwm: self.report.records,
            channel: self.channel.export_state(),
            guard: self.guard.as_ref().map(|g| g.export_state()),
            tables: self.tables.iter().map(|t| t.stats()).collect(),
            hfta: self.hfta.export_state(),
            report: self.report.clone(),
            intra_cost_mark: self.intra_cost_mark,
            flush_cost_mark: self.flush_cost_mark,
            dropped_mark: self.dropped_mark,
            duplicated_mark: self.duplicated_mark,
        }
    }

    /// Captures a checkpoint now. Snapshots are epoch-aligned: at a
    /// boundary every LFTA table has just been drained and the HFTA's
    /// combining maps are empty, so the state reduces to counters,
    /// finished results and PRNG cursors. Mid-epoch captures are
    /// refused with [`SnapshotError::EpochUnaligned`].
    pub fn snapshot(&self) -> Result<Snapshot, SnapshotError> {
        if self.tables.iter().any(|t| t.occupied() > 0) || self.hfta.in_flight() > 0 {
            return Err(SnapshotError::EpochUnaligned);
        }
        Ok(self.make_snapshot())
    }

    /// The most recent boundary checkpoint (see
    /// [`Executor::with_snapshots`]).
    pub fn latest_snapshot(&self) -> Option<&Snapshot> {
        self.latest_snapshot.as_deref()
    }

    /// The write-ahead eviction log (see
    /// [`Executor::with_eviction_log`]).
    pub fn eviction_log(&self) -> Option<&EvictionLog> {
        self.wal.as_ref()
    }

    /// True once a crash fuse has fired; the executor is then inert.
    pub fn has_crashed(&self) -> bool {
        self.crashed
    }

    /// Supervisor hook: counts one supervised restart of this shard
    /// (a panic boundary caught a death, or the stuck deadline fired).
    pub(crate) fn note_restart(&mut self) {
        self.report.shard_restarts += 1;
    }

    /// Supervisor hook: a poison record was quarantined instead of
    /// processed. It counts as seen, and every query undercounts by
    /// exactly one — `count_bias` carries the correction.
    pub(crate) fn absorb_poisoned(&mut self) {
        self.report.records += 1;
        self.report.records_poisoned += 1;
        if let Some(g) = &mut self.guard {
            g.account_loss(1);
        }
    }

    /// Supervisor hook: `n` feed records could not be replayed after a
    /// restart because the bounded replay buffer had already evicted
    /// them. They degrade through the same explicit ledger as overload
    /// shedding (seen, shed, bias-corrected), broken out as
    /// `records_unreplayed` so operators can tell buffer overruns from
    /// guard pressure.
    pub(crate) fn absorb_replay_gap(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.report.records += n;
        self.report.records_shed += n;
        self.report.records_unreplayed += n;
        self.channel.account_shutdown_loss(n);
        if let Some(g) = &mut self.guard {
            g.account_loss(n);
        }
    }

    /// Shutdown hook: `n` records were still in flight on this shard's
    /// feed when it closed (the shard had crashed and nobody drained
    /// them). They are counted into the shed/bias ledger — never
    /// silently dropped — and tallied on the channel's shutdown stat.
    pub(crate) fn absorb_shutdown_loss(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.report.records += n;
        self.report.records_shed += n;
        self.report.records_shutdown_lost += n;
        self.channel.account_shutdown_loss(n);
        if let Some(g) = &mut self.guard {
            g.account_loss(n);
        }
    }

    /// Supervisor hook: `n` feed records were lost because recovery
    /// fell back to an older durable generation (the newest checkpoint
    /// or its WAL was unreadable) and the bounded replay buffer could
    /// not reach back to the fallback's record high-water mark. Same
    /// explicit shed/bias ledger as a replay gap, broken out as
    /// `records_stale_lost` so operators can tell storage rot from
    /// buffer overruns.
    pub(crate) fn absorb_stale_loss(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.report.records += n;
        self.report.records_shed += n;
        self.report.records_stale_lost += n;
        self.channel.account_shutdown_loss(n);
        if let Some(g) = &mut self.guard {
            g.account_loss(n);
        }
    }

    /// A crash fuse fired and nobody recovered this executor before
    /// `finish`: the record mass still sitting in its LFTA tables,
    /// drained mid-flush, or parked in the HFTA's open-epoch combining
    /// maps will never reach a finished result. Account it into the
    /// per-query abandonment ledger exactly, so `observed = true +
    /// count_bias(q)` keeps holding on an abandoned deployment instead
    /// of silently undercounting — and the bounds subsystem can report
    /// the stranded mass as its own loss class.
    fn account_abandonment(&mut self) {
        if !self.hfta.retains_results() {
            return;
        }
        let processed = self.report.records
            - self.report.filtered_out
            - self.report.records_shed
            - self.report.records_poisoned;
        let mut total_stranded = 0u64;
        for &q in &self.queries {
            let observed: u64 = self.hfta.totals(q).values().sum();
            // Every processed record owes one count to `q`; what was
            // neither finished nor already ledgered as dropped or
            // abandoned is stranded in a table or an open epoch.
            let expected = processed + self.report.duplicated_records_for(q);
            let reachable = observed
                + self.report.dropped_records_for(q)
                + self.report.abandoned_records_for(q);
            let stranded = expected.saturating_sub(reachable);
            if stranded > 0 {
                RunReport::bump(&mut self.report.abandoned_records, q, stranded);
                total_stranded += stranded;
            }
        }
        self.report.abandoned_records.sort_by_key(|(q, _)| q.bits());
        if total_stranded > 0 {
            self.channel.account_shutdown_loss(total_stranded);
            if let Some(g) = &mut self.guard {
                g.account_loss(total_stranded);
                if g.bound_breached() {
                    self.report.bound_breached = true;
                }
            }
        }
    }

    /// What a crash leaves behind: the latest boundary checkpoint plus
    /// the write-ahead log (the durable artifacts recovery consumes).
    /// `None` before the first checkpoint exists.
    pub fn durable_state(&self) -> Option<(Snapshot, EvictionLog)> {
        let snap = self.latest_snapshot.as_deref()?.clone();
        let log = self.wal.clone().unwrap_or_default();
        Some((snap, log))
    }

    /// Restores a crashed run into this freshly built executor.
    ///
    /// `self` must be configured identically to the crashed executor
    /// (same plan, costs, epoch length and seed — enforced via the
    /// snapshot's fingerprint). The driver:
    ///
    /// 1. validates the log suffix (contiguous from the snapshot's
    ///    sequence high-water mark, same open epoch, valid query slots);
    /// 2. restores every subsystem's boundary state — channel PRNG
    ///    cursor, guard ladder, table statistics, HFTA results, the run
    ///    report and the per-epoch delta marks;
    /// 3. replays the log suffix into the HFTA (applying each entry the
    ///    number of copies the channel originally delivered) and marks
    ///    those sequence numbers as already applied, so re-processing
    ///    the record stream from [`Snapshot::records_hwm`] skips their
    ///    HFTA application — each delivery lands exactly once.
    ///
    /// Determinism of the pipeline (seeded hashes, restored PRNG and
    /// shed cursors) then makes the resumed run bit-identical to a run
    /// that never crashed.
    pub fn recover(
        mut self,
        snapshot: &Snapshot,
        log: EvictionLog,
    ) -> Result<Executor, RecoveryError> {
        let expected = self.fingerprint();
        if snapshot.plan_fingerprint != expected {
            return Err(RecoveryError::PlanMismatch {
                expected,
                found: snapshot.plan_fingerprint,
            });
        }
        if !log.is_empty() && log.last_seq() < snapshot.seq {
            return Err(RecoveryError::LogBehindSnapshot {
                snapshot_seq: snapshot.seq,
                log_seq: log.last_seq(),
            });
        }
        let mut expected_seq = snapshot.seq;
        for e in log.suffix(snapshot.seq) {
            expected_seq += 1;
            if e.seq != expected_seq {
                return Err(RecoveryError::LogGap {
                    expected: expected_seq,
                    found: e.seq,
                });
            }
            if e.epoch != snapshot.epoch {
                return Err(RecoveryError::LogEpochMismatch {
                    snapshot_epoch: snapshot.epoch,
                    entry_epoch: e.epoch,
                    seq: e.seq,
                });
            }
            if e.slot as usize >= self.queries.len() {
                return Err(RecoveryError::QueryOutOfRange {
                    slot: e.slot,
                    queries: self.queries.len(),
                });
            }
        }
        self.channel = EvictionChannel::from_state(&snapshot.channel);
        self.guard = snapshot.guard.as_ref().map(OverloadGuard::from_state);
        self.hfta = Hfta::restore(self.queries.clone(), snapshot.hfta.clone());
        for (t, stats) in self.tables.iter_mut().zip(&snapshot.tables) {
            t.restore_stats(*stats);
        }
        self.current_epoch = snapshot.epoch;
        self.report = snapshot.report.clone();
        self.intra_cost_mark = snapshot.intra_cost_mark;
        self.flush_cost_mark = snapshot.flush_cost_mark;
        self.dropped_mark = snapshot.dropped_mark;
        self.duplicated_mark = snapshot.duplicated_mark;
        self.seq = snapshot.seq;
        self.dedup_until = log.last_seq().max(snapshot.seq);
        for e in log.suffix(snapshot.seq) {
            for _ in 0..e.copies {
                self.hfta.receive(e.slot as usize, e.key, e.agg);
            }
        }
        self.wal = Some(log);
        self.auto_snapshot = true;
        self.latest_snapshot = Some(Box::new(snapshot.clone()));
        self.crashed = false;
        Ok(self)
    }

    /// Flushes the final epoch and returns the report.
    pub fn finish(self) -> (RunReport, Hfta) {
        let (report, hfta, _) = self.finish_parts();
        (report, hfta)
    }

    /// Like [`Executor::finish`], additionally handing back the guard so
    /// its state can be transplanted into a successor executor.
    pub fn finish_parts(mut self) -> (RunReport, Hfta, Option<OverloadGuard>) {
        if self.crashed {
            self.account_abandonment();
        }
        self.flush_epoch();
        // A crashed executor skips the boundary flush above, so publish
        // any latched breach directly before the report leaves.
        if self.guard.as_ref().is_some_and(|g| g.bound_breached()) {
            self.report.bound_breached = true;
        }
        (self.report, self.hfta, self.guard)
    }

    /// The report so far (without flushing).
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The guaranteed-interval view of the run so far: per-query count
    /// bounds `[lo, hi]` derived from the loss ledgers, queryable live
    /// without stopping ingestion. At an epoch boundary (tables just
    /// drained, HFTA epoch closed) every processed record is either in
    /// a finished result or in a loss ledger, so the interval is tight;
    /// mid-epoch the still-in-flight mass is reported separately as
    /// [`crate::bounds::QueryBounds::in_flight`].
    pub fn bounds(&self) -> BoundsReport {
        let mut bounds = BoundsReport::from_run(&self.report, &self.hfta, &self.queries);
        if let Some(g) = &self.guard {
            bounds.records_lost = g.records_lost();
            // A breach latched mid-epoch is visible immediately, not at
            // the next boundary.
            if g.bound_breached() {
                bounds.flag_breached();
            }
        }
        bounds
    }

    /// Resets per-table statistics (drift detection works on windows;
    /// table contents and cost counters are unaffected).
    pub fn reset_table_stats(&mut self) {
        for t in &mut self.tables {
            t.reset_stats();
        }
    }

    /// The epoch currently open (records with timestamps inside it are
    /// still being absorbed into the LFTA tables).
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch
    }

    /// Force-closes epochs until `epoch` is the open one. Each close
    /// runs the identical [`Executor::flush_epoch`] a timestamp crossing
    /// inside [`Executor::process`] would run, so aligning between
    /// record batches is state-identical to the boundary arriving
    /// organically. A no-op on a crashed executor and once
    /// `current_epoch >= epoch`.
    pub fn align_to_epoch(&mut self, epoch: u64) {
        while self.current_epoch < epoch && !self.crashed {
            self.flush_epoch();
        }
    }

    /// Swap hook: a hot-swap transaction committed onto this executor.
    pub(crate) fn note_replan_committed(&mut self) {
        self.report.replans_committed += 1;
    }

    /// Swap hook: a hot-swap transaction was rolled back and this
    /// executor keeps serving the old plan.
    pub(crate) fn note_replan_rolled_back(&mut self) {
        self.report.replans_rolled_back += 1;
    }

    /// Swap hook: the HFTA combiner (finished results + open maps).
    pub(crate) fn hfta(&self) -> &Hfta {
        &self.hfta
    }

    /// Swap hook: re-captures the boundary checkpoint so counters bumped
    /// *at* the boundary (the swap ledger) reach the durable artifacts a
    /// crash would recover from. A no-op unless checkpoints are enabled
    /// and the executor sits exactly at a boundary.
    pub(crate) fn refresh_boundary_checkpoint(&mut self) {
        if self.auto_snapshot
            && self.tables.iter().all(|t| t.occupied() == 0)
            && self.hfta.in_flight() == 0
        {
            let snap = self.make_snapshot();
            if let Some(wal) = &mut self.wal {
                *wal = EvictionLog::from_entries(wal.suffix(snap.seq).copied().collect());
            }
            self.store_commit(&snap);
            self.latest_snapshot = Some(Box::new(snap));
        }
    }

    /// Transplants an epoch-boundary snapshot of an *old-plan* executor
    /// into this freshly built *new-plan* executor — the state handoff
    /// of a hot-swap transaction.
    ///
    /// At a boundary the old executor's LFTA tables are drained and the
    /// HFTA has nothing in flight, so its complete state is the
    /// snapshot's counters, finished results and PRNG cursors; "rehashing
    /// the LFTA state into the new feeding graph" reduces to carrying
    /// that state over while the new plan's tables start empty (they
    /// fill again from the stream, under the new hash layout). What is
    /// carried:
    ///
    /// * the channel PRNG cursor and fault statistics — fault sequences
    ///   continue exactly where the old plan left them;
    /// * the overload-guard ladder and [`crate::guard::DegradationPolicy`]
    ///   budget odometer — the degradation promise survives the swap
    ///   (snapshot-mediated promise carryover);
    /// * the HFTA's finished results — including results of queries the
    ///   new plan no longer serves ([`Hfta::restore`] keeps them
    ///   verbatim), so removing a query never erases its history;
    /// * the run report, epoch position, delivery sequence and per-epoch
    ///   delta marks.
    ///
    /// Per-table collision statistics deliberately start fresh: the new
    /// plan's tables are different tables, and the drift detector must
    /// observe them from a clean window.
    pub(crate) fn adopt_boundary_state(mut self, snapshot: &Snapshot) -> Executor {
        debug_assert!(
            self.report.records == 0,
            "adopting executors must be freshly built"
        );
        self.channel = EvictionChannel::from_state(&snapshot.channel);
        self.guard = snapshot.guard.as_ref().map(OverloadGuard::from_state);
        self.hfta = Hfta::restore(self.queries.clone(), snapshot.hfta.clone());
        self.current_epoch = snapshot.epoch;
        self.report = snapshot.report.clone();
        self.intra_cost_mark = snapshot.intra_cost_mark;
        self.flush_cost_mark = snapshot.flush_cost_mark;
        self.dropped_mark = snapshot.dropped_mark;
        self.duplicated_mark = snapshot.duplicated_mark;
        self.seq = snapshot.seq;
        self.dedup_until = snapshot.seq;
        if self.auto_snapshot {
            // Re-anchor the durable artifacts under the new plan's
            // fingerprint: a crash right after the commit must recover
            // into the new plan, not find an orphaned old-plan
            // checkpoint.
            self.latest_snapshot = Some(Box::new(self.make_snapshot()));
            if let Some(wal) = &mut self.wal {
                *wal = EvictionLog::new();
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PhysicalPlan, PlanNode};
    use msa_stream::hash::FastMap;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    /// Exact per-group counts computed naively.
    fn exact_counts(records: &[Record], q: AttrSet) -> FastMap<GroupKey, u64> {
        let mut m = FastMap::default();
        for r in records {
            *m.entry(r.project(q)).or_insert(0) += 1;
        }
        m
    }

    fn records(tuples: &[[u32; 4]]) -> Vec<Record> {
        tuples
            .iter()
            .enumerate()
            .map(|(i, t)| Record::new(t, i as u64))
            .collect()
    }

    #[test]
    fn flat_plan_produces_exact_results() {
        let recs = records(&[
            [1, 10, 100, 0],
            [1, 11, 100, 0],
            [2, 10, 101, 0],
            [1, 10, 100, 0],
        ]);
        let plan = PhysicalPlan::flat([(s("A"), 4), (s("B"), 4)]);
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 1);
        ex.run(&recs);
        let (report, hfta) = ex.finish();
        assert_eq!(report.records, 4);
        assert_eq!(hfta.totals(s("A")), exact_counts(&recs, s("A")));
        assert_eq!(hfta.totals(s("B")), exact_counts(&recs, s("B")));
    }

    #[test]
    fn phantom_plan_produces_exact_results() {
        // ABC feeds A, B, C; tiny tables force heavy cascading.
        let recs: Vec<Record> = (0..500u32)
            .map(|i| Record::new(&[i % 7, i % 5, i % 3, 0], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("ABC"),
                parent: None,
                buckets: 4,
                is_query: false,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 2,
                is_query: true,
            },
            PlanNode {
                attrs: s("B"),
                parent: Some(0),
                buckets: 2,
                is_query: true,
            },
            PlanNode {
                attrs: s("C"),
                parent: Some(0),
                buckets: 2,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 3);
        ex.run(&recs);
        let (_, hfta) = ex.finish();
        for q in ["A", "B", "C"] {
            assert_eq!(
                hfta.totals(s(q)),
                exact_counts(&recs, s(q)),
                "query {q} mismatch"
            );
        }
    }

    #[test]
    fn multi_level_phantoms_remain_exact() {
        // (ABCD(AB BCD(BC BD CD))) — paper Fig. 3(c).
        let recs: Vec<Record> = (0..2000u32)
            .map(|i| Record::new(&[i % 11, i % 6, i % 4, i % 3], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("ABCD"),
                parent: None,
                buckets: 16,
                is_query: false,
            },
            PlanNode {
                attrs: s("AB"),
                parent: Some(0),
                buckets: 8,
                is_query: true,
            },
            PlanNode {
                attrs: s("BCD"),
                parent: Some(0),
                buckets: 8,
                is_query: false,
            },
            PlanNode {
                attrs: s("BC"),
                parent: Some(2),
                buckets: 4,
                is_query: true,
            },
            PlanNode {
                attrs: s("BD"),
                parent: Some(2),
                buckets: 4,
                is_query: true,
            },
            PlanNode {
                attrs: s("CD"),
                parent: Some(2),
                buckets: 4,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 5);
        ex.run(&recs);
        let (_, hfta) = ex.finish();
        for q in ["AB", "BC", "BD", "CD"] {
            assert_eq!(
                hfta.totals(s(q)),
                exact_counts(&recs, s(q)),
                "query {q} mismatch"
            );
        }
    }

    #[test]
    fn epochs_split_results_and_counts_flush_cost() {
        let recs = vec![
            Record::new(&[1, 0, 0, 0], 0),
            Record::new(&[1, 0, 0, 0], 500_000),
            Record::new(&[1, 0, 0, 0], 1_500_000), // second epoch
        ];
        let plan = PhysicalPlan::flat([(s("A"), 4)]);
        let mut ex = Executor::new(plan, CostParams::paper(), 1_000_000, 0);
        ex.run(&recs);
        let (report, hfta) = ex.finish();
        assert_eq!(report.epochs, 2);
        let res = hfta.results();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].total_count(), 2);
        assert_eq!(res[1].total_count(), 1);
        // Each epoch flushes one entry from the single query table.
        assert_eq!(report.flush_evictions, 2);
    }

    #[test]
    fn cost_accounting_flat_no_collisions() {
        // 3 distinct groups into 64 buckets: collisions vanishingly rare.
        let recs = records(&[[1, 0, 0, 0], [2, 0, 0, 0], [3, 0, 0, 0]]);
        let plan = PhysicalPlan::flat([(s("A"), 64)]);
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 9);
        ex.run(&recs);
        let (report, _) = ex.finish();
        assert_eq!(report.intra_probes, 3);
        assert_eq!(report.intra_evictions, 0);
        assert_eq!(report.flush_evictions, 3);
        assert_eq!(report.intra_cost(), 3.0);
        assert_eq!(report.flush_cost(), 150.0);
        assert_eq!(report.per_record_cost(), 1.0);
    }

    #[test]
    fn phantom_cascade_costs_match_model_shape() {
        // One phantom AB feeding A and B: each phantom collision should
        // add exactly two child probes (E2 structure of §2.5).
        let recs: Vec<Record> = (0..1000u32)
            .map(|i| Record::new(&[i % 50, i / 50, 0, 0], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("AB"),
                parent: None,
                buckets: 8,
                is_query: false,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 8,
                is_query: true,
            },
            PlanNode {
                attrs: s("B"),
                parent: Some(0),
                buckets: 8,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 13);
        ex.run(&recs);
        let stats = ex.table_stats();
        let phantom_collisions = stats[0].1.collisions;
        let child_feeds = stats[1].1.probes + stats[2].1.probes;
        assert_eq!(child_feeds, 2 * phantom_collisions);
        let report = ex.report();
        // Intra probes = n raw probes + child feeds.
        assert_eq!(report.intra_probes, 1000 + child_feeds);
    }

    #[test]
    fn query_feeding_query_reaches_both_hfta_and_child() {
        // Query AB feeds query A: AB evictions must land in the HFTA and
        // also feed A's table.
        let recs: Vec<Record> = (0..200u32)
            .map(|i| Record::new(&[i % 10, i % 7, 0, 0], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("AB"),
                parent: None,
                buckets: 4,
                is_query: true,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 4,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 21);
        ex.run(&recs);
        let (_, hfta) = ex.finish();
        assert_eq!(hfta.totals(s("AB")), exact_counts(&recs, s("AB")));
        assert_eq!(hfta.totals(s("A")), exact_counts(&recs, s("A")));
    }

    #[test]
    fn value_aggregates_survive_the_cascade() {
        // Metric = attribute D (e.g. packet length); grouping on A via
        // phantom AB. SUM/MIN/MAX per A-group must match a naive pass,
        // no matter how entries bounce through the phantom.
        let recs: Vec<Record> = (0..600u32)
            .map(|i| Record::new(&[i % 12, i % 7, 0, 100 + (i % 50)], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("AB"),
                parent: None,
                buckets: 4,
                is_query: false,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 4,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 8)
            .with_value_source(ValueSource::Attr(3));
        ex.run(&recs);
        let (_, hfta) = ex.finish();
        let got = hfta.aggregate_totals(s("A"));
        // Naive ground truth.
        let mut want: FastMap<GroupKey, (u64, u64, u32, u32)> = FastMap::default();
        for r in &recs {
            let k = r.project(s("A"));
            let v = r.attrs[3];
            let e = want.entry(k).or_insert((0, 0, u32::MAX, 0));
            e.0 += 1;
            e.1 += u64::from(v);
            e.2 = e.2.min(v);
            e.3 = e.3.max(v);
        }
        assert_eq!(got.len(), want.len());
        for (k, (count, sum, min, max)) in want {
            let a = got[&k];
            assert_eq!(
                (a.count, a.sum, a.min, a.max),
                (count, sum, min, max),
                "group {k}"
            );
        }
    }

    #[test]
    fn selection_filter_runs_before_probes() {
        use msa_stream::{CmpOp, Filter};
        // Keep only records with B = 0 (e.g. "dstPort = 80").
        let recs: Vec<Record> = (0..300u32)
            .map(|i| Record::new(&[i % 10, i % 3, 0, 0], i as u64))
            .collect();
        let plan = PhysicalPlan::flat([(s("A"), 32)]);
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 6)
            .with_filter(Filter::all().and(1, CmpOp::Eq, 0));
        ex.run(&recs);
        let (report, hfta) = ex.finish();
        assert_eq!(report.records, 300);
        assert_eq!(report.filtered_out, 200);
        // Probes happened only for passing records.
        assert_eq!(report.intra_probes, 100);
        // Results equal a naive filtered computation.
        let filtered: Vec<Record> = recs.iter().copied().filter(|r| r.attrs[1] == 0).collect();
        assert_eq!(hfta.totals(s("A")), exact_counts(&filtered, s("A")));
    }

    /// The phantom plan `AB → {A, B}` with tiny tables (heavy traffic on
    /// every path: evictions, cascades, flushes).
    fn small_phantom_plan() -> PhysicalPlan {
        PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("AB"),
                parent: None,
                buckets: 8,
                is_query: false,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 4,
                is_query: true,
            },
            PlanNode {
                attrs: s("B"),
                parent: Some(0),
                buckets: 4,
                is_query: true,
            },
        ])
        .unwrap()
    }

    #[test]
    fn channel_faults_are_accounted_exactly() {
        use crate::faults::FaultPlan;
        // 10% loss + 5% duplication; per query the observed total must
        // equal truth plus the reported bias, record for record.
        let recs: Vec<Record> = (0..20_000u32)
            .map(|i| Record::new(&[i % 37, i % 23, 0, 0], u64::from(i) * 200))
            .collect();
        let faults = FaultPlan::new(0xFA_17)
            .with_eviction_loss(0.10)
            .with_eviction_duplication(0.05);
        let mut ex = Executor::new(small_phantom_plan(), CostParams::paper(), 1_000_000, 11)
            .with_faults(&faults);
        ex.run(&recs);
        let stats = *ex.channel_stats();
        let (report, hfta) = ex.finish();
        assert!(report.evictions_dropped > 0, "faults must actually fire");
        assert!(report.evictions_duplicated > 0);
        // finish() offers the final flush to the channel too, so compare
        // against the pre-finish snapshot plus whatever the flush added.
        assert!(report.evictions_dropped >= stats.dropped);
        for q in [s("A"), s("B")] {
            let observed: u64 = hfta.totals(q).values().sum();
            let expected = recs.len() as i64 + report.count_bias(q);
            assert_eq!(observed as i64, expected, "query {q}");
        }
    }

    #[test]
    fn guard_sheds_under_breach_and_bias_stays_exact() {
        use crate::guard::GuardPolicy;
        // Budget 0 breaches every epoch: the guard walks the full ladder
        // (shed → phantoms off → repair request) while counts keep
        // satisfying the bias identity exactly — including the cascade
        // suppression of the phantom bypass.
        let recs: Vec<Record> = (0..30_000u32)
            .map(|i| Record::new(&[i % 41, i % 17, 0, 0], u64::from(i) * 100))
            .collect();
        let mut ex = Executor::new(small_phantom_plan(), CostParams::paper(), 500_000, 3)
            .with_guard(GuardPolicy::new(0.0));
        ex.run(&recs);
        assert!(ex.repair_pending(), "ladder must reach the repair level");
        let (report, hfta) = ex.finish();
        assert!(report.records_shed > 0, "shedding must engage");
        assert!(report.epochs_degraded > 0);
        assert!(report.guard_transitions.len() >= 3, "one step per level");
        assert_eq!(report.guard_transitions[0].from, GuardLevel::Normal);
        for q in [s("A"), s("B")] {
            let observed: u64 = hfta.totals(q).values().sum();
            assert_eq!(
                observed as i64,
                recs.len() as i64 + report.count_bias(q),
                "query {q}"
            );
            // No channel faults: the bias is pure shedding.
            assert_eq!(report.count_bias(q), -(report.records_shed as i64));
        }
    }

    #[test]
    fn guard_recovers_when_load_subsides() {
        use crate::guard::GuardPolicy;
        // Epoch 0 is heavy (500 distinct AB groups through 8 buckets →
        // expensive flush); later epochs are nearly idle. The guard must
        // escalate on the breach and walk back to Normal.
        let mut recs: Vec<Record> = (0..5000u32)
            .map(|i| Record::new(&[i % 50, i % 10, 0, 0], u64::from(i) * 100))
            .collect();
        for e in 1..6u32 {
            for i in 0..10u32 {
                recs.push(Record::new(
                    &[1, 1, 0, 0],
                    u64::from(e) * 1_000_000 + u64::from(i),
                ));
            }
        }
        let mut ex = Executor::new(small_phantom_plan(), CostParams::paper(), 1_000_000, 7)
            .with_guard(GuardPolicy::new(500.0));
        ex.run(&recs);
        let (report, _) = ex.finish();
        let last = report.guard_transitions.last().expect("transitions");
        assert_eq!(
            last.to,
            GuardLevel::Normal,
            "{:?}",
            report.guard_transitions
        );
        assert!(report.epochs_degraded < report.epochs);
    }

    #[test]
    fn start_epoch_keeps_absolute_labels() {
        let recs = vec![Record::new(&[1, 0, 0, 0], 3_500_000)];
        let plan = PhysicalPlan::flat([(s("A"), 4)]);
        let mut ex = Executor::new(plan, CostParams::paper(), 1_000_000, 0).with_start_epoch(3);
        ex.run(&recs);
        let (report, hfta) = ex.finish();
        assert_eq!(report.epochs, 4);
        assert_eq!(hfta.results().len(), 1);
        assert_eq!(hfta.results()[0].epoch, 3);
    }

    #[test]
    fn bounded_channel_drops_overflow_with_exact_accounting() {
        use crate::channel::EvictionChannel;
        // Capacity 5 deliveries per epoch; everything beyond is dropped
        // and the dropped record mass reconciles the observed counts.
        let recs: Vec<Record> = (0..400u32)
            .map(|i| Record::new(&[i % 40, 0, 0, 0], u64::from(i) * 1000))
            .collect();
        let plan = PhysicalPlan::flat([(s("A"), 8)]);
        let mut ex = Executor::new(plan, CostParams::paper(), 100_000, 1)
            .with_channel(EvictionChannel::lossless().with_capacity(5));
        ex.run(&recs);
        let (report, hfta) = ex.finish();
        assert!(report.evictions_dropped > 0, "capacity bound must bite");
        let observed: u64 = hfta.totals(s("A")).values().sum();
        assert_eq!(
            observed as i64,
            recs.len() as i64 + report.count_bias(s("A"))
        );
    }

    #[test]
    fn report_merge_commutes() {
        use crate::guard::{GuardLevel, GuardTransition};
        // Two reports with overlapping epochs, differently ordered keyed
        // vectors and interleaved guard histories: folding either way
        // must land on the identical struct.
        let a = RunReport {
            records: 10,
            intra_probes: 100,
            intra_evictions: 7,
            flush_probes: 20,
            flush_evictions: 5,
            epochs: 3,
            filtered_out: 1,
            records_shed: 2,
            evictions_dropped: 3,
            evictions_duplicated: 1,
            dropped_records: vec![(s("B"), 4), (s("A"), 2)],
            duplicated_records: vec![(s("A"), 1)],
            epochs_degraded: 1,
            guard_transitions: vec![GuardTransition {
                epoch: 2,
                from: GuardLevel::Normal,
                to: GuardLevel::Shedding,
                observed_cost: 12.5,
            }],
            epoch_costs: vec![(0, 1.5, 2.5), (1, 3.0, 4.0), (2, 0.25, 0.5)],
            epoch_faults: vec![(1, 2, 0), (2, 1, 1)],
            shard_restarts: 1,
            records_poisoned: 2,
            records_unreplayed: 0,
            records_shutdown_lost: 3,
            records_stale_lost: 1,
            records_shed_denied: 1,
            abandoned_records: vec![(s("B"), 2)],
            replans_committed: 1,
            replans_rolled_back: 0,
            bound_breached: false,
            costs: CostParams::paper(),
        };
        let b = RunReport {
            records: 4,
            intra_probes: 40,
            intra_evictions: 2,
            flush_probes: 9,
            flush_evictions: 3,
            epochs: 2,
            filtered_out: 0,
            records_shed: 1,
            evictions_dropped: 1,
            evictions_duplicated: 2,
            dropped_records: vec![(s("A"), 5), (s("C"), 1)],
            duplicated_records: vec![(s("B"), 3), (s("A"), 2)],
            epochs_degraded: 2,
            guard_transitions: vec![
                GuardTransition {
                    epoch: 1,
                    from: GuardLevel::Normal,
                    to: GuardLevel::Shedding,
                    observed_cost: 9.0,
                },
                GuardTransition {
                    epoch: 2,
                    from: GuardLevel::Shedding,
                    to: GuardLevel::Normal,
                    observed_cost: 1.0,
                },
            ],
            epoch_costs: vec![(1, 0.125, 8.0), (3, 6.0, 7.0)],
            epoch_faults: vec![(1, 0, 3)],
            shard_restarts: 2,
            records_poisoned: 0,
            records_unreplayed: 4,
            records_shutdown_lost: 1,
            records_stale_lost: 2,
            records_shed_denied: 2,
            abandoned_records: vec![(s("A"), 1), (s("B"), 3)],
            replans_committed: 0,
            replans_rolled_back: 2,
            bound_breached: true,
            costs: CostParams::paper(),
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Coalescing preserved totals and keyed sums.
        assert_eq!(ab.records, 14);
        assert_eq!(ab.dropped_records_for(s("A")), 7);
        assert_eq!(ab.duplicated_records_for(s("A")), 3);
        assert_eq!(ab.epoch_costs.len(), 4);
        assert_eq!(ab.epoch_costs[1], (1, 3.0 + 0.125, 4.0 + 8.0));
        assert_eq!(ab.epoch_faults, vec![(1, 2, 3), (2, 1, 1)]);
        assert_eq!(ab.shard_restarts, 3);
        assert_eq!(ab.records_poisoned, 2);
        assert_eq!(ab.records_shutdown_lost, 4);
        assert_eq!(ab.records_shed_denied, 3);
        assert_eq!(ab.abandoned_records_for(s("A")), 1);
        assert_eq!(ab.abandoned_records_for(s("B")), 5);
        assert_eq!(ab.replans_committed, 1);
        assert_eq!(ab.replans_rolled_back, 2);
        // A breach on either side survives the fold.
        assert!(ab.bound_breached);
        assert_eq!(ab.records_unreplayed, 4);
        // Merging commutes with itself repeatedly (fold in any order).
        let mut fold1 = RunReport {
            costs: CostParams::paper(),
            ..RunReport::default()
        };
        fold1.merge(&a);
        fold1.merge(&b);
        assert_eq!(fold1, ab);
    }

    #[test]
    fn executor_config_build_matches_builder_chain() {
        let recs: Vec<Record> = (0..3000u32)
            .map(|i| Record::new(&[i % 19, i % 11, 0, 0], u64::from(i) * 500))
            .collect();
        let faults = FaultPlan::new(0xC0FF)
            .with_eviction_loss(0.05)
            .with_eviction_duplication(0.02);
        let cfg = ExecutorConfig {
            faults: Some(faults),
            guard: Some(GuardPolicy::new(5_000.0)),
            durable: true,
            ..ExecutorConfig::new(small_phantom_plan(), CostParams::paper(), 500_000, 17)
        };
        let mut from_cfg = cfg.build();
        let mut chained = Executor::new(small_phantom_plan(), CostParams::paper(), 500_000, 17)
            .with_faults(&faults)
            .with_guard(GuardPolicy::new(5_000.0))
            .with_eviction_log()
            .with_snapshots();
        from_cfg.run(&recs);
        chained.run(&recs);
        let (ra, ha) = from_cfg.finish();
        let (rb, hb) = chained.finish();
        assert_eq!(ra, rb);
        assert_eq!(ha.results(), hb.results());
    }

    #[test]
    fn results_conserve_record_counts() {
        // Σ counts per query = number of records, whatever the plan.
        let recs: Vec<Record> = (0..777u32)
            .map(|i| Record::new(&[i % 13, i % 9, i % 2, 0], i as u64))
            .collect();
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("ABC"),
                parent: None,
                buckets: 8,
                is_query: false,
            },
            PlanNode {
                attrs: s("AB"),
                parent: Some(0),
                buckets: 4,
                is_query: true,
            },
            PlanNode {
                attrs: s("C"),
                parent: Some(0),
                buckets: 2,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 2);
        ex.run(&recs);
        let (_, hfta) = ex.finish();
        for q in ["AB", "C"] {
            let total: u64 = hfta.totals(s(q)).values().sum();
            assert_eq!(total, 777, "query {q}");
        }
    }
}
