//! Self-healing shard supervision: panic isolation, stuck-shard
//! detection, and live restart from epoch-aligned checkpoints.
//!
//! The sharded runtime used to propagate any shard panic straight
//! through `resume_unwind`, killing the whole deployment. This module
//! gives every shard a [`ShardDriver`] — the supervision loop its
//! worker thread runs instead of calling `Executor::run` directly:
//!
//! * **panic isolation** — each record is processed inside a
//!   `catch_unwind` boundary (this file is the only place the engine
//!   is allowed to erect one; msa-lint rule R005 enforces the
//!   containment). A caught panic marks the shard *dead* and triggers
//!   a restart instead of an abort.
//! * **restart from checkpoint** — a dead or stuck shard is rebuilt
//!   from its last epoch-aligned snapshot + eviction log
//!   ([`Executor::recover`]) and its feed is replayed from a bounded
//!   replay buffer, so the resumed run is bit-identical to a fault-free
//!   one whenever the buffer still covers the checkpoint's record
//!   high-water mark (the exactly-once property of PR 2, applied live).
//! * **poison quarantine** — a record that deterministically kills its
//!   shard [`SupervisorPolicy::poison_threshold`] consecutive times is
//!   quarantined into a typed [`PoisonRecord`] report and counted in
//!   `RunReport::records_poisoned`; it is never silently dropped, and
//!   `count_bias` carries the exact per-query correction.
//! * **explicit degradation** — when the replay buffer no longer
//!   reaches back to the checkpoint (overrun), the unreplayable gap
//!   degrades through the overload-guard ledger
//!   (`records_shed`/`records_unreplayed`) with exact per-query bias
//!   bounds rather than aborting.
//! * **stuck detection** — a shard that stops making progress
//!   (an injected [`ShardFault::stall_at`], or anything that wedges the
//!   epoch loop between records) is declared *stuck* once
//!   [`SupervisorPolicy::stall_deadline`] further records arrive
//!   without progress, and restarted. The deadline is counted in
//!   **records received**, never wall-clock time — supervision
//!   decisions must be pure functions of the input stream (msa-lint
//!   rule D001 bans clocks from the engine), so two runs of the same
//!   stream take identical decisions at identical points. A thread
//!   wedged *inside* a single `process` call cannot be observed from
//!   within; that residual case is what the CI hard timeout covers.
//!
//! Every decision point (panic index, stall onset, deadline expiry,
//! quarantine, buffer pruning) is keyed to shard-local record indices,
//! which makes the whole state machine — healthy → dead/stuck →
//! restarting → quarantine/degraded — deterministic and therefore
//! testable bit-for-bit (see `tests/supervision.rs`).

use std::collections::VecDeque;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::executor::{Executor, ExecutorConfig};
use crate::faults::ShardFault;
use crate::snapshot::EvictionLog;
use crate::store::StoreHandle;
use msa_stream::{AttrSet, Record, RecordChunk};

/// Supervision knobs. Everything is counted in shard-local records —
/// never wall-clock time — so supervised runs stay deterministic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SupervisorPolicy {
    /// Records that may arrive without the shard making progress before
    /// it is declared stuck and restarted.
    pub stall_deadline: u64,
    /// Consecutive times one record may kill the shard before it is
    /// quarantined as poison.
    pub poison_threshold: u32,
    /// Processed records kept in the replay buffer behind the
    /// consumption point. Restarts replay from the latest checkpoint;
    /// if the checkpoint has fallen more than this far behind, the
    /// uncovered gap degrades explicitly instead of aborting.
    pub replay_capacity: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> SupervisorPolicy {
        SupervisorPolicy {
            stall_deadline: 1024,
            poison_threshold: 3,
            replay_capacity: 65_536,
        }
    }
}

impl SupervisorPolicy {
    /// Sets the stuck deadline (in records received without progress).
    pub fn with_stall_deadline(mut self, records: u64) -> SupervisorPolicy {
        self.stall_deadline = records;
        self
    }

    /// Sets how many consecutive kills quarantine a record.
    pub fn with_poison_threshold(mut self, times: u32) -> SupervisorPolicy {
        self.poison_threshold = times.max(1);
        self
    }

    /// Sets the replay-buffer bound (in processed records retained).
    pub fn with_replay_capacity(mut self, records: u64) -> SupervisorPolicy {
        self.replay_capacity = records;
        self
    }
}

/// Where a shard is in the supervision state machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardState {
    /// Making progress.
    #[default]
    Healthy = 0,
    /// Stopped making progress; the stuck deadline is counting down.
    Stuck = 1,
    /// A panic boundary caught this shard dying.
    Dead = 2,
    /// Being rebuilt from its checkpoint and replayed.
    Restarting = 3,
    /// Feed closed; the shard's outputs are final.
    Done = 4,
}

impl ShardState {
    fn from_u8(v: u8) -> ShardState {
        match v {
            1 => ShardState::Stuck,
            2 => ShardState::Dead,
            3 => ShardState::Restarting,
            4 => ShardState::Done,
            _ => ShardState::Healthy,
        }
    }
}

/// The externally observable pulse of one shard: a progress counter and
/// the supervision state, published with relaxed atomics so the routing
/// thread (or an operator) can watch a live deployment without touching
/// determinism — heartbeats are observational; every supervision
/// *decision* is taken inside the shard's own deterministic loop.
#[derive(Debug, Default)]
pub struct ShardHeartbeat {
    processed: AtomicU64,
    state: AtomicU8,
}

impl ShardHeartbeat {
    /// Records processed so far (monotone within a run segment).
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Last published supervision state.
    pub fn state(&self) -> ShardState {
        ShardState::from_u8(self.state.load(Ordering::Relaxed))
    }

    fn beat(&self, processed: u64) {
        self.processed.store(processed, Ordering::Relaxed);
    }

    /// Publishes a state change. `pub(crate)` so the hot-swap
    /// transaction ([`crate::shard::ShardedExecutor::hot_swap`]) can
    /// surface its quiesce/commit window on the same observable pulse
    /// supervision uses — heartbeats stay observational; every swap
    /// *decision* is record-counted inside the transaction itself.
    pub(crate) fn publish(&self, state: ShardState) {
        self.state.store(state as u8, Ordering::Relaxed);
    }
}

/// A quarantined poison record: it killed its shard
/// [`SupervisorPolicy::poison_threshold`] consecutive times and was
/// skipped. The report names exactly what was lost — the record, where
/// it sat in the shard's partition, and every query it would have fed —
/// and `RunReport::records_poisoned` carries the count into the bias
/// ledger, so quarantine is never a silent drop.
#[derive(Clone, Debug, PartialEq)]
pub struct PoisonRecord {
    /// Shard that quarantined it.
    pub shard: usize,
    /// Shard-local index in the partition.
    pub index: u64,
    /// The record itself.
    pub record: Record,
    /// Consecutive kills observed before quarantine.
    pub attempts: u32,
    /// The queries this record would have contributed one count to.
    pub queries: Vec<AttrSet>,
}

/// Per-shard supervision outcome, collected when the feed closes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardHealth {
    /// Final supervision state.
    pub state: ShardState,
    /// Restarts performed (panic- or stall-triggered).
    pub restarts: u64,
    /// Panics the boundary caught.
    pub panics_caught: u64,
    /// Times the stuck deadline fired.
    pub stalls_detected: u64,
    /// Records re-processed from the replay buffer across all restarts
    /// (the records-to-recover MTTR proxy the recovery bench reports).
    pub records_replayed: u64,
    /// Records lost to replay-buffer overruns (degraded explicitly
    /// through the shed ledger).
    pub records_unreplayed: u64,
    /// Quarantined poison records, in quarantine order.
    pub poisoned: Vec<PoisonRecord>,
}

impl ShardHealth {
    /// Folds a later run segment's outcome into this one.
    ///
    /// Exhaustive destructure on purpose: a new health counter that is
    /// not folded here would silently vanish from merged reports — and
    /// from the loss accounting the bounds subsystem derives intervals
    /// from — so it must be a compile error instead.
    pub fn absorb(&mut self, other: &ShardHealth) {
        let ShardHealth {
            state,
            restarts,
            panics_caught,
            stalls_detected,
            records_replayed,
            records_unreplayed,
            poisoned,
        } = other;
        self.state = *state;
        self.restarts += restarts;
        self.panics_caught += panics_caught;
        self.stalls_detected += stalls_detected;
        self.records_replayed += records_replayed;
        self.records_unreplayed += records_unreplayed;
        self.poisoned.extend(poisoned.iter().cloned());
    }
}

/// Typed payload of an injected shard panic, so the quiet panic hook
/// can tell drills from real bugs: injected deaths unwind silently,
/// anything else still prints through the previous hook.
struct InjectedShardPanic;

static QUIET_HOOK: std::sync::Once = std::sync::Once::new();

fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<InjectedShardPanic>()
                .is_none()
            {
                prev(info);
            }
        }));
    });
}

/// The supervision loop one shard worker runs: a panic boundary, a
/// bounded replay buffer, the stall/poison state machine, and restart
/// from checkpoint. Single-threaded per shard; all inputs arrive via
/// [`ShardDriver::offer`] in partition order, so every decision is a
/// pure function of the shard's record stream.
pub(crate) struct ShardDriver {
    shard: usize,
    cfg: ExecutorConfig,
    ex: Executor,
    fault: ShardFault,
    policy: SupervisorPolicy,
    heartbeat: std::sync::Arc<ShardHeartbeat>,
    /// The shard's durable store, when one is attached: restarts then
    /// recover from persisted generations (with fallback) instead of
    /// the executor's in-memory artifacts.
    store: Option<StoreHandle>,
    queries: Vec<AttrSet>,
    /// Replay buffer holding shard-local records `[buf_start, received)`.
    buf: VecDeque<Record>,
    buf_start: u64,
    /// Shard-local records fed so far.
    received: u64,
    /// Shard-local index of the next record to process. Invariant for a
    /// healthy shard: equals `ex.report().records` (poison and gap
    /// absorption keep it in step).
    consumed: u64,
    /// Injected-panic fuse: firings left.
    panic_fires_left: u32,
    /// Consecutive-kill tracking for the poison verdict.
    last_panic_index: Option<u64>,
    panic_attempts: u32,
    /// Stall state: currently stalled, and whether the armed stall has
    /// already been handled (stalls fire once).
    stalled: bool,
    stall_handled: bool,
    /// A real panic escaped the vectorized probe: stay on the
    /// per-record pump from here on, so the replay re-hits the death
    /// at its exact record index.
    scalar_fallback: bool,
    health: ShardHealth,
}

impl ShardDriver {
    pub(crate) fn new(
        shard: usize,
        cfg: ExecutorConfig,
        ex: Executor,
        fault: ShardFault,
        policy: SupervisorPolicy,
        heartbeat: std::sync::Arc<ShardHeartbeat>,
    ) -> ShardDriver {
        install_quiet_hook();
        heartbeat.publish(ShardState::Healthy);
        let queries = cfg.plan.query_attrs();
        let store = ex.store_handle();
        ShardDriver {
            shard,
            cfg,
            ex,
            fault,
            policy,
            heartbeat,
            store,
            queries,
            buf: VecDeque::new(),
            buf_start: 0,
            received: 0,
            consumed: 0,
            panic_fires_left: if fault.panic_at_record.is_some() {
                fault.panic_times.max(1)
            } else {
                0
            },
            last_panic_index: None,
            panic_attempts: 0,
            stalled: false,
            stall_handled: false,
            scalar_fallback: false,
            health: ShardHealth::default(),
        }
    }

    /// Feeds one batch of the shard's partition, in order, then pumps
    /// the supervision loop as far as it can go.
    pub(crate) fn offer(&mut self, batch: &[Record]) {
        for &r in batch {
            self.received += 1;
            if !self.ex.has_crashed() {
                // A crash-fuse "dead process" never consumes its feed;
                // counting (not storing) its backlog keeps memory flat
                // and lets `close` account the in-flight loss exactly.
                self.buf.push_back(r);
            }
        }
        self.check_stall();
        self.pump();
    }

    /// Feeds one columnar chunk of the shard's partition, in order,
    /// then pumps. When no supervision drill is armed and nothing has
    /// ever been quarantined, the backlog drains through the
    /// executor's vectorized probe in one pass; any complication — an
    /// armed [`ShardFault`], a prior quarantine, an open stall, a
    /// panic that escaped the chunked boundary — falls back to the
    /// per-record pump, whose every decision is keyed to an exact
    /// record index and therefore bit-identical to scalar supervision.
    pub(crate) fn offer_chunk(&mut self, chunk: &RecordChunk) {
        for i in 0..chunk.len() {
            self.received += 1;
            if !self.ex.has_crashed() {
                if let Some(r) = chunk.get(i) {
                    self.buf.push_back(r);
                }
            }
        }
        self.check_stall();
        if self.chunked_eligible() {
            self.pump_chunked();
        } else {
            self.pump();
        }
    }

    /// The vectorized pump is only sound while supervision has nothing
    /// to attribute per record: no armed drill, no quarantine history,
    /// no open stall, no prior escaped panic.
    fn chunked_eligible(&self) -> bool {
        self.fault.is_none()
            && !self.scalar_fallback
            && !self.stalled
            && self.health.poisoned.is_empty()
    }

    /// Drains the backlog through [`Executor::offer_chunk`], one panic
    /// boundary per pending range.
    fn pump_chunked(&mut self) {
        while !self.ex.has_crashed() && self.consumed < self.received {
            let start =
                usize::try_from(self.consumed.saturating_sub(self.buf_start)).unwrap_or(usize::MAX);
            let pending: RecordChunk = self.buf.iter().skip(start).copied().collect();
            if pending.is_empty() {
                return;
            }
            let before = self.ex.report().records;
            let ex = &mut self.ex;
            let outcome = catch_unwind(AssertUnwindSafe(|| ex.offer_chunk(&pending)));
            match outcome {
                Ok(()) => {
                    let processed = self.ex.report().records.saturating_sub(before);
                    self.consumed += processed;
                    self.heartbeat.beat(self.consumed);
                    self.prune();
                    if processed == 0 {
                        // A crash fuse fired before the first lane (the
                        // `has_crashed` guard exits the loop), or the
                        // chunk was consumed without progress — never
                        // spin either way.
                        return;
                    }
                }
                Err(_) => {
                    // A real panic escaped the vectorized probe: restart
                    // from the checkpoint and replay per record, which
                    // re-hits the death at its exact index and runs the
                    // normal poison state machine from there.
                    self.heartbeat.publish(ShardState::Dead);
                    self.health.panics_caught += 1;
                    self.scalar_fallback = true;
                    self.restart();
                    self.pump();
                    return;
                }
            }
        }
    }

    /// Feed closed: resolve any open stall (the deadline authority —
    /// end of stream means no further records can un-stick the shard),
    /// drain what remains, account shutdown loss for a crash-fuse dead
    /// process, and hand back the executor with the health ledger.
    pub(crate) fn close(mut self) -> (Executor, ShardHealth) {
        if self.stalled {
            self.declare_stuck();
        }
        self.pump();
        if self.ex.has_crashed() {
            let lost = self.received.saturating_sub(self.ex.report().records);
            self.ex.absorb_shutdown_loss(lost);
        }
        self.heartbeat.publish(ShardState::Done);
        self.health.state = ShardState::Done;
        self.health.records_unreplayed = self.ex.report().records_unreplayed;
        (self.ex, self.health)
    }

    /// Processes everything available, stopping at a stall or a
    /// crash-fuse death (which supervision deliberately leaves for
    /// manual recovery — `CrashPlan` models a dead *process*, not a
    /// dead thread).
    fn pump(&mut self) {
        while !self.stalled && !self.ex.has_crashed() && self.consumed < self.received {
            let i = self.consumed;
            if self.is_poisoned(i) {
                // Quarantined: skip, but account — replay after a later
                // restart re-applies this deterministically.
                self.ex.absorb_poisoned();
                self.consumed += 1;
                self.prune();
                continue;
            }
            if !self.stall_handled && self.fault.stall_at_record == Some(i) {
                self.stalled = true;
                self.heartbeat.publish(ShardState::Stuck);
                self.check_stall();
                continue;
            }
            let outcome = if self.panic_fires_left > 0 && self.fault.panic_at_record == Some(i) {
                // Raise the injected death inside the same boundary a
                // real one would hit.
                catch_unwind(|| panic_any(InjectedShardPanic))
            } else {
                let rec = self.buf[(i - self.buf_start) as usize];
                let ex = &mut self.ex;
                catch_unwind(AssertUnwindSafe(|| ex.process(&rec)))
            };
            match outcome {
                Ok(()) => {
                    self.consumed += 1;
                    self.heartbeat.beat(self.consumed);
                    self.prune();
                }
                Err(_) => self.on_panic(i),
            }
        }
    }

    fn is_poisoned(&self, i: u64) -> bool {
        self.health.poisoned.iter().any(|p| p.index == i)
    }

    /// A panic escaped `process` (or the injected fuse fired) at
    /// shard-local index `i`: track consecutive kills, quarantine at
    /// the threshold, and restart from the checkpoint either way.
    fn on_panic(&mut self, i: u64) {
        self.heartbeat.publish(ShardState::Dead);
        self.health.panics_caught += 1;
        if self.fault.panic_at_record == Some(i) && self.panic_fires_left > 0 {
            self.panic_fires_left -= 1;
        }
        if self.last_panic_index == Some(i) {
            self.panic_attempts += 1;
        } else {
            self.last_panic_index = Some(i);
            self.panic_attempts = 1;
        }
        if self.panic_attempts >= self.policy.poison_threshold {
            let record = self.buf[(i - self.buf_start) as usize];
            self.health.poisoned.push(PoisonRecord {
                shard: self.shard,
                index: i,
                record,
                attempts: self.panic_attempts,
                queries: self.queries.clone(),
            });
            self.last_panic_index = None;
            self.panic_attempts = 0;
        }
        self.restart();
    }

    /// The stall arbiter. Both thresholds are anchored at the stalled
    /// record's own index — a pure stream position — never at queue
    /// depth or arrival timing, so the verdict (self-resume vs. stuck)
    /// and its firing point are identical across runs.
    fn check_stall(&mut self) {
        if !self.stalled {
            return;
        }
        let s = self.fault.stall_at_record.unwrap_or(0);
        if self.fault.stall_records <= self.policy.stall_deadline {
            // The stall clears on its own before the deadline.
            if self.received >= s.saturating_add(self.fault.stall_records) {
                self.stalled = false;
                self.stall_handled = true;
                self.heartbeat.publish(ShardState::Healthy);
            }
        } else if self.received >= s.saturating_add(self.policy.stall_deadline) {
            self.declare_stuck();
        }
    }

    /// Deadline expired (or the feed closed mid-stall): the shard is
    /// stuck; restart it from its checkpoint.
    fn declare_stuck(&mut self) {
        self.health.stalls_detected += 1;
        self.stalled = false;
        self.stall_handled = true;
        self.restart();
    }

    /// Rebuilds the shard from its latest epoch-aligned snapshot +
    /// eviction log and rewinds consumption to replay the tail from the
    /// buffer. Where the buffer no longer reaches the checkpoint, the
    /// gap is absorbed as explicit degradation instead of aborting.
    fn restart(&mut self) {
        self.heartbeat.publish(ShardState::Restarting);
        self.health.restarts += 1;
        let (mut ex, hwm, stale) = match &self.store {
            Some(store) => self.restart_from_store(store.clone()),
            None => {
                let (ex, hwm) = self.restart_in_memory();
                (ex, hwm, false)
            }
        };
        ex.note_restart();
        let resume = hwm.max(self.buf_start);
        let gap = self.buf_start.saturating_sub(hwm);
        if stale {
            // The gap exists because recovery had to fall back past an
            // unreadable newer generation: the records are lost to
            // staleness, not buffer overrun, and the bounds ledger
            // accounts them under the distinct stale-fallback class.
            ex.absorb_stale_loss(gap);
        } else {
            ex.absorb_replay_gap(gap);
        }
        self.health.records_replayed += self.consumed.saturating_sub(resume);
        self.consumed = resume;
        self.ex = ex;
        self.heartbeat.publish(ShardState::Healthy);
    }

    /// Store-first restart: recover from the newest readable durable
    /// generation, degrading to older ones (quarantining corrupt
    /// candidates) as [`StoreHandle::recover_executor`] dictates.
    /// Returns `(executor, hwm, stale)` where `stale` reports whether
    /// any fallback happened — it decides which loss class an
    /// uncovered replay gap lands in.
    fn restart_from_store(&self, store: StoreHandle) -> (Executor, u64, bool) {
        let recovery = store.recover_executor(&self.cfg);
        let stale = recovery.fallbacks > 0;
        match recovery.executor {
            Some(ex) => {
                let hwm = recovery.records_hwm;
                if self.buf_start > hwm {
                    // Same rule as the in-memory path: a gap means the
                    // recovered WAL's open-epoch suffix would smuggle
                    // lost records' contributions back in, so re-recover
                    // the bare boundary state.
                    let snap = match ex.latest_snapshot() {
                        Some(snap) => snap.clone(),
                        None => return (ex, hwm, stale),
                    };
                    match self.cfg.build().recover(&snap, EvictionLog::new()) {
                        Ok(bare) => (bare.with_store(store), hwm, stale),
                        Err(_) => (ex, hwm, stale),
                    }
                } else {
                    (ex, hwm, stale)
                }
            }
            // Nothing durable was readable: start fresh with the store
            // re-attached so a genesis checkpoint re-seeds durability.
            None => (self.cfg.build().with_store(store), 0, stale),
        }
    }

    /// Legacy in-memory restart from the dead executor's own artifacts.
    fn restart_in_memory(&self) -> (Executor, u64) {
        match self.ex.durable_state() {
            Some((snap, log)) => {
                let hwm = snap.records_hwm;
                // If the replay buffer no longer reaches the checkpoint,
                // recover the bare boundary state: the write-ahead log
                // holds mid-epoch evictions from the very records the
                // gap declares lost, and replaying it would smuggle part
                // of their contribution back in — making the degradation
                // ledger overcount the loss. Dropping the open-epoch
                // suffix keeps `records_unreplayed` exact: every gap
                // record is wholly lost, every buffered record is wholly
                // re-processed.
                let log = if self.buf_start > hwm {
                    EvictionLog::new()
                } else {
                    log
                };
                match self.cfg.build().recover(&snap, log) {
                    Ok(ex) => (ex, hwm),
                    // Corrupt artifacts never abort a supervised shard:
                    // fall back to a fresh build and replay what the
                    // buffer still holds.
                    Err(_) => (self.cfg.build(), 0),
                }
            }
            None => (self.cfg.build(), 0),
        }
    }

    /// Advances the replay buffer's floor: nothing below the latest
    /// checkpoint's high-water mark is ever replayed again, and the
    /// processed prefix behind the consumption point is bounded by
    /// [`SupervisorPolicy::replay_capacity`].
    fn prune(&mut self) {
        let hwm = self.ex.latest_snapshot().map_or(0, |snap| snap.records_hwm);
        let floor = hwm
            .max(self.consumed.saturating_sub(self.policy.replay_capacity))
            .min(self.consumed);
        while self.buf_start < floor {
            self.buf.pop_front();
            self.buf_start += 1;
        }
    }
}
