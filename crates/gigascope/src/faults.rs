//! Deterministic fault-injection plans for chaos testing the pipeline.
//!
//! A [`FaultPlan`] bundles every disturbance the test harness can
//! inject, all derived from one seed so a failing run replays exactly:
//!
//! * **eviction loss / duplication** — applied inside the
//!   [`EvictionChannel`](crate::channel::EvictionChannel) on the
//!   LFTA → HFTA hop;
//! * **record bursts** — a window of epochs in which every record is
//!   replicated `amplification`×, modelling a traffic spike at the
//!   planned group distribution;
//! * **epoch-clock skew** — a constant shift of every record timestamp,
//!   modelling a NIC clock that disagrees with the host clock;
//! * **crashes** — a [`CrashPlan`] kills the executor at a precise
//!   record index or after a precise number of eviction offers (which
//!   can land mid-flush), so the checkpoint/recovery path
//!   ([`Executor::recover`](crate::Executor::recover)) can be exercised
//!   at any point of the pipeline.
//!
//! Channel faults are wired into an executor with
//! [`Executor::with_faults`](crate::Executor::with_faults); stream
//! faults are applied up front with [`FaultPlan::apply_to_stream`];
//! crashes are armed with
//! [`Executor::with_crash`](crate::Executor::with_crash).

use crate::channel::ChannelFaults;
use msa_stream::Record;

/// A burst window: epochs `[start_epoch, start_epoch + epochs)` see
/// every record `amplification` times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Burst {
    /// First amplified epoch (by record timestamp / epoch length).
    pub start_epoch: u64,
    /// Number of amplified epochs.
    pub epochs: u64,
    /// Replication factor (1 = no burst).
    pub amplification: u32,
    /// When false, extra copies are exact replicas — a pure *rate*
    /// burst that stresses intra-epoch maintenance but leaves table
    /// occupancy (and therefore flush cost) unchanged. When true, each
    /// extra copy gets deterministically perturbed attributes — new
    /// groups, modelling a DoS-style flood of fresh flows that blows up
    /// occupancy and the end-of-epoch flush as well.
    pub fresh_groups: bool,
}

/// A declarative crash point: the executor halts *as if the process
/// died* — no flush, no epoch close, no farewell snapshot — leaving
/// only the durable artifacts (last boundary snapshot + write-ahead
/// eviction log) for [`Executor::recover`](crate::Executor::recover).
///
/// Both fuses count *absolute* positions (record index since run start,
/// eviction offers since run start), so a crash point measured on a
/// fault-free baseline run lands at the identical pipeline state when
/// replayed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    /// Crash before processing the record with this 0-based index
    /// (`Some(0)` dies before the first record).
    pub at_record: Option<u64>,
    /// Crash after this many LFTA → HFTA eviction offers, i.e. right
    /// before offer `n + 1`. Offers happen both intra-epoch and inside
    /// the end-of-epoch scan, so a fuse between two boundary counts
    /// lands **mid-flush**.
    pub after_offers: Option<u64>,
}

impl CrashPlan {
    /// No crash.
    pub fn none() -> CrashPlan {
        CrashPlan::default()
    }

    /// Crash before processing record `index` (0-based).
    pub fn at_record(index: u64) -> CrashPlan {
        CrashPlan {
            at_record: Some(index),
            after_offers: None,
        }
    }

    /// Crash after `offers` eviction offers (before offer `offers + 1`).
    pub fn after_offers(offers: u64) -> CrashPlan {
        CrashPlan {
            at_record: None,
            after_offers: Some(offers),
        }
    }

    /// True if no fuse is armed.
    pub fn is_none(&self) -> bool {
        self.at_record.is_none() && self.after_offers.is_none()
    }
}

/// A declarative shard-level fault: the disturbances the shard
/// supervisor ([`crate::supervise`]) must absorb without aborting the
/// deployment. Both fuses count **shard-local** record indices (the
/// position in the shard's own partition), so a fault measured on a
/// baseline run lands at the identical pipeline state when replayed.
///
/// * **panic** — the shard thread panics right before processing the
///   record at `panic_at_record`, `panic_times` consecutive times. One
///   firing models a transient fault (the supervisor restarts the shard
///   from its checkpoint and replay makes the run bit-identical to a
///   fault-free one); firings at or above the supervisor's poison
///   threshold model a poison record, which gets quarantined.
/// * **stall** — upon reaching `stall_at_record` the shard stops making
///   progress while input keeps arriving. It resumes on its own after
///   `stall_records` further records have been fed, unless the
///   supervisor's stuck deadline expires first and restarts it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardFault {
    /// Panic before processing the shard-local record with this index.
    pub panic_at_record: Option<u64>,
    /// Consecutive times the panic fires before clearing (0 is
    /// normalized to 1 when a panic fuse is armed).
    pub panic_times: u32,
    /// Stop making progress upon reaching this shard-local record index.
    pub stall_at_record: Option<u64>,
    /// Records that must arrive while stalled before the shard resumes
    /// on its own.
    pub stall_records: u64,
}

impl ShardFault {
    /// No shard fault.
    pub fn none() -> ShardFault {
        ShardFault::default()
    }

    /// A transient panic: the shard dies once, right before processing
    /// shard-local record `index`.
    pub fn panic_at(index: u64) -> ShardFault {
        ShardFault {
            panic_at_record: Some(index),
            panic_times: 1,
            ..ShardFault::default()
        }
    }

    /// A deterministic killer: the panic at `index` re-fires `times`
    /// consecutive times — at or above the supervisor's poison
    /// threshold this models a poison record.
    pub fn panic_repeating(index: u64, times: u32) -> ShardFault {
        ShardFault {
            panic_at_record: Some(index),
            panic_times: times.max(1),
            ..ShardFault::default()
        }
    }

    /// A stall: the shard stops at shard-local record `index` and
    /// resumes only after `records` further records have arrived (or
    /// the supervisor restarts it, whichever the deadline decides).
    pub fn stall_at(index: u64, records: u64) -> ShardFault {
        ShardFault {
            stall_at_record: Some(index),
            stall_records: records,
            ..ShardFault::default()
        }
    }

    /// True if no fault is armed.
    pub fn is_none(&self) -> bool {
        self.panic_at_record.is_none() && self.stall_at_record.is_none()
    }
}

/// A seeded, declarative fault-injection plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every random decision the plan induces.
    pub seed: u64,
    /// Probability an LFTA → HFTA eviction is lost.
    pub eviction_loss: f64,
    /// Probability an eviction is delivered twice.
    pub eviction_duplication: f64,
    /// Optional record burst.
    pub burst: Option<Burst>,
    /// Constant timestamp shift in microseconds (negative = clock
    /// behind; timestamps saturate at 0).
    pub clock_skew_micros: i64,
}

impl FaultPlan {
    /// A no-op plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            eviction_loss: 0.0,
            eviction_duplication: 0.0,
            burst: None,
            clock_skew_micros: 0,
        }
    }

    /// Sets the eviction loss probability.
    pub fn with_eviction_loss(mut self, p: f64) -> FaultPlan {
        self.eviction_loss = p;
        self
    }

    /// Sets the eviction duplication probability.
    pub fn with_eviction_duplication(mut self, p: f64) -> FaultPlan {
        self.eviction_duplication = p;
        self
    }

    /// Adds a record burst.
    pub fn with_burst(mut self, burst: Burst) -> FaultPlan {
        self.burst = Some(burst);
        self
    }

    /// Adds a constant epoch-clock skew.
    pub fn with_clock_skew(mut self, micros: i64) -> FaultPlan {
        self.clock_skew_micros = micros;
        self
    }

    /// The channel-level faults of this plan.
    pub fn channel_faults(&self) -> ChannelFaults {
        ChannelFaults {
            loss_rate: self.eviction_loss,
            duplicate_rate: self.eviction_duplication,
        }
    }

    /// Applies the stream-level faults (clock skew, then burst windows
    /// judged on the skewed timestamps) to `records`, producing the
    /// disturbed stream an executor should actually see.
    pub fn apply_to_stream(&self, records: &[Record], epoch_micros: u64) -> Vec<Record> {
        let epoch_micros = epoch_micros.max(1);
        let mut out = Vec::with_capacity(records.len());
        for r in records {
            let ts = if self.clock_skew_micros >= 0 {
                r.ts_micros.saturating_add(self.clock_skew_micros as u64)
            } else {
                r.ts_micros
                    .saturating_sub(self.clock_skew_micros.unsigned_abs())
            };
            let rec = Record {
                attrs: r.attrs,
                ts_micros: ts,
            };
            let (copies, fresh) = match self.burst {
                Some(b) => {
                    let epoch = ts / epoch_micros;
                    if epoch >= b.start_epoch && epoch < b.start_epoch + b.epochs {
                        (b.amplification.max(1), b.fresh_groups)
                    } else {
                        (1, false)
                    }
                }
                None => (1, false),
            };
            out.push(rec);
            for j in 1..copies {
                let mut copy = rec;
                if fresh {
                    // Deterministic per-copy perturbation: each extra
                    // copy lands in a group no organic record occupies,
                    // seeded from the plan so a failing run replays.
                    let salt = self
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(u64::from(j)) as u32;
                    for a in &mut copy.attrs {
                        *a = a
                            .wrapping_mul(2_654_435_761)
                            .wrapping_add(salt)
                            .wrapping_add(j)
                            | 0x8000_0000;
                    }
                }
                out.push(copy);
            }
        }
        out
    }
}

/// Which nonstationarity a [`DriftPlan`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftKind {
    /// A share of the traffic concentrates on a small hot set of
    /// groups whose identity migrates every `period_epochs` — group
    /// popularity skew that moves. Concentration shrinks the effective
    /// cardinality (and collision rates) the plan was sized for; every
    /// migration shifts *which* groups are hot.
    HotspotMigration {
        /// Percent of records redirected to the hot set (0–100).
        share_pct: u32,
        /// Epochs between hot-set migrations.
        period_epochs: u64,
    },
    /// Attribute `attr`'s value space multiplies progressively across
    /// the window, reaching ≈ `factor`× its organic cardinality by the
    /// window's end — the group-count blowup that invalidates a plan's
    /// space allocation.
    CardinalityRamp {
        /// 0-based attribute column to inflate.
        attr: usize,
        /// Cardinality multiplier at the end of the window.
        factor: u32,
    },
    /// Attribute columns rotate left by `rotation` positions inside the
    /// window: the value distribution each grouping attribute sees is
    /// suddenly another attribute's — the query-mix shift where the
    /// *per-query* load changes while the total stream does not.
    QueryMixShift {
        /// Left-rotation distance (mod the record's attribute count).
        rotation: u32,
    },
}

/// A seeded, declarative nonstationary-drift injector: rewrites the
/// records of epochs `[start_epoch, start_epoch + epochs)` per its
/// [`DriftKind`], leaving everything outside the window untouched.
/// Purely a stream transform — apply before feeding the runtime — and
/// deterministic in `(seed, kind, window, input)`, so drifting runs
/// keep the repo's two-run bit-identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DriftPlan {
    /// Seed for every synthetic value the injector fabricates.
    pub seed: u64,
    /// The nonstationarity to inject.
    pub kind: DriftKind,
    /// First drifted epoch (by record timestamp / epoch length).
    pub start_epoch: u64,
    /// Number of drifted epochs.
    pub epochs: u64,
}

impl DriftPlan {
    /// Creates a plan drifting epochs `[start_epoch, start_epoch + epochs)`.
    pub fn new(seed: u64, kind: DriftKind, start_epoch: u64, epochs: u64) -> DriftPlan {
        DriftPlan {
            seed,
            kind,
            start_epoch,
            epochs,
        }
    }

    /// A cheap seeded mixer for per-record decisions.
    fn mix(&self, i: u64, salt: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z ^= z >> 30;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Applies the drift to `records`, producing the nonstationary
    /// stream a runtime should actually see. Record count is preserved
    /// exactly (drift changes *what* the records say, never how many).
    pub fn apply_to_stream(&self, records: &[Record], epoch_micros: u64) -> Vec<Record> {
        let epoch_micros = epoch_micros.max(1);
        let end_epoch = self.start_epoch.saturating_add(self.epochs);
        records
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let epoch = r.ts_micros / epoch_micros;
                if epoch < self.start_epoch || epoch >= end_epoch {
                    return *r;
                }
                let mut rec = *r;
                let i = i as u64;
                match self.kind {
                    DriftKind::HotspotMigration {
                        share_pct,
                        period_epochs,
                    } => {
                        if self.mix(i, 1) % 100 < u64::from(share_pct.min(100)) {
                            // The hot set: 4 groups per phase, all
                            // attributes pinned so every projection
                            // concentrates. High bit forced on keeps
                            // hot groups disjoint from organic ones.
                            let phase = (epoch - self.start_epoch) / period_epochs.max(1);
                            let hot = self.mix(self.mix(i, 2) % 4, phase.wrapping_add(3));
                            for a in &mut rec.attrs {
                                *a = (hot as u32) | 0x8000_0000;
                            }
                        }
                    }
                    DriftKind::CardinalityRamp { attr, factor } => {
                        if let Some(a) = rec.attrs.get_mut(attr) {
                            // Ramp level grows 1 → factor across the
                            // window; each record lands in one of
                            // `level` disjoint value planes.
                            let progress = epoch - self.start_epoch + 1;
                            let level =
                                (u64::from(factor.max(1)) * progress).div_ceil(self.epochs.max(1));
                            let plane = self.mix(i, 4) % level.max(1);
                            *a = a.wrapping_add((plane as u32).wrapping_mul(0x4000_0000 | 7));
                        }
                    }
                    DriftKind::QueryMixShift { rotation } => {
                        let n = rec.attrs.len();
                        if n > 0 {
                            rec.attrs.rotate_left(rotation as usize % n);
                        }
                    }
                }
                rec
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u32, step: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(&[i, 0, 0, 0], u64::from(i) * step))
            .collect()
    }

    #[test]
    fn noop_plan_returns_identical_stream() {
        let recs = records(100, 1000);
        let out = FaultPlan::new(1).apply_to_stream(&recs, 1_000_000);
        assert_eq!(out, recs);
    }

    #[test]
    fn burst_amplifies_only_its_window() {
        // 10 records per epoch (epoch = 10 ms, 1 ms apart).
        let recs = records(50, 1000);
        let plan = FaultPlan::new(1).with_burst(Burst {
            start_epoch: 1,
            epochs: 2,
            amplification: 4,
            fresh_groups: false,
        });
        let out = plan.apply_to_stream(&recs, 10_000);
        // Epochs 0, 3, 4 stay at 10 records; epochs 1 and 2 become 40.
        assert_eq!(out.len(), 30 + 2 * 40);
        let in_window = out
            .iter()
            .filter(|r| (1..3).contains(&(r.ts_micros / 10_000)))
            .count();
        assert_eq!(in_window, 80);
    }

    #[test]
    fn fresh_group_burst_creates_disjoint_groups() {
        let recs = records(50, 1000);
        let plan = FaultPlan::new(7).with_burst(Burst {
            start_epoch: 1,
            epochs: 2,
            amplification: 3,
            fresh_groups: true,
        });
        let out = plan.apply_to_stream(&recs, 10_000);
        assert_eq!(out.len(), 30 + 2 * 30);
        // Every original record survives untouched...
        for r in &recs {
            assert!(out.contains(r));
        }
        // ...and the synthetic copies occupy groups no organic record
        // uses (high bit forced on).
        let synthetic = out.iter().filter(|r| r.attrs[0] & 0x8000_0000 != 0).count();
        assert_eq!(synthetic, 2 * 20);
        // Deterministic: same plan, same stream.
        assert_eq!(out, plan.apply_to_stream(&recs, 10_000));
    }

    #[test]
    fn clock_skew_shifts_and_saturates() {
        let recs = records(3, 1000);
        let fwd = FaultPlan::new(1)
            .with_clock_skew(500)
            .apply_to_stream(&recs, 1_000_000);
        assert_eq!(fwd[1].ts_micros, 1500);
        let back = FaultPlan::new(1)
            .with_clock_skew(-1500)
            .apply_to_stream(&recs, 1_000_000);
        assert_eq!(back[0].ts_micros, 0, "saturates at zero");
        assert_eq!(back[2].ts_micros, 500);
    }

    #[test]
    fn hotspot_migration_concentrates_and_migrates() {
        // 10 records per epoch (epoch = 10 ms, 1 ms apart), window
        // epochs 1..5, migrating every 2 epochs.
        let recs = records(100, 1000);
        let plan = DriftPlan::new(
            42,
            DriftKind::HotspotMigration {
                share_pct: 60,
                period_epochs: 2,
            },
            1,
            4,
        );
        let out = plan.apply_to_stream(&recs, 10_000);
        assert_eq!(out.len(), recs.len(), "drift never changes the count");
        // Outside the window: untouched.
        assert_eq!(&out[..10], &recs[..10]);
        assert_eq!(&out[50..], &recs[50..]);
        // Inside: a majority share pinned to the hot set.
        let hot: Vec<&Record> = out[10..50]
            .iter()
            .filter(|r| r.attrs[0] & 0x8000_0000 != 0)
            .collect();
        assert!(hot.len() > 10, "hot share too small: {}", hot.len());
        // The hot set migrates between periods: phase 0 (epochs 1-2)
        // and phase 1 (epochs 3-4) share no group.
        let phase_groups = |lo: u64, hi: u64| -> std::collections::BTreeSet<[u32; 8]> {
            hot.iter()
                .filter(|r| (lo..hi).contains(&(r.ts_micros / 10_000)))
                .map(|r| r.attrs)
                .collect()
        };
        let p0 = phase_groups(1, 3);
        let p1 = phase_groups(3, 5);
        assert!(!p0.is_empty() && !p1.is_empty());
        assert!(p0.is_disjoint(&p1), "hot set failed to migrate");
        // Few groups per phase: that's what makes it a hotspot.
        assert!(p0.len() <= 4 && p1.len() <= 4);
        // Deterministic.
        assert_eq!(out, plan.apply_to_stream(&recs, 10_000));
    }

    #[test]
    fn cardinality_ramp_grows_the_value_space() {
        let recs: Vec<Record> = (0..400u32)
            .map(|i| Record::new(&[i % 5, 0, 0, 0], u64::from(i) * 250))
            .collect();
        // Epoch = 10 ms → 40 records per epoch; ramp attribute 0 to 8×
        // across epochs 2..10.
        let plan = DriftPlan::new(7, DriftKind::CardinalityRamp { attr: 0, factor: 8 }, 2, 8);
        let out = plan.apply_to_stream(&recs, 10_000);
        assert_eq!(out.len(), recs.len());
        let distinct = |lo: u64, hi: u64| -> usize {
            out.iter()
                .filter(|r| (lo..hi).contains(&(r.ts_micros / 10_000)))
                .map(|r| r.attrs[0])
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        };
        let before = distinct(0, 2);
        let late = distinct(8, 10);
        assert_eq!(before, 5, "pre-window cardinality untouched");
        assert!(
            late >= 3 * before,
            "ramp failed to inflate: {before} → {late}"
        );
        assert_eq!(out, plan.apply_to_stream(&recs, 10_000));
    }

    #[test]
    fn query_mix_shift_rotates_columns_in_window_only() {
        let recs: Vec<Record> = (0..30u32)
            .map(|i| Record::new(&[i, i + 100, i + 200, i + 300], u64::from(i) * 1000))
            .collect();
        let plan = DriftPlan::new(1, DriftKind::QueryMixShift { rotation: 1 }, 1, 1);
        let out = plan.apply_to_stream(&recs, 10_000);
        // Epoch 0 untouched.
        assert_eq!(out[5], recs[5]);
        // Epoch 1 rotated left by one.
        let mut expected = recs[15].attrs;
        expected.rotate_left(1);
        assert_eq!(out[15].attrs, expected);
        // Epoch 2 untouched.
        assert_eq!(out[25], recs[25]);
    }

    #[test]
    fn channel_faults_carry_the_rates() {
        let plan = FaultPlan::new(9)
            .with_eviction_loss(0.1)
            .with_eviction_duplication(0.05);
        let f = plan.channel_faults();
        assert_eq!(f.loss_rate, 0.1);
        assert_eq!(f.duplicate_rate, 0.05);
    }
}
