//! Deterministic fault-injection plans for chaos testing the pipeline.
//!
//! A [`FaultPlan`] bundles every disturbance the test harness can
//! inject, all derived from one seed so a failing run replays exactly:
//!
//! * **eviction loss / duplication** — applied inside the
//!   [`EvictionChannel`](crate::channel::EvictionChannel) on the
//!   LFTA → HFTA hop;
//! * **record bursts** — a window of epochs in which every record is
//!   replicated `amplification`×, modelling a traffic spike at the
//!   planned group distribution;
//! * **epoch-clock skew** — a constant shift of every record timestamp,
//!   modelling a NIC clock that disagrees with the host clock;
//! * **crashes** — a [`CrashPlan`] kills the executor at a precise
//!   record index or after a precise number of eviction offers (which
//!   can land mid-flush), so the checkpoint/recovery path
//!   ([`Executor::recover`](crate::Executor::recover)) can be exercised
//!   at any point of the pipeline.
//!
//! Channel faults are wired into an executor with
//! [`Executor::with_faults`](crate::Executor::with_faults); stream
//! faults are applied up front with [`FaultPlan::apply_to_stream`];
//! crashes are armed with
//! [`Executor::with_crash`](crate::Executor::with_crash).

use crate::channel::ChannelFaults;
use msa_stream::Record;

/// A burst window: epochs `[start_epoch, start_epoch + epochs)` see
/// every record `amplification` times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Burst {
    /// First amplified epoch (by record timestamp / epoch length).
    pub start_epoch: u64,
    /// Number of amplified epochs.
    pub epochs: u64,
    /// Replication factor (1 = no burst).
    pub amplification: u32,
    /// When false, extra copies are exact replicas — a pure *rate*
    /// burst that stresses intra-epoch maintenance but leaves table
    /// occupancy (and therefore flush cost) unchanged. When true, each
    /// extra copy gets deterministically perturbed attributes — new
    /// groups, modelling a DoS-style flood of fresh flows that blows up
    /// occupancy and the end-of-epoch flush as well.
    pub fresh_groups: bool,
}

/// A declarative crash point: the executor halts *as if the process
/// died* — no flush, no epoch close, no farewell snapshot — leaving
/// only the durable artifacts (last boundary snapshot + write-ahead
/// eviction log) for [`Executor::recover`](crate::Executor::recover).
///
/// Both fuses count *absolute* positions (record index since run start,
/// eviction offers since run start), so a crash point measured on a
/// fault-free baseline run lands at the identical pipeline state when
/// replayed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    /// Crash before processing the record with this 0-based index
    /// (`Some(0)` dies before the first record).
    pub at_record: Option<u64>,
    /// Crash after this many LFTA → HFTA eviction offers, i.e. right
    /// before offer `n + 1`. Offers happen both intra-epoch and inside
    /// the end-of-epoch scan, so a fuse between two boundary counts
    /// lands **mid-flush**.
    pub after_offers: Option<u64>,
}

impl CrashPlan {
    /// No crash.
    pub fn none() -> CrashPlan {
        CrashPlan::default()
    }

    /// Crash before processing record `index` (0-based).
    pub fn at_record(index: u64) -> CrashPlan {
        CrashPlan {
            at_record: Some(index),
            after_offers: None,
        }
    }

    /// Crash after `offers` eviction offers (before offer `offers + 1`).
    pub fn after_offers(offers: u64) -> CrashPlan {
        CrashPlan {
            at_record: None,
            after_offers: Some(offers),
        }
    }

    /// True if no fuse is armed.
    pub fn is_none(&self) -> bool {
        self.at_record.is_none() && self.after_offers.is_none()
    }
}

/// A declarative shard-level fault: the disturbances the shard
/// supervisor ([`crate::supervise`]) must absorb without aborting the
/// deployment. Both fuses count **shard-local** record indices (the
/// position in the shard's own partition), so a fault measured on a
/// baseline run lands at the identical pipeline state when replayed.
///
/// * **panic** — the shard thread panics right before processing the
///   record at `panic_at_record`, `panic_times` consecutive times. One
///   firing models a transient fault (the supervisor restarts the shard
///   from its checkpoint and replay makes the run bit-identical to a
///   fault-free one); firings at or above the supervisor's poison
///   threshold model a poison record, which gets quarantined.
/// * **stall** — upon reaching `stall_at_record` the shard stops making
///   progress while input keeps arriving. It resumes on its own after
///   `stall_records` further records have been fed, unless the
///   supervisor's stuck deadline expires first and restarts it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardFault {
    /// Panic before processing the shard-local record with this index.
    pub panic_at_record: Option<u64>,
    /// Consecutive times the panic fires before clearing (0 is
    /// normalized to 1 when a panic fuse is armed).
    pub panic_times: u32,
    /// Stop making progress upon reaching this shard-local record index.
    pub stall_at_record: Option<u64>,
    /// Records that must arrive while stalled before the shard resumes
    /// on its own.
    pub stall_records: u64,
}

impl ShardFault {
    /// No shard fault.
    pub fn none() -> ShardFault {
        ShardFault::default()
    }

    /// A transient panic: the shard dies once, right before processing
    /// shard-local record `index`.
    pub fn panic_at(index: u64) -> ShardFault {
        ShardFault {
            panic_at_record: Some(index),
            panic_times: 1,
            ..ShardFault::default()
        }
    }

    /// A deterministic killer: the panic at `index` re-fires `times`
    /// consecutive times — at or above the supervisor's poison
    /// threshold this models a poison record.
    pub fn panic_repeating(index: u64, times: u32) -> ShardFault {
        ShardFault {
            panic_at_record: Some(index),
            panic_times: times.max(1),
            ..ShardFault::default()
        }
    }

    /// A stall: the shard stops at shard-local record `index` and
    /// resumes only after `records` further records have arrived (or
    /// the supervisor restarts it, whichever the deadline decides).
    pub fn stall_at(index: u64, records: u64) -> ShardFault {
        ShardFault {
            stall_at_record: Some(index),
            stall_records: records,
            ..ShardFault::default()
        }
    }

    /// True if no fault is armed.
    pub fn is_none(&self) -> bool {
        self.panic_at_record.is_none() && self.stall_at_record.is_none()
    }
}

/// A seeded, declarative fault-injection plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every random decision the plan induces.
    pub seed: u64,
    /// Probability an LFTA → HFTA eviction is lost.
    pub eviction_loss: f64,
    /// Probability an eviction is delivered twice.
    pub eviction_duplication: f64,
    /// Optional record burst.
    pub burst: Option<Burst>,
    /// Constant timestamp shift in microseconds (negative = clock
    /// behind; timestamps saturate at 0).
    pub clock_skew_micros: i64,
}

impl FaultPlan {
    /// A no-op plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            eviction_loss: 0.0,
            eviction_duplication: 0.0,
            burst: None,
            clock_skew_micros: 0,
        }
    }

    /// Sets the eviction loss probability.
    pub fn with_eviction_loss(mut self, p: f64) -> FaultPlan {
        self.eviction_loss = p;
        self
    }

    /// Sets the eviction duplication probability.
    pub fn with_eviction_duplication(mut self, p: f64) -> FaultPlan {
        self.eviction_duplication = p;
        self
    }

    /// Adds a record burst.
    pub fn with_burst(mut self, burst: Burst) -> FaultPlan {
        self.burst = Some(burst);
        self
    }

    /// Adds a constant epoch-clock skew.
    pub fn with_clock_skew(mut self, micros: i64) -> FaultPlan {
        self.clock_skew_micros = micros;
        self
    }

    /// The channel-level faults of this plan.
    pub fn channel_faults(&self) -> ChannelFaults {
        ChannelFaults {
            loss_rate: self.eviction_loss,
            duplicate_rate: self.eviction_duplication,
        }
    }

    /// Applies the stream-level faults (clock skew, then burst windows
    /// judged on the skewed timestamps) to `records`, producing the
    /// disturbed stream an executor should actually see.
    pub fn apply_to_stream(&self, records: &[Record], epoch_micros: u64) -> Vec<Record> {
        let epoch_micros = epoch_micros.max(1);
        let mut out = Vec::with_capacity(records.len());
        for r in records {
            let ts = if self.clock_skew_micros >= 0 {
                r.ts_micros.saturating_add(self.clock_skew_micros as u64)
            } else {
                r.ts_micros
                    .saturating_sub(self.clock_skew_micros.unsigned_abs())
            };
            let rec = Record {
                attrs: r.attrs,
                ts_micros: ts,
            };
            let (copies, fresh) = match self.burst {
                Some(b) => {
                    let epoch = ts / epoch_micros;
                    if epoch >= b.start_epoch && epoch < b.start_epoch + b.epochs {
                        (b.amplification.max(1), b.fresh_groups)
                    } else {
                        (1, false)
                    }
                }
                None => (1, false),
            };
            out.push(rec);
            for j in 1..copies {
                let mut copy = rec;
                if fresh {
                    // Deterministic per-copy perturbation: each extra
                    // copy lands in a group no organic record occupies,
                    // seeded from the plan so a failing run replays.
                    let salt = self
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(u64::from(j)) as u32;
                    for a in &mut copy.attrs {
                        *a = a
                            .wrapping_mul(2_654_435_761)
                            .wrapping_add(salt)
                            .wrapping_add(j)
                            | 0x8000_0000;
                    }
                }
                out.push(copy);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u32, step: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(&[i, 0, 0, 0], u64::from(i) * step))
            .collect()
    }

    #[test]
    fn noop_plan_returns_identical_stream() {
        let recs = records(100, 1000);
        let out = FaultPlan::new(1).apply_to_stream(&recs, 1_000_000);
        assert_eq!(out, recs);
    }

    #[test]
    fn burst_amplifies_only_its_window() {
        // 10 records per epoch (epoch = 10 ms, 1 ms apart).
        let recs = records(50, 1000);
        let plan = FaultPlan::new(1).with_burst(Burst {
            start_epoch: 1,
            epochs: 2,
            amplification: 4,
            fresh_groups: false,
        });
        let out = plan.apply_to_stream(&recs, 10_000);
        // Epochs 0, 3, 4 stay at 10 records; epochs 1 and 2 become 40.
        assert_eq!(out.len(), 30 + 2 * 40);
        let in_window = out
            .iter()
            .filter(|r| (1..3).contains(&(r.ts_micros / 10_000)))
            .count();
        assert_eq!(in_window, 80);
    }

    #[test]
    fn fresh_group_burst_creates_disjoint_groups() {
        let recs = records(50, 1000);
        let plan = FaultPlan::new(7).with_burst(Burst {
            start_epoch: 1,
            epochs: 2,
            amplification: 3,
            fresh_groups: true,
        });
        let out = plan.apply_to_stream(&recs, 10_000);
        assert_eq!(out.len(), 30 + 2 * 30);
        // Every original record survives untouched...
        for r in &recs {
            assert!(out.contains(r));
        }
        // ...and the synthetic copies occupy groups no organic record
        // uses (high bit forced on).
        let synthetic = out.iter().filter(|r| r.attrs[0] & 0x8000_0000 != 0).count();
        assert_eq!(synthetic, 2 * 20);
        // Deterministic: same plan, same stream.
        assert_eq!(out, plan.apply_to_stream(&recs, 10_000));
    }

    #[test]
    fn clock_skew_shifts_and_saturates() {
        let recs = records(3, 1000);
        let fwd = FaultPlan::new(1)
            .with_clock_skew(500)
            .apply_to_stream(&recs, 1_000_000);
        assert_eq!(fwd[1].ts_micros, 1500);
        let back = FaultPlan::new(1)
            .with_clock_skew(-1500)
            .apply_to_stream(&recs, 1_000_000);
        assert_eq!(back[0].ts_micros, 0, "saturates at zero");
        assert_eq!(back[2].ts_micros, 500);
    }

    #[test]
    fn channel_faults_carry_the_rates() {
        let plan = FaultPlan::new(9)
            .with_eviction_loss(0.1)
            .with_eviction_duplication(0.05);
        let f = plan.channel_faults();
        assert_eq!(f.loss_rate, 0.1);
        assert_eq!(f.duplicate_rate, 0.05);
    }
}
