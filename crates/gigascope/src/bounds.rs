//! Guaranteed count intervals over the loss ledgers: the degraded-answer
//! subsystem.
//!
//! Every record the pipeline fails to aggregate is already accounted in
//! an explicit ledger — guard shedding, channel faults, poison
//! quarantine, replay-buffer overruns, shutdown losses, crash
//! abandonment. This module turns those ledgers into per-query
//! **guaranteed intervals** `[lo, hi]` such that the fault-free true
//! count always lies inside:
//!
//! * every *undercounting* loss class widens `hi` (the lost record might
//!   have reached this query),
//! * every *overcounting* fault (channel duplication) widens `lo`
//!   downward (an observed record might be a duplicate),
//! * mass that is merely *still in flight* (parked in LFTA tables or the
//!   HFTA's open epoch) is not an error at all — it is reported
//!   separately as [`QueryBounds::in_flight`] so progressive mid-epoch
//!   answers stay sound while boundary answers stay tight.
//!
//! At an epoch boundary of a fault-free run every ledger is zero and
//! nothing is in flight, so `lo == hi == observed`: exactness is the
//! degenerate interval, not a separate code path. All interval state is
//! additive, which makes [`BoundsReport::merge`] a commutative sum —
//! shards fold bit-identically in any order — and lets snapshots persist
//! the inputs rather than the intervals.
//!
//! The guard-side knob is [`crate::guard::DegradationPolicy`]; the
//! report carries the guard's `records_lost` budget odometer and the
//! latched `bound_breached` flag so operators see *whether the promised
//! width still holds*, not just how wide the interval is.

use crate::executor::RunReport;
use crate::hfta::Hfta;
use msa_stream::{AttrSet, GroupKey};
use std::fmt;

/// Why a record is missing from (or double-counted in) a query answer.
///
/// Classes are disjoint: each lost record is attributed to exactly one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LossClass {
    /// Load-shed by the overload guard before probing any table.
    GuardShed,
    /// Lost by a faulty eviction channel on the way to the HFTA.
    ChannelDropped,
    /// Delivered twice by a faulty eviction channel (overcount).
    ChannelDuplicated,
    /// Quarantined by the supervisor as a poison record.
    PoisonQuarantined,
    /// Evicted from the bounded replay buffer before a restart replay.
    ReplayOverrun,
    /// Still in flight on a crashed shard's feed at shutdown.
    ShutdownLost,
    /// Lost because recovery fell back to an older durable generation
    /// and the replay buffer could not reach back far enough.
    StaleFallback,
    /// Stranded in tables or the open epoch of an unrecovered executor.
    Abandoned,
}

impl fmt::Display for LossClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LossClass::GuardShed => "guard-shed",
            LossClass::ChannelDropped => "channel-dropped",
            LossClass::ChannelDuplicated => "channel-duplicated",
            LossClass::PoisonQuarantined => "poison-quarantined",
            LossClass::ReplayOverrun => "replay-overrun",
            LossClass::ShutdownLost => "shutdown-lost",
            LossClass::StaleFallback => "stale-fallback",
            LossClass::Abandoned => "abandoned",
        };
        f.write_str(name)
    }
}

/// Per-query loss mass, broken out by [`LossClass`].
///
/// All fields are additive record counts; merging is a plain sum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LossBreakdown {
    /// [`LossClass::GuardShed`] mass (undercount).
    pub guard_shed: u64,
    /// [`LossClass::ChannelDropped`] mass (undercount).
    pub channel_dropped: u64,
    /// [`LossClass::ChannelDuplicated`] mass (overcount).
    pub channel_duplicated: u64,
    /// [`LossClass::PoisonQuarantined`] mass (undercount).
    pub poison_quarantined: u64,
    /// [`LossClass::ReplayOverrun`] mass (undercount).
    pub replay_overrun: u64,
    /// [`LossClass::ShutdownLost`] mass (undercount).
    pub shutdown_lost: u64,
    /// [`LossClass::StaleFallback`] mass (undercount).
    pub stale_fallback: u64,
    /// [`LossClass::Abandoned`] mass (undercount).
    pub abandoned: u64,
}

impl LossBreakdown {
    /// Total mass that may be missing from the observed count.
    pub fn undercount(&self) -> u64 {
        self.guard_shed
            + self.channel_dropped
            + self.poison_quarantined
            + self.replay_overrun
            + self.shutdown_lost
            + self.stale_fallback
            + self.abandoned
    }

    /// Total mass that may be double-counted in the observed count.
    pub fn overcount(&self) -> u64 {
        self.channel_duplicated
    }

    /// Total attributed loss mass across every class.
    pub fn total(&self) -> u64 {
        self.undercount() + self.overcount()
    }

    /// The breakdown as `(class, mass)` pairs, in declaration order.
    pub fn classes(&self) -> [(LossClass, u64); 8] {
        [
            (LossClass::GuardShed, self.guard_shed),
            (LossClass::ChannelDropped, self.channel_dropped),
            (LossClass::ChannelDuplicated, self.channel_duplicated),
            (LossClass::PoisonQuarantined, self.poison_quarantined),
            (LossClass::ReplayOverrun, self.replay_overrun),
            (LossClass::ShutdownLost, self.shutdown_lost),
            (LossClass::StaleFallback, self.stale_fallback),
            (LossClass::Abandoned, self.abandoned),
        ]
    }

    /// Sums another breakdown into this one.
    ///
    /// Exhaustive destructure on purpose: adding a loss class without
    /// deciding how it merges must be a compile error here.
    pub fn merge(&mut self, other: &LossBreakdown) {
        let LossBreakdown {
            guard_shed,
            channel_dropped,
            channel_duplicated,
            poison_quarantined,
            replay_overrun,
            shutdown_lost,
            stale_fallback,
            abandoned,
        } = *other;
        self.guard_shed += guard_shed;
        self.channel_dropped += channel_dropped;
        self.channel_duplicated += channel_duplicated;
        self.poison_quarantined += poison_quarantined;
        self.replay_overrun += replay_overrun;
        self.shutdown_lost += shutdown_lost;
        self.stale_fallback += stale_fallback;
        self.abandoned += abandoned;
    }
}

/// The guaranteed count interval for one query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryBounds {
    /// The query (its group-by attribute set).
    pub query: AttrSet,
    /// Count mass that reached finished HFTA results.
    pub observed: u64,
    /// Mass processed but not yet in a finished result: parked in LFTA
    /// tables or the HFTA's open epoch. Zero at every epoch boundary.
    /// Progress, not error — it widens only the upper *group* bound
    /// (an in-flight record's group is unknown) and is reported
    /// separately from the loss-derived interval.
    pub in_flight: u64,
    /// Loss mass attributed to this query, by class.
    pub losses: LossBreakdown,
    /// Per-group observed counts, sorted by group key for bit-identical
    /// output regardless of shard count or merge order.
    pub groups: Vec<(GroupKey, u64)>,
}

impl QueryBounds {
    /// Guaranteed lower bound on the fault-free true count.
    pub fn lo(&self) -> u64 {
        self.observed.saturating_sub(self.losses.overcount())
    }

    /// Guaranteed upper bound on the fault-free true count.
    pub fn hi(&self) -> u64 {
        self.observed.saturating_add(self.losses.undercount())
    }

    /// Interval width `hi - lo`; the promised `max_width` budget of
    /// [`crate::guard::DegradationPolicy::BoundedApprox`] caps this.
    pub fn width(&self) -> u64 {
        self.hi() - self.lo()
    }

    /// Upper bound that also covers still-in-flight mass — the
    /// conservative progressive bound for a mid-epoch query. Equal to
    /// [`QueryBounds::hi`] at every epoch boundary.
    pub fn hi_progressive(&self) -> u64 {
        self.hi().saturating_add(self.in_flight)
    }

    /// True when the interval is degenerate (`lo == hi`): the answer is
    /// exact. Holds at every boundary of a fault-free run.
    pub fn is_exact(&self) -> bool {
        self.lo() == self.hi()
    }

    /// Whether `true_count` is consistent with this interval.
    pub fn contains(&self, true_count: u64) -> bool {
        self.lo() <= true_count && true_count <= self.hi()
    }

    /// Guaranteed interval for a single group's count.
    ///
    /// Loss mass is not attributed to groups (a shed record's group was
    /// never computed), so every group's bound widens by the query's
    /// full undercount plus any in-flight mass; duplicated mass may
    /// have landed in this group, so `lo` gives it all back. A group
    /// never seen yields `[0, undercount + in_flight]`.
    pub fn group_bounds(&self, key: GroupKey) -> (u64, u64) {
        let observed = self
            .groups
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |&(_, n)| n);
        let lo = observed.saturating_sub(self.losses.overcount());
        let hi = observed
            .saturating_add(self.losses.undercount())
            .saturating_add(self.in_flight);
        (lo, hi)
    }

    /// Sums another shard's partial interval state for the same query.
    pub fn merge(&mut self, other: &QueryBounds) {
        assert_eq!(
            self.query.bits(),
            other.query.bits(),
            "merging bounds of different queries"
        );
        self.observed += other.observed;
        self.in_flight += other.in_flight;
        self.losses.merge(&other.losses);
        for &(key, n) in &other.groups {
            match self.groups.iter_mut().find(|(k, _)| *k == key) {
                Some(slot) => slot.1 += n,
                None => self.groups.push((key, n)),
            }
        }
        self.groups
            .sort_unstable_by(|a, b| a.0.values().cmp(b.0.values()));
    }
}

/// The degraded-answer report: one guaranteed interval per query, plus
/// the run-level degradation telemetry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BoundsReport {
    /// Per-query intervals, in plan query order.
    pub queries: Vec<QueryBounds>,
    /// Records the guard *refused* to shed because shedding them would
    /// have broken the promised bound (they were processed instead).
    pub records_shed_denied: u64,
    /// Record mass charged against the degradation budget across every
    /// guard that fed this report (the guard's `records_lost` odometer).
    pub records_lost: u64,
    /// Records successfully re-fed from replay buffers after restarts —
    /// mass that supervision *saved* from becoming interval width.
    pub records_replayed: u64,
    /// Latched true the moment any contributing guard saw losses exceed
    /// its [`crate::guard::DegradationPolicy`] budget. The intervals
    /// are still sound when this is set; the *promise* is what broke.
    pub bound_breached: bool,
}

impl BoundsReport {
    /// Derives the guaranteed intervals from a run's ledgers.
    ///
    /// Sound at any instant; *tight* at epoch boundaries, where
    /// in-flight mass is zero and every processed record is either in a
    /// finished result or in exactly one loss ledger. Requires the HFTA
    /// to retain finished results (the default).
    pub fn from_run(report: &RunReport, hfta: &Hfta, queries: &[AttrSet]) -> BoundsReport {
        BoundsReport::from_ledgers(report, queries, |q| hfta.totals(q).into_iter().collect())
    }

    /// The ledger-to-interval core behind [`BoundsReport::from_run`],
    /// decoupled from the HFTA: `totals` supplies one query's observed
    /// per-group counts from whatever store holds them (an [`Hfta`], an
    /// engine's retired epoch results, …). Every layer that can produce
    /// a [`RunReport`] derives its intervals through this one function,
    /// so the interval algebra cannot fork between layers.
    pub fn from_ledgers<F>(report: &RunReport, queries: &[AttrSet], totals: F) -> BoundsReport
    where
        F: Fn(AttrSet) -> Vec<(GroupKey, u64)>,
    {
        // Mass shed by the guard proper: `records_shed` also absorbs
        // replay overruns, shutdown losses and stale-fallback losses,
        // which get their own classes below.
        let guard_shed = report
            .records_shed
            .saturating_sub(report.records_unreplayed)
            .saturating_sub(report.records_shutdown_lost)
            .saturating_sub(report.records_stale_lost);
        // Mass that entered the tables: everything seen minus the
        // filtered, the shed (incl. overrun/shutdown), and the poisoned.
        let processed =
            report.records - report.filtered_out - report.records_shed - report.records_poisoned;
        let mut out = BoundsReport {
            queries: Vec::with_capacity(queries.len()),
            records_shed_denied: report.records_shed_denied,
            records_lost: 0,
            records_replayed: 0,
            bound_breached: report.bound_breached,
        };
        for &query in queries {
            let dropped = report.dropped_records_for(query);
            let duplicated = report.duplicated_records_for(query);
            let abandoned = report.abandoned_records_for(query);
            let mut groups: Vec<(GroupKey, u64)> = totals(query);
            let observed: u64 = groups.iter().map(|&(_, n)| n).sum();
            groups.sort_unstable_by(|a, b| a.0.values().cmp(b.0.values()));
            // What this query should have observed given the ledgers;
            // the shortfall is mass still working through the pipeline.
            let expected = (processed + duplicated).saturating_sub(dropped + abandoned);
            let in_flight = expected.saturating_sub(observed);
            out.queries.push(QueryBounds {
                query,
                observed,
                in_flight,
                losses: LossBreakdown {
                    guard_shed,
                    channel_dropped: dropped,
                    channel_duplicated: duplicated,
                    poison_quarantined: report.records_poisoned,
                    replay_overrun: report.records_unreplayed,
                    shutdown_lost: report.records_shutdown_lost,
                    stale_fallback: report.records_stale_lost,
                    abandoned,
                },
                groups,
            });
        }
        out
    }

    /// Derives the intervals of a *finished* run from the pair
    /// [`crate::executor::Executor::finish`] (or the sharded
    /// equivalent) returned — the query list comes from the HFTA.
    pub fn at_finish(report: &RunReport, hfta: &Hfta) -> BoundsReport {
        let queries: Vec<AttrSet> = hfta.queries().to_vec();
        BoundsReport::from_run(report, hfta, &queries)
    }

    /// The interval for one query, if it is part of this report.
    pub fn for_query(&self, query: AttrSet) -> Option<&QueryBounds> {
        self.queries.iter().find(|b| b.query.bits() == query.bits())
    }

    /// Widest per-query interval in the report — the number an operator
    /// compares against a `BoundedApprox { max_width }` promise.
    pub fn max_width(&self) -> u64 {
        self.queries
            .iter()
            .map(QueryBounds::width)
            .max()
            .unwrap_or(0)
    }

    /// True when every query's interval is degenerate.
    pub fn is_exact(&self) -> bool {
        self.queries.iter().all(QueryBounds::is_exact)
    }

    /// Latches the breach flag (guard saw losses exceed its budget).
    pub(crate) fn flag_breached(&mut self) {
        self.bound_breached = true;
    }

    /// Folds another shard's partial report into this one. Commutative
    /// and associative: every field is a sum (or an OR), and per-query
    /// group vectors re-sort canonically, so any fold order over any
    /// shard partition produces bit-identical bytes.
    ///
    /// Exhaustive destructure on purpose: a new report field that is
    /// not merged must fail to compile, not silently vanish on the
    /// sharded path.
    pub fn merge(&mut self, other: &BoundsReport) {
        let BoundsReport {
            queries,
            records_shed_denied,
            records_lost,
            records_replayed,
            bound_breached,
        } = other;
        for theirs in queries {
            match self
                .queries
                .iter_mut()
                .find(|b| b.query.bits() == theirs.query.bits())
            {
                Some(ours) => ours.merge(theirs),
                None => self.queries.push(theirs.clone()),
            }
        }
        self.queries.sort_by_key(|b| b.query.bits());
        self.records_shed_denied += records_shed_denied;
        self.records_lost += records_lost;
        self.records_replayed += records_replayed;
        self.bound_breached |= bound_breached;
    }
}

impl fmt::Display for QueryBounds {
    /// `observed=… in [lo, hi] (±w)` — the progressive-answer line the
    /// examples print per epoch.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "observed={} in [{}, {}] (width {}{})",
            self.observed,
            self.lo(),
            self.hi(),
            self.width(),
            if self.in_flight > 0 {
                format!(", {} in flight", self.in_flight)
            } else {
                String::new()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(attrs: &[u8]) -> AttrSet {
        AttrSet::from_attrs(attrs.iter().copied())
    }

    fn g(vals: &[u32]) -> GroupKey {
        GroupKey::from_values(vals)
    }

    #[test]
    fn degenerate_interval_without_losses() {
        let b = QueryBounds {
            query: q(&[0]),
            observed: 42,
            ..QueryBounds::default()
        };
        assert_eq!((b.lo(), b.hi()), (42, 42));
        assert!(b.is_exact());
        assert!(b.contains(42));
        assert!(!b.contains(41));
        assert_eq!(b.width(), 0);
    }

    #[test]
    fn undercount_raises_hi_and_overcount_lowers_lo() {
        let b = QueryBounds {
            query: q(&[0]),
            observed: 100,
            losses: LossBreakdown {
                guard_shed: 5,
                channel_dropped: 3,
                channel_duplicated: 2,
                poison_quarantined: 1,
                replay_overrun: 4,
                shutdown_lost: 6,
                stale_fallback: 2,
                abandoned: 7,
            },
            ..QueryBounds::default()
        };
        assert_eq!(b.losses.undercount(), 5 + 3 + 1 + 4 + 6 + 2 + 7);
        assert_eq!(b.losses.overcount(), 2);
        assert_eq!(b.losses.total(), 30);
        assert_eq!(b.lo(), 98);
        assert_eq!(b.hi(), 128);
        assert_eq!(b.width(), 30);
        assert!(b.contains(98) && b.contains(128) && !b.contains(97));
        // Every class shows up exactly once in the display breakdown.
        assert_eq!(b.losses.classes().len(), 8);
        let summed: u64 = b.losses.classes().iter().map(|&(_, n)| n).sum();
        assert_eq!(summed, b.losses.total());
    }

    #[test]
    fn group_bounds_share_the_query_slack() {
        let b = QueryBounds {
            query: q(&[0]),
            observed: 30,
            in_flight: 4,
            losses: LossBreakdown {
                guard_shed: 10,
                channel_duplicated: 2,
                ..LossBreakdown::default()
            },
            groups: vec![(g(&[1]), 20), (g(&[2]), 10)],
        };
        assert_eq!(b.group_bounds(g(&[1])), (18, 34));
        assert_eq!(b.group_bounds(g(&[2])), (8, 24));
        // A group never observed could still own all the lost mass.
        assert_eq!(b.group_bounds(g(&[3])), (0, 14));
    }

    #[test]
    fn merge_is_commutative_and_canonically_sorted() {
        let mk = |obs, groups: Vec<(GroupKey, u64)>, shed, dup| QueryBounds {
            query: q(&[0, 1]),
            observed: obs,
            in_flight: 1,
            losses: LossBreakdown {
                guard_shed: shed,
                channel_duplicated: dup,
                ..LossBreakdown::default()
            },
            groups,
        };
        let a = BoundsReport {
            queries: vec![mk(10, vec![(g(&[2, 2]), 6), (g(&[1, 1]), 4)], 3, 1)],
            records_shed_denied: 2,
            records_lost: 3,
            records_replayed: 5,
            bound_breached: false,
        };
        let b = BoundsReport {
            queries: vec![mk(7, vec![(g(&[1, 1]), 7)], 1, 0)],
            records_shed_denied: 1,
            records_lost: 1,
            records_replayed: 0,
            bound_breached: true,
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let m = ab.for_query(q(&[0, 1])).unwrap();
        assert_eq!(m.observed, 17);
        assert_eq!(m.in_flight, 2);
        assert_eq!(m.losses.guard_shed, 4);
        assert_eq!(m.groups, vec![(g(&[1, 1]), 11), (g(&[2, 2]), 6)]);
        assert_eq!((m.lo(), m.hi()), (16, 21));
        assert_eq!(ab.records_shed_denied, 3);
        assert_eq!(ab.records_lost, 4);
        assert_eq!(ab.records_replayed, 5);
        assert!(ab.bound_breached);
        assert_eq!(ab.max_width(), 5);
        assert!(!ab.is_exact());
    }

    #[test]
    fn from_run_splits_shed_mass_into_disjoint_classes() {
        use crate::executor::RunReport;
        let query = q(&[0]);
        let mut report = RunReport {
            records: 100,
            filtered_out: 10,
            // 20 shed total: 10 by the guard, 5 unreplayed, 3 shutdown,
            // 2 stale-fallback.
            records_shed: 20,
            records_unreplayed: 5,
            records_shutdown_lost: 3,
            records_stale_lost: 2,
            records_poisoned: 4,
            dropped_records: vec![(query, 2)],
            duplicated_records: vec![(query, 1)],
            abandoned_records: vec![(query, 6)],
            records_shed_denied: 9,
            ..RunReport::default()
        };
        report.bound_breached = true;
        // 100 - 10 - 20 - 4 = 66 processed; +1 dup -2 dropped -6
        // abandoned = 59 expected; 50 observed => 9 in flight.
        let mut hfta = Hfta::new(vec![query]);
        for _ in 0..50 {
            hfta.receive(0, g(&[7]), crate::table::AggState::unit());
        }
        hfta.close_epoch();
        let bounds = BoundsReport::from_run(&report, &hfta, &[query]);
        let qb = bounds.for_query(query).unwrap();
        assert_eq!(qb.observed, 50);
        assert_eq!(qb.in_flight, 9);
        assert_eq!(
            qb.losses,
            LossBreakdown {
                guard_shed: 10,
                channel_dropped: 2,
                channel_duplicated: 1,
                poison_quarantined: 4,
                replay_overrun: 5,
                shutdown_lost: 3,
                stale_fallback: 2,
                abandoned: 6,
            }
        );
        assert_eq!((qb.lo(), qb.hi()), (49, 82));
        assert_eq!(bounds.records_shed_denied, 9);
        assert!(bounds.bound_breached);
        assert_eq!(bounds.for_query(q(&[3])), None);
    }

    #[test]
    fn loss_class_names_are_stable() {
        let shown: Vec<String> = LossBreakdown::default()
            .classes()
            .iter()
            .map(|(c, _)| c.to_string())
            .collect();
        assert_eq!(
            shown,
            [
                "guard-shed",
                "channel-dropped",
                "channel-duplicated",
                "poison-quarantined",
                "replay-overrun",
                "shutdown-lost",
                "stale-fallback",
                "abandoned",
            ]
        );
    }
}
