//! Runtime overload controller for the LFTA.
//!
//! The paper's peak-load constraint (§3.3) is enforced at *planning*
//! time: allocations are repaired so the expected end-of-epoch cost
//! `E_u` stays below a peak budget `E_p`. At runtime the observed load
//! can still breach the budget — a traffic burst, a group-count
//! explosion, a mis-estimated model. The [`OverloadGuard`] watches the
//! measured *total* per-epoch cost (intra-epoch maintenance plus the
//! end-of-epoch flush: a rate burst shows up in the former, a group
//! explosion in the latter) and walks a ladder of degradations, most
//! reversible first:
//!
//! 1. **Shedding** — deterministically sample the record stream,
//!    keeping one in `shed_factor` records (undercounts every query by
//!    exactly the shed count — the report carries the bound);
//! 2. **Phantoms off** — route raw records directly to the query
//!    tables, bypassing phantom maintenance. Counts stay *exact*: every
//!    record still contributes once to every query, but the flush
//!    cascade (the phantom contribution to `E_u`) disappears;
//! 3. **Repair** — request an allocation repair (shrink/shift,
//!    [`enforce_peak_load`](../../msa_optimizer/peakload/index.html))
//!    from whoever owns the optimizer; the engine rebuilds the executor
//!    with the repaired allocation at the next epoch boundary.
//!
//! Escalation is one level per breached epoch. De-escalation is
//! hysteretic: the observed cost must stay below
//! `recover_ratio · peak_budget` for `recover_epochs` consecutive
//! epochs before the guard steps one level down; costs inside the
//! band `(recover_ratio · E_p, E_p]` hold the current level.

/// Degradation level, least to most severe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum GuardLevel {
    /// No degradation: full fidelity.
    #[default]
    Normal,
    /// Record sampling: keep one in `shed_factor` records.
    Shedding,
    /// Phantom maintenance disabled (plus shedding).
    PhantomsOff,
    /// Allocation repair requested (plus both milder measures).
    Repair,
}

impl GuardLevel {
    /// Numeric level (0 = [`GuardLevel::Normal`] … 3 = [`GuardLevel::Repair`]).
    pub fn index(self) -> u8 {
        match self {
            GuardLevel::Normal => 0,
            GuardLevel::Shedding => 1,
            GuardLevel::PhantomsOff => 2,
            GuardLevel::Repair => 3,
        }
    }

    /// Inverse of [`GuardLevel::index`]; `None` for out-of-range values
    /// (a decoder rejecting a corrupted checkpoint).
    pub fn from_index(index: u8) -> Option<GuardLevel> {
        match index {
            0 => Some(GuardLevel::Normal),
            1 => Some(GuardLevel::Shedding),
            2 => Some(GuardLevel::PhantomsOff),
            3 => Some(GuardLevel::Repair),
            _ => None,
        }
    }

    fn escalated(self) -> GuardLevel {
        match self {
            GuardLevel::Normal => GuardLevel::Shedding,
            GuardLevel::Shedding => GuardLevel::PhantomsOff,
            GuardLevel::PhantomsOff | GuardLevel::Repair => GuardLevel::Repair,
        }
    }

    fn relaxed(self) -> GuardLevel {
        match self {
            GuardLevel::Normal | GuardLevel::Shedding => GuardLevel::Normal,
            GuardLevel::PhantomsOff => GuardLevel::Shedding,
            GuardLevel::Repair => GuardLevel::PhantomsOff,
        }
    }
}

impl std::fmt::Display for GuardLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            GuardLevel::Normal => "normal",
            GuardLevel::Shedding => "shedding",
            GuardLevel::PhantomsOff => "phantoms-off",
            GuardLevel::Repair => "repair",
        };
        write!(f, "{name}")
    }
}

/// Guard configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardPolicy {
    /// Peak per-epoch total-cost budget `E_p`: intra-epoch maintenance
    /// plus end-of-epoch flush, in the same `c1`/`c2` units as
    /// [`RunReport::flush_cost`](crate::RunReport::flush_cost).
    pub peak_budget: f64,
    /// De-escalation threshold as a fraction of `peak_budget`; costs in
    /// `(recover_ratio · E_p, E_p]` hold the current level (hysteresis).
    pub recover_ratio: f64,
    /// Consecutive calm epochs required before stepping one level down.
    pub recover_epochs: u64,
    /// While shedding, keep one in `shed_factor` records.
    pub shed_factor: u64,
}

impl GuardPolicy {
    /// A policy with budget `peak_budget` and default knobs
    /// (`recover_ratio = 0.7`, `recover_epochs = 1`, `shed_factor = 4`).
    pub fn new(peak_budget: f64) -> GuardPolicy {
        GuardPolicy {
            peak_budget,
            recover_ratio: 0.7,
            recover_epochs: 1,
            shed_factor: 4,
        }
    }
}

/// One guard state change, recorded for the run report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardTransition {
    /// Epoch (1-based count of closed epochs) whose flush triggered it.
    pub epoch: u64,
    /// Level before.
    pub from: GuardLevel,
    /// Level after.
    pub to: GuardLevel,
    /// The observed per-epoch total cost that triggered the change.
    pub observed_cost: f64,
}

/// The complete serializable state of an [`OverloadGuard`].
///
/// Captured at checkpoint time and restored on recovery, including the
/// mid-epoch shed counter, so a recovered executor sheds exactly the
/// records the original would have shed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardState {
    /// Policy in force.
    pub policy: GuardPolicy,
    /// Degradation level at capture.
    pub level: GuardLevel,
    /// Consecutive calm epochs observed at the current level.
    pub calm_epochs: u64,
    /// Round-robin shedding cursor.
    pub shed_counter: u64,
    /// Cost observed at the most recent epoch boundary.
    pub last_cost: f64,
    /// Whether an unconsumed repair request is pending.
    pub repair_requested: bool,
}

/// The overload controller: observes per-epoch total cost, maintains
/// the degradation level with hysteresis.
#[derive(Clone, Debug)]
pub struct OverloadGuard {
    policy: GuardPolicy,
    level: GuardLevel,
    calm_epochs: u64,
    shed_counter: u64,
    last_cost: f64,
    repair_requested: bool,
}

impl OverloadGuard {
    /// A guard at level 0 under `policy`.
    pub fn new(policy: GuardPolicy) -> OverloadGuard {
        OverloadGuard {
            policy,
            level: GuardLevel::Normal,
            calm_epochs: 0,
            shed_counter: 0,
            last_cost: 0.0,
            repair_requested: false,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &GuardPolicy {
        &self.policy
    }

    /// Current degradation level.
    pub fn level(&self) -> GuardLevel {
        self.level
    }

    /// The total cost observed at the most recent epoch boundary.
    pub fn last_observed_cost(&self) -> f64 {
        self.last_cost
    }

    /// Feeds one closed epoch's total cost; escalates or relaxes the
    /// level and returns the transition, if any.
    pub fn observe_epoch(&mut self, epoch: u64, cost: f64) -> Option<GuardTransition> {
        self.last_cost = cost;
        let from = self.level;
        if cost > self.policy.peak_budget {
            self.calm_epochs = 0;
            self.level = self.level.escalated();
            if self.level == GuardLevel::Repair {
                self.repair_requested = true;
            }
        } else if cost <= self.policy.peak_budget * self.policy.recover_ratio {
            self.calm_epochs += 1;
            if self.calm_epochs >= self.policy.recover_epochs.max(1) {
                self.level = self.level.relaxed();
                self.calm_epochs = 0;
            }
        } else {
            // Inside the hysteresis band: hold the level.
            self.calm_epochs = 0;
        }
        (from != self.level).then_some(GuardTransition {
            epoch,
            from,
            to: self.level,
            observed_cost: cost,
        })
    }

    /// Whether the *next* record should be shed. Deterministic round-
    /// robin sampling: at level ≥ 1, keeps one in `shed_factor` records.
    pub fn should_shed(&mut self) -> bool {
        if self.level < GuardLevel::Shedding {
            return false;
        }
        let keep = self
            .shed_counter
            .is_multiple_of(self.policy.shed_factor.max(1));
        self.shed_counter = self.shed_counter.wrapping_add(1);
        !keep
    }

    /// Whether phantom maintenance is currently disabled (level ≥ 2).
    pub fn phantoms_disabled(&self) -> bool {
        self.level >= GuardLevel::PhantomsOff
    }

    /// Whether an allocation repair is pending (level reached 3 and the
    /// request has not been consumed).
    pub fn repair_requested(&self) -> bool {
        self.repair_requested
    }

    /// Consumes a pending repair request; returns whether one was set.
    pub fn take_repair_request(&mut self) -> bool {
        std::mem::take(&mut self.repair_requested)
    }

    /// Exports the guard's complete state for a checkpoint.
    pub fn export_state(&self) -> GuardState {
        GuardState {
            policy: self.policy,
            level: self.level,
            calm_epochs: self.calm_epochs,
            shed_counter: self.shed_counter,
            last_cost: self.last_cost,
            repair_requested: self.repair_requested,
        }
    }

    /// Rebuilds a guard from an exported state.
    pub fn from_state(state: &GuardState) -> OverloadGuard {
        OverloadGuard {
            policy: state.policy,
            level: state.level,
            calm_epochs: state.calm_epochs,
            shed_counter: state.shed_counter,
            last_cost: state.last_cost,
            repair_requested: state.repair_requested,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_one_level_per_breached_epoch() {
        let mut g = OverloadGuard::new(GuardPolicy::new(100.0));
        assert_eq!(g.level(), GuardLevel::Normal);
        let t = g.observe_epoch(1, 150.0).expect("transition");
        assert_eq!((t.from, t.to), (GuardLevel::Normal, GuardLevel::Shedding));
        g.observe_epoch(2, 150.0);
        assert_eq!(g.level(), GuardLevel::PhantomsOff);
        g.observe_epoch(3, 150.0);
        assert_eq!(g.level(), GuardLevel::Repair);
        assert!(g.repair_requested());
        // Saturates at Repair; no further transition.
        assert!(g.observe_epoch(4, 150.0).is_none());
        assert_eq!(g.level(), GuardLevel::Repair);
    }

    #[test]
    fn hysteresis_band_holds_level() {
        let mut p = GuardPolicy::new(100.0);
        p.recover_ratio = 0.7;
        let mut g = OverloadGuard::new(p);
        g.observe_epoch(1, 150.0);
        assert_eq!(g.level(), GuardLevel::Shedding);
        // 80 is below budget but above 70: hold.
        assert!(g.observe_epoch(2, 80.0).is_none());
        assert_eq!(g.level(), GuardLevel::Shedding);
        // 60 is calm: step down.
        let t = g.observe_epoch(3, 60.0).expect("recovers");
        assert_eq!(t.to, GuardLevel::Normal);
    }

    #[test]
    fn recover_epochs_requires_a_calm_streak() {
        let mut p = GuardPolicy::new(100.0);
        p.recover_epochs = 2;
        let mut g = OverloadGuard::new(p);
        g.observe_epoch(1, 150.0);
        assert!(
            g.observe_epoch(2, 10.0).is_none(),
            "one calm epoch is not enough"
        );
        assert!(
            g.observe_epoch(3, 10.0).is_some(),
            "two calm epochs de-escalate"
        );
        assert_eq!(g.level(), GuardLevel::Normal);
    }

    #[test]
    fn shedding_keeps_one_in_shed_factor() {
        let mut g = OverloadGuard::new(GuardPolicy::new(100.0));
        // Level 0: nothing shed.
        assert!(!g.should_shed());
        g.observe_epoch(1, 200.0);
        let shed: Vec<bool> = (0..8).map(|_| g.should_shed()).collect();
        assert_eq!(
            shed,
            [false, true, true, true, false, true, true, true],
            "keeps exactly 1 in 4"
        );
    }

    #[test]
    fn repair_request_is_consumed_once() {
        let mut g = OverloadGuard::new(GuardPolicy::new(1.0));
        for e in 1..=3 {
            g.observe_epoch(e, 10.0);
        }
        assert!(g.take_repair_request());
        assert!(!g.take_repair_request());
        // Another breached epoch at Repair re-arms the request.
        g.observe_epoch(4, 10.0);
        assert!(g.repair_requested());
    }

    #[test]
    fn state_roundtrip_resumes_shedding_exactly() {
        let mut g = OverloadGuard::new(GuardPolicy::new(100.0));
        g.observe_epoch(1, 150.0);
        for _ in 0..5 {
            g.should_shed();
        }
        let mut restored = OverloadGuard::from_state(&g.export_state());
        assert_eq!(restored.export_state(), g.export_state());
        // Mid-cycle shed cursor resumes exactly.
        let a: Vec<bool> = (0..12).map(|_| g.should_shed()).collect();
        let b: Vec<bool> = (0..12).map(|_| restored.should_shed()).collect();
        assert_eq!(a, b);
        for level in 0..=3u8 {
            assert_eq!(GuardLevel::from_index(level).unwrap().index(), level);
        }
        assert_eq!(GuardLevel::from_index(4), None);
    }

    #[test]
    fn phantoms_disabled_from_level_two() {
        let mut g = OverloadGuard::new(GuardPolicy::new(100.0));
        g.observe_epoch(1, 150.0);
        assert!(!g.phantoms_disabled());
        g.observe_epoch(2, 150.0);
        assert!(g.phantoms_disabled());
    }
}
