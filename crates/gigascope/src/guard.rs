//! Runtime overload controller for the LFTA.
//!
//! The paper's peak-load constraint (§3.3) is enforced at *planning*
//! time: allocations are repaired so the expected end-of-epoch cost
//! `E_u` stays below a peak budget `E_p`. At runtime the observed load
//! can still breach the budget — a traffic burst, a group-count
//! explosion, a mis-estimated model. The [`OverloadGuard`] watches the
//! measured *total* per-epoch cost (intra-epoch maintenance plus the
//! end-of-epoch flush: a rate burst shows up in the former, a group
//! explosion in the latter) and walks a ladder of degradations, most
//! reversible first:
//!
//! 1. **Shedding** — deterministically sample the record stream,
//!    keeping one in `shed_factor` records (undercounts every query by
//!    exactly the shed count — the report carries the bound);
//! 2. **Phantoms off** — route raw records directly to the query
//!    tables, bypassing phantom maintenance. Counts stay *exact*: every
//!    record still contributes once to every query, but the flush
//!    cascade (the phantom contribution to `E_u`) disappears;
//! 3. **Repair** — request an allocation repair (shrink/shift,
//!    [`enforce_peak_load`](../../msa_optimizer/peakload/index.html))
//!    from whoever owns the optimizer; the engine rebuilds the executor
//!    with the repaired allocation at the next epoch boundary.
//!
//! Escalation is one level per breached epoch. De-escalation is
//! hysteretic: the observed cost must stay below
//! `recover_ratio · peak_budget` for `recover_epochs` consecutive
//! epochs before the guard steps one level down; costs inside the
//! band `(recover_ratio · E_p, E_p]` hold the current level.
//!
//! A [`DegradationPolicy`] bounds *how much* answer quality the ladder
//! may spend. Every lost record — a shed, a channel drop, a poisoned
//! record, a replay overrun — widens the guaranteed count interval the
//! bounds subsystem reports (see `bounds.rs`), and the guard meters
//! that widening against the operator's promise:
//!
//! * [`DegradationPolicy::BestEffort`] — unlimited shedding (the
//!   historical behavior); the interval widens as far as load demands;
//! * [`DegradationPolicy::BoundedApprox`] — shed only while the total
//!   accounted loss stays within `max_width`; further shed requests are
//!   *denied* (the record is processed), and if uncontrolled losses
//!   push past the budget anyway the guard latches a deterministic
//!   [`OverloadGuard::bound_breached`] alert instead of lying;
//! * [`DegradationPolicy::ExactOrStall`] — a zero budget: the shedding
//!   rung is skipped entirely (the ladder goes straight to the lossless
//!   phantoms-off rung), every shed request is denied, and *any*
//!   uncontrolled loss latches the breach alert.

/// Degradation level, least to most severe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum GuardLevel {
    /// No degradation: full fidelity.
    #[default]
    Normal,
    /// Record sampling: keep one in `shed_factor` records.
    Shedding,
    /// Phantom maintenance disabled (plus shedding).
    PhantomsOff,
    /// Allocation repair requested (plus both milder measures).
    Repair,
}

impl GuardLevel {
    /// Numeric level (0 = [`GuardLevel::Normal`] … 3 = [`GuardLevel::Repair`]).
    pub fn index(self) -> u8 {
        match self {
            GuardLevel::Normal => 0,
            GuardLevel::Shedding => 1,
            GuardLevel::PhantomsOff => 2,
            GuardLevel::Repair => 3,
        }
    }

    /// Inverse of [`GuardLevel::index`]; `None` for out-of-range values
    /// (a decoder rejecting a corrupted checkpoint).
    pub fn from_index(index: u8) -> Option<GuardLevel> {
        match index {
            0 => Some(GuardLevel::Normal),
            1 => Some(GuardLevel::Shedding),
            2 => Some(GuardLevel::PhantomsOff),
            3 => Some(GuardLevel::Repair),
            _ => None,
        }
    }

    fn escalated(self) -> GuardLevel {
        match self {
            GuardLevel::Normal => GuardLevel::Shedding,
            GuardLevel::Shedding => GuardLevel::PhantomsOff,
            GuardLevel::PhantomsOff | GuardLevel::Repair => GuardLevel::Repair,
        }
    }

    fn relaxed(self) -> GuardLevel {
        match self {
            GuardLevel::Normal | GuardLevel::Shedding => GuardLevel::Normal,
            GuardLevel::PhantomsOff => GuardLevel::Shedding,
            GuardLevel::Repair => GuardLevel::PhantomsOff,
        }
    }
}

impl std::fmt::Display for GuardLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            GuardLevel::Normal => "normal",
            GuardLevel::Shedding => "shedding",
            GuardLevel::PhantomsOff => "phantoms-off",
            GuardLevel::Repair => "repair",
        };
        write!(f, "{name}")
    }
}

/// Operator-chosen failure mode under overload: how much guaranteed-
/// interval width (see `bounds.rs`) the guard may spend on shedding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradationPolicy {
    /// Never trade accuracy for load: the shedding rung is skipped and
    /// every shed request is denied. Any uncontrolled loss (channel
    /// fault, poison quarantine, replay overrun) latches the breach
    /// alert — the deployment either stays exact or says it stalled.
    ExactOrStall,
    /// Shed freely while the total accounted loss stays at or below
    /// `max_width` records; deny further sheds past it and latch the
    /// breach alert if uncontrolled losses overrun the budget anyway.
    BoundedApprox {
        /// Maximum interval width (in records) the operator accepts.
        max_width: u64,
    },
    /// Unlimited shedding; the interval widens as far as load demands.
    /// The historical guard behavior and the default.
    #[default]
    BestEffort,
}

impl DegradationPolicy {
    /// The loss budget in records: `Some(0)` for
    /// [`DegradationPolicy::ExactOrStall`], `Some(max_width)` for
    /// [`DegradationPolicy::BoundedApprox`], `None` (unlimited) for
    /// [`DegradationPolicy::BestEffort`].
    pub fn loss_budget(self) -> Option<u64> {
        match self {
            DegradationPolicy::ExactOrStall => Some(0),
            DegradationPolicy::BoundedApprox { max_width } => Some(max_width),
            DegradationPolicy::BestEffort => None,
        }
    }
}

impl std::fmt::Display for DegradationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradationPolicy::ExactOrStall => write!(f, "exact-or-stall"),
            DegradationPolicy::BoundedApprox { max_width } => {
                write!(f, "bounded-approx(max_width={max_width})")
            }
            DegradationPolicy::BestEffort => write!(f, "best-effort"),
        }
    }
}

/// What to do with the next record, once the ladder is at or above the
/// shedding rung and the [`DegradationPolicy`] has been consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedDecision {
    /// Process the record normally.
    Process,
    /// Drop the record; the caller must account the loss.
    Shed,
    /// The ladder wanted to shed but the loss budget is exhausted:
    /// process the record and count the denial.
    Denied,
}

/// Guard configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardPolicy {
    /// Peak per-epoch total-cost budget `E_p`: intra-epoch maintenance
    /// plus end-of-epoch flush, in the same `c1`/`c2` units as
    /// [`RunReport::flush_cost`](crate::RunReport::flush_cost).
    pub peak_budget: f64,
    /// De-escalation threshold as a fraction of `peak_budget`; costs in
    /// `(recover_ratio · E_p, E_p]` hold the current level (hysteresis).
    pub recover_ratio: f64,
    /// Consecutive calm epochs required before stepping one level down.
    pub recover_epochs: u64,
    /// While shedding, keep one in `shed_factor` records.
    pub shed_factor: u64,
    /// How much answer quality the ladder may spend (loss budget).
    pub degradation: DegradationPolicy,
}

impl GuardPolicy {
    /// A policy with budget `peak_budget` and default knobs
    /// (`recover_ratio = 0.7`, `recover_epochs = 1`, `shed_factor = 4`,
    /// `degradation = BestEffort`).
    pub fn new(peak_budget: f64) -> GuardPolicy {
        GuardPolicy {
            peak_budget,
            recover_ratio: 0.7,
            recover_epochs: 1,
            shed_factor: 4,
            degradation: DegradationPolicy::default(),
        }
    }

    /// Replaces the degradation policy (builder style).
    pub fn with_degradation(mut self, degradation: DegradationPolicy) -> GuardPolicy {
        self.degradation = degradation;
        self
    }
}

/// One guard state change, recorded for the run report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardTransition {
    /// Epoch (1-based count of closed epochs) whose flush triggered it.
    pub epoch: u64,
    /// Level before.
    pub from: GuardLevel,
    /// Level after.
    pub to: GuardLevel,
    /// The observed per-epoch total cost that triggered the change.
    pub observed_cost: f64,
}

/// The complete serializable state of an [`OverloadGuard`].
///
/// Captured at checkpoint time and restored on recovery, including the
/// mid-epoch shed counter, so a recovered executor sheds exactly the
/// records the original would have shed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardState {
    /// Policy in force.
    pub policy: GuardPolicy,
    /// Degradation level at capture.
    pub level: GuardLevel,
    /// Consecutive calm epochs observed at the current level.
    pub calm_epochs: u64,
    /// Round-robin shedding cursor.
    pub shed_counter: u64,
    /// Cost observed at the most recent epoch boundary.
    pub last_cost: f64,
    /// Whether an unconsumed repair request is pending.
    pub repair_requested: bool,
    /// Total loss mass accounted against the degradation budget.
    pub records_lost: u64,
    /// Whether the promised bound has been breached (latched).
    pub bound_breached: bool,
}

/// The overload controller: observes per-epoch total cost, maintains
/// the degradation level with hysteresis.
#[derive(Clone, Debug)]
pub struct OverloadGuard {
    policy: GuardPolicy,
    level: GuardLevel,
    calm_epochs: u64,
    shed_counter: u64,
    last_cost: f64,
    repair_requested: bool,
    records_lost: u64,
    bound_breached: bool,
}

impl OverloadGuard {
    /// A guard at level 0 under `policy`.
    pub fn new(policy: GuardPolicy) -> OverloadGuard {
        OverloadGuard {
            policy,
            level: GuardLevel::Normal,
            calm_epochs: 0,
            shed_counter: 0,
            last_cost: 0.0,
            repair_requested: false,
            records_lost: 0,
            bound_breached: false,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &GuardPolicy {
        &self.policy
    }

    /// Current degradation level.
    pub fn level(&self) -> GuardLevel {
        self.level
    }

    /// The total cost observed at the most recent epoch boundary.
    pub fn last_observed_cost(&self) -> f64 {
        self.last_cost
    }

    /// Feeds one closed epoch's total cost; escalates or relaxes the
    /// level and returns the transition, if any.
    pub fn observe_epoch(&mut self, epoch: u64, cost: f64) -> Option<GuardTransition> {
        self.last_cost = cost;
        let from = self.level;
        let skip_shedding = self.policy.degradation == DegradationPolicy::ExactOrStall;
        if cost > self.policy.peak_budget {
            self.calm_epochs = 0;
            self.level = self.level.escalated();
            if skip_shedding && self.level == GuardLevel::Shedding {
                // ExactOrStall never spends accuracy: the lossy rung is
                // skipped and the ladder lands on the lossless
                // phantoms-off rung directly.
                self.level = self.level.escalated();
            }
            if self.level == GuardLevel::Repair {
                self.repair_requested = true;
            }
        } else if cost <= self.policy.peak_budget * self.policy.recover_ratio {
            self.calm_epochs += 1;
            if self.calm_epochs >= self.policy.recover_epochs.max(1) {
                self.level = self.level.relaxed();
                if skip_shedding && self.level == GuardLevel::Shedding {
                    self.level = self.level.relaxed();
                }
                self.calm_epochs = 0;
            }
        } else {
            // Inside the hysteresis band: hold the level.
            self.calm_epochs = 0;
        }
        (from != self.level).then_some(GuardTransition {
            epoch,
            from,
            to: self.level,
            observed_cost: cost,
        })
    }

    /// Decides the fate of the *next* record. Deterministic round-robin
    /// sampling: at level ≥ 1 the ladder wants to drop all but one in
    /// `shed_factor` records, but a drop is only granted while the
    /// [`DegradationPolicy`] loss budget still has room — past it the
    /// decision is [`ShedDecision::Denied`] and the record is processed.
    /// After a [`ShedDecision::Shed`] the caller must feed the loss back
    /// through [`OverloadGuard::account_loss`].
    pub fn shed_decision(&mut self) -> ShedDecision {
        if self.level < GuardLevel::Shedding {
            return ShedDecision::Process;
        }
        let keep = self
            .shed_counter
            .is_multiple_of(self.policy.shed_factor.max(1));
        self.shed_counter = self.shed_counter.wrapping_add(1);
        if keep {
            return ShedDecision::Process;
        }
        match self.policy.degradation.loss_budget() {
            Some(budget) if self.records_lost >= budget => ShedDecision::Denied,
            _ => ShedDecision::Shed,
        }
    }

    /// Whether the *next* record should be shed — `true` exactly when
    /// [`OverloadGuard::shed_decision`] grants a [`ShedDecision::Shed`].
    pub fn should_shed(&mut self) -> bool {
        self.shed_decision() == ShedDecision::Shed
    }

    /// Accounts `n` records of loss mass against the degradation
    /// budget: sheds the guard granted *and* losses it cannot control
    /// (channel drops/duplicates, poison quarantine, replay overruns,
    /// shutdown abandonment). Controlled sheds stop exactly at the
    /// budget, so only uncontrolled loss can overrun it — when it does,
    /// the breach alert latches deterministically.
    pub fn account_loss(&mut self, n: u64) {
        self.records_lost = self.records_lost.saturating_add(n);
        if let Some(budget) = self.policy.degradation.loss_budget() {
            if self.records_lost > budget {
                self.bound_breached = true;
            }
        }
    }

    /// Total loss mass accounted against the degradation budget so far.
    pub fn records_lost(&self) -> u64 {
        self.records_lost
    }

    /// Whether the promised bound has been breached: uncontrolled loss
    /// pushed the accounted total past the [`DegradationPolicy`] budget.
    /// Latched — a breach is never silently forgotten.
    pub fn bound_breached(&self) -> bool {
        self.bound_breached
    }

    /// Whether phantom maintenance is currently disabled (level ≥ 2).
    pub fn phantoms_disabled(&self) -> bool {
        self.level >= GuardLevel::PhantomsOff
    }

    /// Whether an allocation repair is pending (level reached 3 and the
    /// request has not been consumed).
    pub fn repair_requested(&self) -> bool {
        self.repair_requested
    }

    /// Consumes a pending repair request; returns whether one was set.
    pub fn take_repair_request(&mut self) -> bool {
        std::mem::take(&mut self.repair_requested)
    }

    /// Exports the guard's complete state for a checkpoint.
    pub fn export_state(&self) -> GuardState {
        GuardState {
            policy: self.policy,
            level: self.level,
            calm_epochs: self.calm_epochs,
            shed_counter: self.shed_counter,
            last_cost: self.last_cost,
            repair_requested: self.repair_requested,
            records_lost: self.records_lost,
            bound_breached: self.bound_breached,
        }
    }

    /// Rebuilds a guard from an exported state.
    pub fn from_state(state: &GuardState) -> OverloadGuard {
        OverloadGuard {
            policy: state.policy,
            level: state.level,
            calm_epochs: state.calm_epochs,
            shed_counter: state.shed_counter,
            last_cost: state.last_cost,
            repair_requested: state.repair_requested,
            records_lost: state.records_lost,
            bound_breached: state.bound_breached,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_one_level_per_breached_epoch() {
        let mut g = OverloadGuard::new(GuardPolicy::new(100.0));
        assert_eq!(g.level(), GuardLevel::Normal);
        let t = g.observe_epoch(1, 150.0).expect("transition");
        assert_eq!((t.from, t.to), (GuardLevel::Normal, GuardLevel::Shedding));
        g.observe_epoch(2, 150.0);
        assert_eq!(g.level(), GuardLevel::PhantomsOff);
        g.observe_epoch(3, 150.0);
        assert_eq!(g.level(), GuardLevel::Repair);
        assert!(g.repair_requested());
        // Saturates at Repair; no further transition.
        assert!(g.observe_epoch(4, 150.0).is_none());
        assert_eq!(g.level(), GuardLevel::Repair);
    }

    #[test]
    fn hysteresis_band_holds_level() {
        let mut p = GuardPolicy::new(100.0);
        p.recover_ratio = 0.7;
        let mut g = OverloadGuard::new(p);
        g.observe_epoch(1, 150.0);
        assert_eq!(g.level(), GuardLevel::Shedding);
        // 80 is below budget but above 70: hold.
        assert!(g.observe_epoch(2, 80.0).is_none());
        assert_eq!(g.level(), GuardLevel::Shedding);
        // 60 is calm: step down.
        let t = g.observe_epoch(3, 60.0).expect("recovers");
        assert_eq!(t.to, GuardLevel::Normal);
    }

    #[test]
    fn recover_epochs_requires_a_calm_streak() {
        let mut p = GuardPolicy::new(100.0);
        p.recover_epochs = 2;
        let mut g = OverloadGuard::new(p);
        g.observe_epoch(1, 150.0);
        assert!(
            g.observe_epoch(2, 10.0).is_none(),
            "one calm epoch is not enough"
        );
        assert!(
            g.observe_epoch(3, 10.0).is_some(),
            "two calm epochs de-escalate"
        );
        assert_eq!(g.level(), GuardLevel::Normal);
    }

    #[test]
    fn shedding_keeps_one_in_shed_factor() {
        let mut g = OverloadGuard::new(GuardPolicy::new(100.0));
        // Level 0: nothing shed.
        assert!(!g.should_shed());
        g.observe_epoch(1, 200.0);
        let shed: Vec<bool> = (0..8).map(|_| g.should_shed()).collect();
        assert_eq!(
            shed,
            [false, true, true, true, false, true, true, true],
            "keeps exactly 1 in 4"
        );
    }

    #[test]
    fn repair_request_is_consumed_once() {
        let mut g = OverloadGuard::new(GuardPolicy::new(1.0));
        for e in 1..=3 {
            g.observe_epoch(e, 10.0);
        }
        assert!(g.take_repair_request());
        assert!(!g.take_repair_request());
        // Another breached epoch at Repair re-arms the request.
        g.observe_epoch(4, 10.0);
        assert!(g.repair_requested());
    }

    #[test]
    fn state_roundtrip_resumes_shedding_exactly() {
        let mut g = OverloadGuard::new(GuardPolicy::new(100.0));
        g.observe_epoch(1, 150.0);
        for _ in 0..5 {
            g.should_shed();
        }
        let mut restored = OverloadGuard::from_state(&g.export_state());
        assert_eq!(restored.export_state(), g.export_state());
        // Mid-cycle shed cursor resumes exactly.
        let a: Vec<bool> = (0..12).map(|_| g.should_shed()).collect();
        let b: Vec<bool> = (0..12).map(|_| restored.should_shed()).collect();
        assert_eq!(a, b);
        for level in 0..=3u8 {
            assert_eq!(GuardLevel::from_index(level).unwrap().index(), level);
        }
        assert_eq!(GuardLevel::from_index(4), None);
    }

    #[test]
    fn phantoms_disabled_from_level_two() {
        let mut g = OverloadGuard::new(GuardPolicy::new(100.0));
        g.observe_epoch(1, 150.0);
        assert!(!g.phantoms_disabled());
        g.observe_epoch(2, 150.0);
        assert!(g.phantoms_disabled());
    }

    #[test]
    fn best_effort_never_denies_or_breaches() {
        let mut g = OverloadGuard::new(GuardPolicy::new(100.0));
        g.observe_epoch(1, 200.0);
        let mut shed = 0;
        for _ in 0..1000 {
            match g.shed_decision() {
                ShedDecision::Shed => {
                    g.account_loss(1);
                    shed += 1;
                }
                ShedDecision::Denied => panic!("best-effort must never deny"),
                ShedDecision::Process => {}
            }
        }
        assert_eq!(shed, 750, "3 of 4 shed");
        assert_eq!(g.records_lost(), 750);
        assert!(!g.bound_breached());
    }

    #[test]
    fn bounded_approx_sheds_exactly_up_to_the_budget() {
        let policy = GuardPolicy::new(100.0)
            .with_degradation(DegradationPolicy::BoundedApprox { max_width: 5 });
        let mut g = OverloadGuard::new(policy);
        g.observe_epoch(1, 200.0);
        let mut shed = 0;
        let mut denied = 0;
        for _ in 0..100 {
            match g.shed_decision() {
                ShedDecision::Shed => {
                    g.account_loss(1);
                    shed += 1;
                }
                ShedDecision::Denied => denied += 1,
                ShedDecision::Process => {}
            }
        }
        assert_eq!(shed, 5, "controlled sheds stop at the budget");
        assert_eq!(denied, 70, "the remaining drop slots are denied");
        assert_eq!(g.records_lost(), 5);
        assert!(!g.bound_breached(), "spending the budget is not a breach");
        // An uncontrolled loss past the budget latches the alert.
        g.account_loss(1);
        assert!(g.bound_breached());
    }

    #[test]
    fn exact_or_stall_skips_the_shedding_rung() {
        let policy = GuardPolicy::new(100.0).with_degradation(DegradationPolicy::ExactOrStall);
        let mut g = OverloadGuard::new(policy);
        let t = g.observe_epoch(1, 150.0).expect("transition");
        assert_eq!(
            (t.from, t.to),
            (GuardLevel::Normal, GuardLevel::PhantomsOff),
            "the lossy rung is skipped"
        );
        // The round-robin keep slot still processes; every slot that
        // would shed is denied instead — never `Shed`.
        let mut denied = 0;
        for _ in 0..8 {
            match g.shed_decision() {
                ShedDecision::Shed => panic!("exact-or-stall must never shed"),
                ShedDecision::Denied => denied += 1,
                ShedDecision::Process => {}
            }
        }
        assert!(denied > 0, "drop slots are denied under a zero budget");
        for _ in 0..8 {
            assert!(!g.should_shed(), "the boolean view agrees: no shedding");
        }
        assert_eq!(g.records_lost(), 0);
        assert!(!g.bound_breached());
        // Relaxing skips the rung on the way down too.
        let t = g.observe_epoch(2, 10.0).expect("recovers");
        assert_eq!(
            (t.from, t.to),
            (GuardLevel::PhantomsOff, GuardLevel::Normal)
        );
        // Any uncontrolled loss is a breach under a zero budget.
        g.account_loss(1);
        assert!(g.bound_breached());
    }

    #[test]
    fn degradation_state_roundtrips() {
        let policy = GuardPolicy::new(100.0)
            .with_degradation(DegradationPolicy::BoundedApprox { max_width: 3 });
        let mut g = OverloadGuard::new(policy);
        g.observe_epoch(1, 200.0);
        g.account_loss(2);
        let restored = OverloadGuard::from_state(&g.export_state());
        assert_eq!(restored.export_state(), g.export_state());
        assert_eq!(restored.records_lost(), 2);
        g.account_loss(2);
        assert!(g.bound_breached());
        let restored = OverloadGuard::from_state(&g.export_state());
        assert!(restored.bound_breached(), "the latch survives a roundtrip");
    }

    #[test]
    fn loss_budgets_follow_the_policy() {
        assert_eq!(DegradationPolicy::ExactOrStall.loss_budget(), Some(0));
        assert_eq!(
            DegradationPolicy::BoundedApprox { max_width: 9 }.loss_budget(),
            Some(9)
        );
        assert_eq!(DegradationPolicy::BestEffort.loss_budget(), None);
        assert_eq!(DegradationPolicy::default(), DegradationPolicy::BestEffort);
    }
}
