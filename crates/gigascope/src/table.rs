//! The LFTA single-slot hash table (paper §2.2, Fig. 1).
//!
//! Each bucket holds at most one `{group, count}` pair. A probe by a
//! record whose group matches the occupant increments the count; a probe
//! into an empty bucket installs the group; a probe by a *different*
//! group is a **collision**: the occupant is evicted (to be combined
//! downstream) and the new group takes the bucket with count 1.

use msa_stream::{AttrSet, GroupKey};

/// Partial aggregate state carried by one bucket entry.
///
/// The paper's queries are `count(*)` plus value aggregates such as
/// "the average packet length" (§1). Each entry therefore tracks a
/// record count and — when the plan designates a metric attribute — the
/// sum/min/max of that metric, from which AVG is derived at the HFTA.
/// States merge associatively, so partial aggregates combine correctly
/// along the phantom → query → HFTA cascade.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggState {
    /// Number of records absorbed.
    pub count: u64,
    /// Sum of the metric attribute over those records.
    pub sum: u64,
    /// Minimum metric value seen.
    pub min: u32,
    /// Maximum metric value seen.
    pub max: u32,
}

impl AggState {
    /// State of a single record with metric value `v`.
    #[inline]
    pub fn from_value(v: u32) -> AggState {
        AggState {
            count: 1,
            sum: u64::from(v),
            min: v,
            max: v,
        }
    }

    /// State of a single record with no metric (count-only plans).
    #[inline]
    pub fn unit() -> AggState {
        AggState::from_value(0)
    }

    /// Merges another partial state into this one.
    #[inline]
    pub fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Average metric value (`sum / count`), 0 when empty.
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One occupied bucket: a group and its partial aggregate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    /// The group occupying the bucket.
    pub key: GroupKey,
    /// Partial aggregate absorbed since the group last took the bucket.
    pub agg: AggState,
}

impl Entry {
    /// Records absorbed since the group last took the bucket.
    #[inline]
    pub fn count(&self) -> u64 {
        self.agg.count
    }
}

/// Outcome of a probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Probe {
    /// The bucket already held this group; count incremented.
    Hit,
    /// The bucket was empty; group installed.
    Inserted,
    /// The bucket held a different group, which was evicted.
    Evicted(Entry),
}

/// Cumulative statistics of one table.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TableStats {
    /// Number of probes (records or parent evictions fed to the table).
    pub probes: u64,
    /// Number of collisions (probes that evicted an occupant).
    pub collisions: u64,
    /// Records absorbed by occupants before their eviction, summed over
    /// evictions — `absorbed / collisions` estimates the average flow
    /// length the paper derives temporally (§4.3).
    pub absorbed_before_eviction: u64,
}

impl TableStats {
    /// Observed collision rate (`collisions / probes`), 0 when idle.
    pub fn collision_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.collisions as f64 / self.probes as f64
        }
    }

    /// Observed average run length of evicted occupants: the paper's
    /// temporally-derived flow length.
    pub fn avg_run_length(&self) -> f64 {
        if self.collisions == 0 {
            1.0
        } else {
            self.absorbed_before_eviction as f64 / self.collisions as f64
        }
    }
}

/// A single-slot hash table over the groups of one relation.
#[derive(Clone, Debug)]
pub struct LftaTable {
    attrs: AttrSet,
    seed: u64,
    slots: Vec<Option<Entry>>,
    occupied: usize,
    stats: TableStats,
}

impl LftaTable {
    /// Creates a table for relation `attrs` with `buckets` slots.
    ///
    /// `seed` decorrelates the hash functions of different tables (the
    /// model assumes tables hash independently).
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn new(attrs: AttrSet, buckets: usize, seed: u64) -> LftaTable {
        assert!(buckets > 0, "table needs at least one bucket");
        LftaTable {
            attrs,
            seed,
            slots: vec![None; buckets],
            occupied: 0,
            stats: TableStats::default(),
        }
    }

    /// The relation this table aggregates.
    #[inline]
    pub fn attrs(&self) -> AttrSet {
        self.attrs
    }

    /// Number of buckets.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied buckets.
    #[inline]
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Space consumed in 4-byte words (`buckets · (|attrs| + 1)`).
    pub fn space_words(&self) -> usize {
        self.buckets() * self.attrs.entry_words()
    }

    /// Cumulative statistics.
    #[inline]
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// The bucket index `key` hashes to. Pure: the chunked probe
    /// precomputes slots for a whole batch of keys before touching
    /// the table, so the loads of the slot array overlap.
    #[inline]
    pub fn slot_of(&self, key: &GroupKey) -> usize {
        let len = self.slots.len() as u64;
        (key.hash_with_seed(self.seed) % len.max(1)) as usize
    }

    /// Touches bucket `idx` so its cache line is resident before the
    /// apply loop probes it. `black_box` forces the load to happen;
    /// the reads of a batch of independent slots issue back-to-back,
    /// which is the whole point — memory-level parallelism without an
    /// architecture-specific prefetch intrinsic (the workspace denies
    /// `unsafe`).
    #[inline]
    pub fn warm_slot(&self, idx: usize) {
        if let Some(slot) = self.slots.get(idx) {
            // Read the occupancy tag and the aggregate at the entry's
            // tail: a slot spans more than one cache line, and the
            // probe both compares the key and writes the aggregate.
            let depth = slot.as_ref().map_or(0, |e| e.agg.count);
            std::hint::black_box(depth);
        }
    }

    /// Probes the table with `key`, merging `agg` into the occupant
    /// (a unit state for a raw record; the evicted partial when fed
    /// from a parent table).
    #[inline]
    pub fn probe(&mut self, key: GroupKey, agg: AggState) -> Probe {
        let idx = self.slot_of(&key);
        self.probe_at(idx, key, agg)
    }

    /// Probes bucket `idx` with `key` — the chunked path, where `idx`
    /// was precomputed by [`Self::slot_of`]. Bit-identical to
    /// [`Self::probe`] when `idx == self.slot_of(&key)`.
    #[inline]
    pub fn probe_at(&mut self, idx: usize, key: GroupKey, agg: AggState) -> Probe {
        debug_assert_eq!(key.arity(), self.attrs.len());
        debug_assert_eq!(idx, self.slot_of(&key));
        self.stats.probes += 1;
        let Some(slot) = self.slots.get_mut(idx) else {
            // Unreachable: plans validate buckets > 0, so idx < len.
            return Probe::Hit;
        };
        match slot {
            Some(entry) if entry.key == key => {
                entry.agg.merge(&agg);
                Probe::Hit
            }
            Some(entry) => {
                let evicted = *entry;
                *entry = Entry { key, agg };
                self.stats.collisions += 1;
                self.stats.absorbed_before_eviction += evicted.agg.count;
                Probe::Evicted(evicted)
            }
            slot @ None => {
                *slot = Some(Entry { key, agg });
                self.occupied += 1;
                Probe::Inserted
            }
        }
    }

    /// Removes and returns all occupied entries (end-of-epoch scan).
    pub fn drain(&mut self) -> Vec<Entry> {
        let mut out = Vec::with_capacity(self.occupied);
        for slot in &mut self.slots {
            if let Some(e) = slot.take() {
                out.push(e);
            }
        }
        self.occupied = 0;
        out
    }

    /// Resets statistics (tables keep their contents).
    pub fn reset_stats(&mut self) {
        self.stats = TableStats::default();
    }

    /// Restores checkpointed statistics (recovery rebuilds tables empty
    /// — epoch-aligned checkpoints find them drained — and re-installs
    /// the cumulative counters so stats stay continuous across a crash).
    pub fn restore_stats(&mut self, stats: TableStats) {
        self.stats = stats;
    }
}

/// Streams `keys` through a fresh `buckets`-slot table and returns the
/// observed collision rate — the measurement behind the paper's Fig. 5.
pub fn measure_collision_rate<I: IntoIterator<Item = GroupKey>>(
    keys: I,
    attrs: AttrSet,
    buckets: usize,
    seed: u64,
) -> f64 {
    let mut table = LftaTable::new(attrs, buckets, seed);
    for key in keys {
        table.probe(key, AggState::unit());
    }
    table.stats().collision_rate()
}

/// Derives average flow lengths the paper's way (§4.3: "the average flow
/// length can be computed by maintaining the number of times hash table
/// bucket entries are updated before being evicted"): stream the records
/// through one probe table per relation and read each table's average
/// occupant run length.
///
/// Unlike the consecutive-run statistic in `msa_stream::DatasetStats`,
/// this captures clusteredness that survives flow interleaving — packets
/// of concurrently active flows still revisit their own buckets without
/// eviction, so the bucket-level run length approaches the true flow
/// length while the record-level run length collapses towards 1.
pub fn temporal_flow_lengths(
    records: &[msa_stream::Record],
    sets: &[AttrSet],
    buckets_per_table: usize,
    seed: u64,
) -> Vec<(AttrSet, f64)> {
    let mut tables: Vec<LftaTable> = sets
        .iter()
        .map(|&s| LftaTable::new(s, buckets_per_table.max(1), seed ^ (s.bits() as u64) << 32))
        .collect();
    for r in records {
        for t in &mut tables {
            let key = r.project(t.attrs());
            t.probe(key, AggState::unit());
        }
    }
    tables
        .into_iter()
        .map(|t| (t.attrs(), t.stats().avg_run_length().max(1.0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msa_stream::Record;

    fn key(vals: &[u32]) -> GroupKey {
        GroupKey::from_values(vals)
    }

    #[test]
    fn paper_walkthrough_example() {
        // §2.2: stream prefix 2, 24, 2, 2, 3, 17, 3, 4 with hash = mod 10.
        // Our hash is not mod 10, so reproduce the *semantics*: force
        // collisions by using a 1-bucket table for two alternating groups.
        let a = AttrSet::parse("A").unwrap();
        let mut t = LftaTable::new(a, 1, 0);
        assert_eq!(t.probe(key(&[2]), AggState::unit()), Probe::Inserted);
        assert_eq!(t.probe(key(&[2]), AggState::unit()), Probe::Hit);
        assert_eq!(t.probe(key(&[2]), AggState::unit()), Probe::Hit);
        match t.probe(key(&[24]), AggState::unit()) {
            Probe::Evicted(e) => {
                assert_eq!(e.key, key(&[2]));
                assert_eq!(e.count(), 3);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(t.stats().collisions, 1);
        assert_eq!(t.stats().probes, 4);
    }

    #[test]
    fn distinct_groups_in_distinct_buckets_do_not_collide() {
        let a = AttrSet::parse("A").unwrap();
        let mut t = LftaTable::new(a, 1 << 16, 7);
        // 100 groups in 65536 buckets: collisions are overwhelmingly
        // unlikely (expected ≈ 0.07 pairs).
        for round in 0..10 {
            for g in 0..100u32 {
                let _ = t.probe(key(&[g]), AggState::unit());
            }
            let _ = round;
        }
        assert_eq!(t.stats().probes, 1000);
        assert!(t.stats().collisions <= 200, "{}", t.stats().collisions);
        assert!(t.occupied() >= 98);
    }

    #[test]
    fn drain_returns_all_and_empties() {
        let a = AttrSet::parse("AB").unwrap();
        let mut t = LftaTable::new(a, 64, 3);
        let two = {
            let mut s = AggState::unit();
            s.merge(&AggState::unit());
            s
        };
        for g in 0..20u32 {
            t.probe(key(&[g, g + 1]), two);
        }
        let drained = t.drain();
        let total: u64 = drained.iter().map(|e| e.count()).sum();
        assert!(total >= 40 - 2 * t.stats().collisions * 2);
        assert_eq!(t.occupied(), 0);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn counts_accumulate_with_weights() {
        let a = AttrSet::parse("A").unwrap();
        let mut t = LftaTable::new(a, 8, 1);
        let mut three = AggState::from_value(10);
        three.merge(&AggState::from_value(20));
        three.merge(&AggState::from_value(3));
        let mut four = AggState::from_value(7);
        four.merge(&AggState::from_value(7));
        four.merge(&AggState::from_value(7));
        four.merge(&AggState::from_value(40));
        t.probe(key(&[5]), three);
        t.probe(key(&[5]), four);
        let drained = t.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].count(), 7);
        // Value aggregates merged across partials.
        assert_eq!(drained[0].agg.sum, 10 + 20 + 3 + 7 * 3 + 40);
        assert_eq!(drained[0].agg.min, 3);
        assert_eq!(drained[0].agg.max, 40);
    }

    #[test]
    fn stats_track_run_lengths() {
        let a = AttrSet::parse("A").unwrap();
        let mut t = LftaTable::new(a, 1, 0);
        // Runs of 5 and 3 before evictions.
        for _ in 0..5 {
            t.probe(key(&[1]), AggState::unit());
        }
        for _ in 0..3 {
            t.probe(key(&[2]), AggState::unit());
        }
        t.probe(key(&[3]), AggState::unit());
        let s = t.stats();
        assert_eq!(s.collisions, 2);
        assert_eq!(s.absorbed_before_eviction, 8);
        assert!((s.avg_run_length() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn measured_rate_matches_model_on_random_keys() {
        // g = 3000 random groups visited uniformly over 100k probes into
        // b = 1000 buckets: the measured rate must sit near the precise
        // model x = 1 − (1 − e^{−3})/3 ≈ 0.6833 at g/b = 3 (see
        // msa-collision). Statistical check with generous tolerance.
        let mut rng = msa_stream::SplitMix64::new(5);
        let groups: Vec<GroupKey> = (0..3000)
            .map(|_| {
                let r = Record::new(&[rng.next_u32(), rng.next_u32()], 0);
                r.project(AttrSet::parse("AB").unwrap())
            })
            .collect();
        let mut key_rng = rng.clone();
        let keys = (0..100_000).map(move |_| groups[key_rng.gen_index(groups.len())]);
        let x = measure_collision_rate(keys, AttrSet::parse("AB").unwrap(), 1000, 11);
        assert!((x - 0.6833).abs() < 0.03, "measured {x}");
    }

    #[test]
    fn temporal_flow_lengths_see_through_interleaving() {
        use msa_stream::{ClusteredStreamBuilder, FlowLengthDistribution};
        let stream = ClusteredStreamBuilder::new(2, 64)
            .records(40_000)
            .flow_lengths(FlowLengthDistribution::Constant { len: 25 })
            .active_flows(16)
            .seed(2)
            .build();
        let ab = AttrSet::parse("AB").unwrap();
        // Record-level runs are short because 16 flows interleave...
        let run_based = msa_stream::DatasetStats::compute(&stream.records, ab).flow_length(ab);
        // ...but bucket-level flow lengths recover (much more of) the
        // true per-flow value of 25.
        let derived = temporal_flow_lengths(&stream.records, &[ab], 1024, 7);
        let l = derived[0].1;
        assert!(l > 10.0, "bucket-level flow length {l}");
        assert!(
            l > 2.0 * run_based,
            "bucket-level {l} should far exceed run-based {run_based}"
        );
    }

    #[test]
    fn temporal_flow_lengths_near_one_for_random_data() {
        let mut rng = msa_stream::SplitMix64::new(9);
        let records: Vec<msa_stream::Record> = (0..20_000)
            .map(|i| msa_stream::Record::new(&[rng.gen_u32_below(2000)], i))
            .collect();
        let a = AttrSet::parse("A").unwrap();
        let derived = temporal_flow_lengths(&records, &[a], 512, 3);
        let l = derived[0].1;
        assert!(l < 2.5, "random data flow length {l}");
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = LftaTable::new(AttrSet::parse("A").unwrap(), 0, 0);
    }

    #[test]
    fn agg_state_merge_algebra() {
        let mut a = AggState::from_value(10);
        a.merge(&AggState::from_value(2));
        a.merge(&AggState::from_value(30));
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 42);
        assert_eq!(a.min, 2);
        assert_eq!(a.max, 30);
        assert!((a.avg() - 14.0).abs() < 1e-12);
        // Merge is order-insensitive.
        let mut b = AggState::from_value(30);
        b.merge(&AggState::from_value(10));
        b.merge(&AggState::from_value(2));
        assert_eq!(a, b);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let a = AttrSet::parse("A").unwrap();
        let mut t = LftaTable::new(a, 4, 0);
        t.probe(key(&[1]), AggState::unit());
        t.reset_stats();
        assert_eq!(t.stats().probes, 0);
        assert_eq!(t.occupied(), 1);
    }
}
