//! Epoch-aligned checkpoints and the write-ahead eviction log.
//!
//! The executor's fault tolerance rests on two durable artifacts:
//!
//! * a [`Snapshot`] — the complete serializable state of the executor at
//!   an **epoch boundary** (every LFTA table's statistics, the channel's
//!   PRNG cursor, the guard ladder, the HFTA's finished results, the
//!   full [`RunReport`], and the record high-water mark). Boundaries are
//!   the natural consistency points of the paper's pipeline: the
//!   end-of-epoch scan drains every table and closes the HFTA epoch, so
//!   the only state that exists is cumulative — no in-flight partials;
//! * an [`EvictionLog`] — a write-ahead log of every partial aggregate
//!   delivered on the LFTA → HFTA hop, stamped with a monotone sequence
//!   number. After a crash, the log suffix past the snapshot replays the
//!   current epoch's deliveries into the HFTA, and the sequence numbers
//!   let the resumed record stream be **deduplicated**: the executor
//!   re-processes records from the snapshot's high-water mark, and any
//!   delivery whose sequence number is at or below the log's high-water
//!   mark is suppressed — it already reached the HFTA before the crash.
//!   Every delivery is therefore applied exactly once, and a recovered
//!   run is bit-identical to a run that never crashed.
//!
//! Both artifacts use a versioned binary encoding framed by a magic tag
//! and guarded by an FNV-1a checksum; torn or corrupted bytes decode to
//! a typed [`SnapshotError`] instead of garbage state.

use crate::channel::ChannelState;
use crate::executor::{RunReport, ValueSource};
use crate::guard::{DegradationPolicy, GuardLevel, GuardPolicy, GuardState, GuardTransition};
use crate::hfta::{EpochResult, HftaState};
use crate::plan::PhysicalPlan;
use crate::table::{AggState, TableStats};
use crate::CostParams;
use msa_stream::hash::FastMap;
use msa_stream::{AttrSet, GroupKey, MAX_ATTRS};

/// Current snapshot/log encoding version.
///
/// Version 2 added the degraded-answer ledger section: the report's
/// shutdown/abandonment/denied-shed counters and breach flag, plus the
/// guard's [`crate::guard::DegradationPolicy`] and budget odometer, so
/// recovery restores guaranteed count intervals bit-exactly.
/// Version 3 added the adaptive-runtime swap ledger: the report's
/// `replans_committed`/`replans_rolled_back` counters, so a recovered
/// deployment remembers its hot-swap history bit-exactly.
/// Version 4 added the durable-store ledger: the report's
/// `records_stale_lost` counter, so generation-fallback loss survives a
/// second crash with its accounting intact.
pub const SNAPSHOT_VERSION: u32 = 4;

const SNAPSHOT_MAGIC: [u8; 4] = *b"MSNP";
const LOG_MAGIC: [u8; 4] = *b"MSWL";
const SHARDED_MAGIC: [u8; 4] = *b"MSSH";

/// Failure decoding (or capturing) a snapshot or eviction log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the expected magic tag.
    BadMagic,
    /// The encoding version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The payload checksum does not match — torn write or bit rot.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// The buffer ends mid-field.
    Truncated,
    /// A field decoded to an impossible value (named for diagnosis).
    Malformed(&'static str),
    /// A capture was requested mid-epoch (tables or HFTA maps non-empty).
    EpochUnaligned,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "bad magic tag"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            SnapshotError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#018x}, found {found:#018x}"
                )
            }
            SnapshotError::Truncated => write!(f, "buffer truncated"),
            SnapshotError::Malformed(what) => write!(f, "malformed field: {what}"),
            SnapshotError::EpochUnaligned => {
                write!(
                    f,
                    "capture requested mid-epoch; snapshots are epoch-aligned"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Failure recovering an executor from a snapshot + log pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// The snapshot was taken under a different plan/seed/epoch/cost
    /// configuration than the executor being recovered.
    PlanMismatch {
        /// Fingerprint the recovering executor computes.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// The log suffix is not contiguous from the snapshot's sequence
    /// high-water mark.
    LogGap {
        /// Sequence number the replay expected next.
        expected: u64,
        /// Sequence number actually found.
        found: u64,
    },
    /// A log-suffix entry belongs to a different epoch than the
    /// snapshot's open epoch — the artifacts are from different runs.
    LogEpochMismatch {
        /// The snapshot's open epoch.
        snapshot_epoch: u64,
        /// The offending entry's epoch.
        entry_epoch: u64,
        /// The offending entry's sequence number.
        seq: u64,
    },
    /// The log's high-water mark is behind the snapshot's — deliveries
    /// the snapshot accounts for were never made durable.
    LogBehindSnapshot {
        /// Sequence high-water mark recorded in the snapshot.
        snapshot_seq: u64,
        /// Last sequence number present in the log.
        log_seq: u64,
    },
    /// A log entry names a query slot the plan does not have.
    QueryOutOfRange {
        /// The offending slot.
        slot: u32,
        /// Number of query slots in the plan.
        queries: usize,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::PlanMismatch { expected, found } => write!(
                f,
                "snapshot belongs to a different configuration: fingerprint {found:#018x}, executor has {expected:#018x}"
            ),
            RecoveryError::LogGap { expected, found } => {
                write!(f, "eviction log gap: expected seq {expected}, found {found}")
            }
            RecoveryError::LogEpochMismatch {
                snapshot_epoch,
                entry_epoch,
                seq,
            } => write!(
                f,
                "log entry seq {seq} is from epoch {entry_epoch}, snapshot is at epoch {snapshot_epoch}"
            ),
            RecoveryError::LogBehindSnapshot {
                snapshot_seq,
                log_seq,
            } => write!(
                f,
                "eviction log ends at seq {log_seq}, behind the snapshot's seq {snapshot_seq}"
            ),
            RecoveryError::QueryOutOfRange { slot, queries } => {
                write!(f, "log entry targets query slot {slot}, plan has {queries}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// One write-ahead log record: a partial aggregate delivered to the
/// HFTA, with enough context to replay it exactly once.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogEntry {
    /// Epoch the delivery belongs to (the epoch being accumulated, or —
    /// during a flush — the epoch being closed).
    pub epoch: u64,
    /// Monotone delivery sequence number (1-based; 0 means "nothing
    /// delivered yet").
    pub seq: u64,
    /// HFTA query slot the partial targets.
    pub slot: u32,
    /// Number of copies the channel delivered (2 for a duplication
    /// fault) — replay re-applies the fault faithfully.
    pub copies: u8,
    /// The group.
    pub key: GroupKey,
    /// The partial aggregate.
    pub agg: AggState,
}

/// The write-ahead eviction log: every LFTA → HFTA delivery, in order.
///
/// The executor appends an entry *before* the HFTA applies it (write-
/// ahead), so after a crash the log is a superset of what the HFTA saw
/// and replaying the suffix reconstructs the open epoch exactly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EvictionLog {
    entries: Vec<LogEntry>,
}

impl EvictionLog {
    /// An empty log.
    pub fn new() -> EvictionLog {
        EvictionLog::default()
    }

    /// Rebuilds a log from raw entries (decoder and test harnesses).
    pub fn from_entries(entries: Vec<LogEntry>) -> EvictionLog {
        EvictionLog { entries }
    }

    /// Appends one delivery record.
    pub fn append(&mut self, entry: LogEntry) {
        debug_assert!(
            entry.seq > self.last_seq(),
            "log sequence numbers must be monotone"
        );
        self.entries.push(entry);
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was ever delivered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The highest sequence number present (0 for an empty log).
    pub fn last_seq(&self) -> u64 {
        self.entries.last().map_or(0, |e| e.seq)
    }

    /// Entries with a sequence number strictly greater than `seq` — the
    /// replay suffix past a snapshot's high-water mark.
    pub fn suffix(&self, seq: u64) -> impl Iterator<Item = &LogEntry> {
        // Entries are monotone, so the suffix is contiguous at the end.
        let start = self.entries.partition_point(|e| e.seq <= seq);
        self.entries.iter().skip(start)
    }

    /// Serializes the log (versioned, checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::default();
        w.u64(self.entries.len() as u64);
        for e in &self.entries {
            w.u64(e.epoch);
            w.u64(e.seq);
            w.u32(e.slot);
            w.u8(e.copies);
            w.key(e.key);
            w.agg(e.agg);
        }
        frame(LOG_MAGIC, w)
    }

    /// Deserializes a log, validating magic, version and checksum.
    #[must_use = "a decoded log must be inspected or replayed; dropping it hides corruption"]
    pub fn decode(bytes: &[u8]) -> Result<EvictionLog, SnapshotError> {
        let mut r = unframe(LOG_MAGIC, bytes)?;
        let n = r.u64()?;
        let mut entries = Vec::with_capacity(n.min(1 << 20) as usize);
        let mut last_seq = 0u64;
        for _ in 0..n {
            let entry = LogEntry {
                epoch: r.u64()?,
                seq: r.u64()?,
                slot: r.u32()?,
                copies: r.u8()?,
                key: r.key()?,
                agg: r.agg()?,
            };
            if entry.seq <= last_seq {
                return Err(SnapshotError::Malformed("log sequence not monotone"));
            }
            if entry.copies == 0 {
                return Err(SnapshotError::Malformed("log entry with zero copies"));
            }
            last_seq = entry.seq;
            entries.push(entry);
        }
        r.done()?;
        Ok(EvictionLog { entries })
    }
}

/// Encodes one WAL entry payload (unframed — the checkpoint store
/// wraps it in its own per-entry length + checksum frame so torn tails
/// are detectable entry-by-entry).
pub(crate) fn encode_log_entry(e: &LogEntry) -> Vec<u8> {
    let mut w = ByteWriter::default();
    w.u64(e.epoch);
    w.u64(e.seq);
    w.u32(e.slot);
    w.u8(e.copies);
    w.key(e.key);
    w.agg(e.agg);
    w.buf
}

/// Decodes one WAL entry payload; the inverse of [`encode_log_entry`].
#[must_use = "a decode failure is a torn or corrupt WAL frame the caller must repair"]
pub(crate) fn decode_log_entry(bytes: &[u8]) -> Result<LogEntry, SnapshotError> {
    let mut r = ByteReader {
        data: bytes,
        pos: 0,
    };
    let entry = LogEntry {
        epoch: r.u64()?,
        seq: r.u64()?,
        slot: r.u32()?,
        copies: r.u8()?,
        key: r.key()?,
        agg: r.agg()?,
    };
    if entry.copies == 0 {
        return Err(SnapshotError::Malformed("log entry with zero copies"));
    }
    r.done()?;
    Ok(entry)
}

/// The complete executor state at an epoch boundary.
///
/// Everything needed to resume the run bit-exactly: restore this state
/// into a freshly built executor (same plan, seed, epoch length, costs),
/// replay the [`EvictionLog`] suffix, and re-feed the record stream from
/// [`Snapshot::records_hwm`].
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Fingerprint of the configuration (plan shape, hash seed, epoch
    /// length, cost parameters, value source) — recovery refuses a
    /// snapshot taken under a different configuration.
    pub plan_fingerprint: u64,
    /// The epoch open at capture time (all earlier epochs are closed).
    pub epoch: u64,
    /// Delivery-sequence high-water mark at capture.
    pub seq: u64,
    /// Records processed at capture — the resume index into the stream.
    pub records_hwm: u64,
    /// Eviction-channel state (PRNG cursor, capacity budget, stats).
    pub channel: ChannelState,
    /// Overload-guard state, if a guard was installed.
    pub guard: Option<GuardState>,
    /// Per-table cumulative statistics, in plan order (tables themselves
    /// are empty at a boundary).
    pub tables: Vec<TableStats>,
    /// HFTA boundary state (finished results + counters).
    pub hfta: HftaState,
    /// The run report at capture.
    pub report: RunReport,
    /// Intra-epoch cost consumed by closed epochs (per-epoch delta base).
    pub intra_cost_mark: f64,
    /// Flush cost consumed by closed epochs.
    pub flush_cost_mark: f64,
    /// Dropped-eviction count consumed by closed epochs.
    pub dropped_mark: u64,
    /// Duplicated-eviction count consumed by closed epochs.
    pub duplicated_mark: u64,
}

impl Snapshot {
    /// Serializes the snapshot (versioned, checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::default();
        w.u64(self.plan_fingerprint);
        w.u64(self.epoch);
        w.u64(self.seq);
        w.u64(self.records_hwm);
        // Channel.
        w.f64(self.channel.faults.loss_rate);
        w.f64(self.channel.faults.duplicate_rate);
        w.opt_u64(self.channel.capacity);
        w.u64(self.channel.epoch_sent);
        w.u64(self.channel.rng_state);
        w.u64(self.channel.stats.delivered);
        w.u64(self.channel.stats.dropped);
        w.u64(self.channel.stats.duplicated);
        w.u64(self.channel.stats.overflowed);
        w.u64(self.channel.stats.shutdown_lost);
        // Guard.
        match &self.guard {
            None => w.u8(0),
            Some(g) => {
                w.u8(1);
                w.f64(g.policy.peak_budget);
                w.f64(g.policy.recover_ratio);
                w.u64(g.policy.recover_epochs);
                w.u64(g.policy.shed_factor);
                w.u8(g.level.index());
                w.u64(g.calm_epochs);
                w.u64(g.shed_counter);
                w.f64(g.last_cost);
                w.u8(u8::from(g.repair_requested));
                w.degradation(g.policy.degradation);
                w.u64(g.records_lost);
                w.u8(u8::from(g.bound_breached));
            }
        }
        // Tables.
        w.u64(self.tables.len() as u64);
        for t in &self.tables {
            w.u64(t.probes);
            w.u64(t.collisions);
            w.u64(t.absorbed_before_eviction);
        }
        // HFTA.
        w.u64(self.hfta.epoch);
        w.u64(self.hfta.received);
        w.u8(u8::from(self.hfta.retain_results));
        w.u64(self.hfta.results.len() as u64);
        for r in &self.hfta.results {
            w.u16(r.query.bits());
            w.u64(r.epoch);
            w.u64(r.aggregates.len() as u64);
            for (key, agg) in &r.aggregates {
                w.key(*key);
                w.agg(*agg);
            }
        }
        // Report.
        w.u64(self.report.records);
        w.u64(self.report.intra_probes);
        w.u64(self.report.intra_evictions);
        w.u64(self.report.flush_probes);
        w.u64(self.report.flush_evictions);
        w.u64(self.report.epochs);
        w.u64(self.report.filtered_out);
        w.u64(self.report.records_shed);
        w.u64(self.report.evictions_dropped);
        w.u64(self.report.evictions_duplicated);
        w.keyed_counts(&self.report.dropped_records);
        w.keyed_counts(&self.report.duplicated_records);
        w.u64(self.report.epochs_degraded);
        w.u64(self.report.shard_restarts);
        w.u64(self.report.records_poisoned);
        w.u64(self.report.records_unreplayed);
        w.u64(self.report.records_shutdown_lost);
        w.u64(self.report.records_stale_lost);
        w.u64(self.report.records_shed_denied);
        w.u64(self.report.replans_committed);
        w.u64(self.report.replans_rolled_back);
        w.keyed_counts(&self.report.abandoned_records);
        w.u8(u8::from(self.report.bound_breached));
        w.u64(self.report.guard_transitions.len() as u64);
        for t in &self.report.guard_transitions {
            w.u64(t.epoch);
            w.u8(t.from.index());
            w.u8(t.to.index());
            w.f64(t.observed_cost);
        }
        w.u64(self.report.epoch_costs.len() as u64);
        for &(e, intra, flush) in &self.report.epoch_costs {
            w.u64(e);
            w.f64(intra);
            w.f64(flush);
        }
        w.u64(self.report.epoch_faults.len() as u64);
        for &(e, dropped, duplicated) in &self.report.epoch_faults {
            w.u64(e);
            w.u64(dropped);
            w.u64(duplicated);
        }
        w.f64(self.report.costs.c1);
        w.f64(self.report.costs.c2);
        // Per-epoch delta bases.
        w.f64(self.intra_cost_mark);
        w.f64(self.flush_cost_mark);
        w.u64(self.dropped_mark);
        w.u64(self.duplicated_mark);
        frame(SNAPSHOT_MAGIC, w)
    }

    /// Deserializes a snapshot, validating magic, version and checksum.
    #[must_use = "a decoded snapshot must be installed or verified; dropping it hides corruption"]
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut r = unframe(SNAPSHOT_MAGIC, bytes)?;
        let plan_fingerprint = r.u64()?;
        let epoch = r.u64()?;
        let seq = r.u64()?;
        let records_hwm = r.u64()?;
        let channel = ChannelState {
            faults: crate::channel::ChannelFaults {
                loss_rate: r.f64()?,
                duplicate_rate: r.f64()?,
            },
            capacity: r.opt_u64()?,
            epoch_sent: r.u64()?,
            rng_state: r.u64()?,
            stats: crate::channel::ChannelStats {
                delivered: r.u64()?,
                dropped: r.u64()?,
                duplicated: r.u64()?,
                overflowed: r.u64()?,
                shutdown_lost: r.u64()?,
            },
        };
        let guard = match r.u8()? {
            0 => None,
            1 => {
                // Field order mirrors `encode`: the degradation policy
                // and budget odometer trail the v1 fields.
                let peak_budget = r.f64()?;
                let recover_ratio = r.f64()?;
                let recover_epochs = r.u64()?;
                let shed_factor = r.u64()?;
                let level = r.guard_level()?;
                let calm_epochs = r.u64()?;
                let shed_counter = r.u64()?;
                let last_cost = r.f64()?;
                let repair_requested = r.bool()?;
                let degradation = r.degradation()?;
                let records_lost = r.u64()?;
                let bound_breached = r.bool()?;
                Some(GuardState {
                    policy: GuardPolicy {
                        peak_budget,
                        recover_ratio,
                        recover_epochs,
                        shed_factor,
                        degradation,
                    },
                    level,
                    calm_epochs,
                    shed_counter,
                    last_cost,
                    repair_requested,
                    records_lost,
                    bound_breached,
                })
            }
            _ => return Err(SnapshotError::Malformed("guard presence tag")),
        };
        let n_tables = r.u64()?;
        let mut tables = Vec::with_capacity(n_tables.min(1 << 16) as usize);
        for _ in 0..n_tables {
            tables.push(TableStats {
                probes: r.u64()?,
                collisions: r.u64()?,
                absorbed_before_eviction: r.u64()?,
            });
        }
        let hfta_epoch = r.u64()?;
        let received = r.u64()?;
        let retain_results = r.bool()?;
        let n_results = r.u64()?;
        let mut results = Vec::with_capacity(n_results.min(1 << 20) as usize);
        for _ in 0..n_results {
            let query = r.attr_set()?;
            let res_epoch = r.u64()?;
            let n_groups = r.u64()?;
            let mut aggregates = FastMap::default();
            for _ in 0..n_groups {
                let key = r.key()?;
                let agg = r.agg()?;
                aggregates.insert(key, agg);
            }
            results.push(EpochResult {
                query,
                epoch: res_epoch,
                aggregates,
            });
        }
        let hfta = HftaState {
            epoch: hfta_epoch,
            received,
            retain_results,
            results,
        };
        let mut report = RunReport {
            records: r.u64()?,
            intra_probes: r.u64()?,
            intra_evictions: r.u64()?,
            flush_probes: r.u64()?,
            flush_evictions: r.u64()?,
            epochs: r.u64()?,
            filtered_out: r.u64()?,
            records_shed: r.u64()?,
            evictions_dropped: r.u64()?,
            evictions_duplicated: r.u64()?,
            dropped_records: r.keyed_counts()?,
            duplicated_records: r.keyed_counts()?,
            epochs_degraded: r.u64()?,
            shard_restarts: r.u64()?,
            records_poisoned: r.u64()?,
            records_unreplayed: r.u64()?,
            records_shutdown_lost: r.u64()?,
            records_stale_lost: r.u64()?,
            records_shed_denied: r.u64()?,
            replans_committed: r.u64()?,
            replans_rolled_back: r.u64()?,
            abandoned_records: r.keyed_counts()?,
            bound_breached: r.bool()?,
            ..RunReport::default()
        };
        let n_transitions = r.u64()?;
        for _ in 0..n_transitions {
            report.guard_transitions.push(GuardTransition {
                epoch: r.u64()?,
                from: r.guard_level()?,
                to: r.guard_level()?,
                observed_cost: r.f64()?,
            });
        }
        let n_costs = r.u64()?;
        for _ in 0..n_costs {
            report.epoch_costs.push((r.u64()?, r.f64()?, r.f64()?));
        }
        let n_faults = r.u64()?;
        for _ in 0..n_faults {
            report.epoch_faults.push((r.u64()?, r.u64()?, r.u64()?));
        }
        report.costs = CostParams {
            c1: r.f64()?,
            c2: r.f64()?,
        };
        let intra_cost_mark = r.f64()?;
        let flush_cost_mark = r.f64()?;
        let dropped_mark = r.u64()?;
        let duplicated_mark = r.u64()?;
        r.done()?;
        Ok(Snapshot {
            plan_fingerprint,
            epoch,
            seq,
            records_hwm,
            channel,
            guard,
            tables,
            hfta,
            report,
            intra_cost_mark,
            flush_cost_mark,
            dropped_mark,
            duplicated_mark,
        })
    }
}

/// The durable checkpoint of a sharded deployment: one epoch-aligned
/// [`Snapshot`] per shard, framed together under a shard-count header.
///
/// Each inner snapshot keeps its own frame (magic, version, checksum),
/// so a corrupted shard is pinpointed rather than poisoning the whole
/// artifact, and a single shard can be extracted and restored on its
/// own — which is exactly what per-shard crash recovery does.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedSnapshot {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<Snapshot>,
}

impl ShardedSnapshot {
    /// Serializes the sharded checkpoint: an outer frame carrying the
    /// shard count and each shard's length-prefixed inner frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::default();
        w.u64(self.shards.len() as u64);
        for shard in &self.shards {
            let inner = shard.encode();
            w.u64(inner.len() as u64);
            w.bytes(&inner);
        }
        frame(SHARDED_MAGIC, w)
    }

    /// Deserializes a sharded checkpoint, validating the outer frame and
    /// every inner shard frame.
    #[must_use = "a decoded sharded snapshot must be installed or verified; dropping it hides corruption"]
    pub fn decode(bytes: &[u8]) -> Result<ShardedSnapshot, SnapshotError> {
        let mut r = unframe(SHARDED_MAGIC, bytes)?;
        let n = r.u64()?;
        let mut shards = Vec::with_capacity(n.min(1 << 16) as usize);
        for _ in 0..n {
            let len = r.u64()?;
            let inner = r.take(
                usize::try_from(len).map_err(|_| SnapshotError::Malformed("shard frame length"))?,
            )?;
            shards.push(Snapshot::decode(inner)?);
        }
        r.done()?;
        Ok(ShardedSnapshot { shards })
    }
}

/// Fingerprints an executor configuration: plan shape, per-table hash
/// seed base, epoch length, cost parameters and value source. Recovery
/// compares fingerprints so a snapshot can never be restored into an
/// executor that would interpret its state differently.
pub fn plan_fingerprint(
    plan: &PhysicalPlan,
    seed: u64,
    epoch_micros: u64,
    costs: CostParams,
    value_source: ValueSource,
) -> u64 {
    let mut w = ByteWriter::default();
    w.u64(seed);
    w.u64(epoch_micros);
    w.f64(costs.c1);
    w.f64(costs.c2);
    match value_source {
        ValueSource::None => w.u8(0),
        ValueSource::Attr(a) => {
            w.u8(1);
            w.u8(a);
        }
    }
    w.u64(plan.nodes().len() as u64);
    for node in plan.nodes() {
        w.u16(node.attrs.bits());
        w.opt_u64(node.parent.map(|p| p as u64));
        w.u64(node.buckets as u64);
        w.u8(u8::from(node.is_query));
    }
    fnv64(&w.buf)
}

/// FNV-1a over the payload — fast, dependency-free, and plenty for
/// detecting torn writes and bit rot (not an integrity MAC). Shared
/// with the checkpoint store's manifest and WAL-entry frames.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Frames a payload: magic, version, length, payload, checksum.
fn frame(magic: [u8; 4], w: ByteWriter) -> Vec<u8> {
    let payload = w.buf;
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates a frame and returns a reader over the payload.
fn unframe(magic: [u8; 4], bytes: &[u8]) -> Result<ByteReader<'_>, SnapshotError> {
    if bytes.len() < 24 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..4] != magic {
        return Err(SnapshotError::BadMagic);
    }
    let head = |range: std::ops::Range<usize>| -> Result<&[u8], SnapshotError> {
        bytes.get(range).ok_or(SnapshotError::Truncated)
    };
    let version = u32::from_le_bytes(
        head(4..8)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?,
    );
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let len = u64::from_le_bytes(
        head(8..16)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?,
    ) as usize;
    let expected = u64::from_le_bytes(
        head(16..24)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?,
    );
    let payload = bytes.get(24..).ok_or(SnapshotError::Truncated)?;
    if payload.len() != len {
        return Err(SnapshotError::Truncated);
    }
    let found = fnv64(payload);
    if found != expected {
        return Err(SnapshotError::ChecksumMismatch { expected, found });
    }
    Ok(ByteReader {
        data: payload,
        pos: 0,
    })
}

/// Little-endian byte sink for the fixed field order of the format.
#[derive(Default)]
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    fn key(&mut self, key: GroupKey) {
        let vals = key.values();
        debug_assert!(vals.len() <= usize::from(u8::MAX));
        self.u8(u8::try_from(vals.len()).unwrap_or(u8::MAX));
        for &v in vals {
            self.u32(v);
        }
    }

    fn agg(&mut self, agg: AggState) {
        self.u64(agg.count);
        self.u64(agg.sum);
        self.u32(agg.min);
        self.u32(agg.max);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    fn keyed_counts(&mut self, counts: &[(AttrSet, u64)]) {
        self.u64(counts.len() as u64);
        for &(q, n) in counts {
            self.u16(q.bits());
            self.u64(n);
        }
    }

    fn degradation(&mut self, policy: DegradationPolicy) {
        match policy {
            DegradationPolicy::ExactOrStall => self.u8(0),
            DegradationPolicy::BoundedApprox { max_width } => {
                self.u8(1);
                self.u64(max_width);
            }
            DegradationPolicy::BestEffort => self.u8(2),
        }
    }
}

/// Little-endian byte source; every read is bounds-checked.
struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl ByteReader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let bytes = self
            .take(2)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        Ok(u16::from_le_bytes(bytes))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let bytes = self
            .take(4)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let bytes = self
            .take(8)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("boolean tag")),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(SnapshotError::Malformed("option tag")),
        }
    }

    fn key(&mut self) -> Result<GroupKey, SnapshotError> {
        let len = self.u8()? as usize;
        if len > MAX_ATTRS {
            return Err(SnapshotError::Malformed("group-key arity"));
        }
        let mut vals = [0u32; MAX_ATTRS];
        for v in vals.iter_mut().take(len) {
            *v = self.u32()?;
        }
        Ok(GroupKey::from_values(&vals[..len]))
    }

    fn agg(&mut self) -> Result<AggState, SnapshotError> {
        Ok(AggState {
            count: self.u64()?,
            sum: self.u64()?,
            min: self.u32()?,
            max: self.u32()?,
        })
    }

    fn attr_set(&mut self) -> Result<AttrSet, SnapshotError> {
        AttrSet::from_bits(self.u16()?).ok_or(SnapshotError::Malformed("attribute set"))
    }

    fn guard_level(&mut self) -> Result<GuardLevel, SnapshotError> {
        GuardLevel::from_index(self.u8()?).ok_or(SnapshotError::Malformed("guard level"))
    }

    fn degradation(&mut self) -> Result<DegradationPolicy, SnapshotError> {
        match self.u8()? {
            0 => Ok(DegradationPolicy::ExactOrStall),
            1 => Ok(DegradationPolicy::BoundedApprox {
                max_width: self.u64()?,
            }),
            2 => Ok(DegradationPolicy::BestEffort),
            _ => Err(SnapshotError::Malformed("degradation policy tag")),
        }
    }

    fn keyed_counts(&mut self) -> Result<Vec<(AttrSet, u64)>, SnapshotError> {
        let n = self.u64()?;
        let mut out = Vec::with_capacity(n.min(1 << 16) as usize);
        for _ in 0..n {
            let q = self.attr_set()?;
            out.push((q, self.u64()?));
        }
        Ok(out)
    }

    fn done(&self) -> Result<(), SnapshotError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelFaults, ChannelStats};

    fn sample_log() -> EvictionLog {
        let mut log = EvictionLog::new();
        for seq in 1..=50u64 {
            log.append(LogEntry {
                epoch: seq / 10,
                seq,
                slot: (seq % 3) as u32,
                copies: if seq % 7 == 0 { 2 } else { 1 },
                key: GroupKey::from_values(&[seq as u32, 2 * seq as u32]),
                agg: AggState {
                    count: seq,
                    sum: seq * 3,
                    min: 1,
                    max: seq as u32,
                },
            });
        }
        log
    }

    fn sample_snapshot() -> Snapshot {
        let a = AttrSet::parse("A").unwrap();
        let mut aggregates = FastMap::default();
        aggregates.insert(
            GroupKey::from_values(&[7]),
            AggState {
                count: 4,
                sum: 40,
                min: 5,
                max: 15,
            },
        );
        Snapshot {
            plan_fingerprint: 0xDEAD_BEEF,
            epoch: 3,
            seq: 17,
            records_hwm: 1234,
            channel: ChannelState {
                faults: ChannelFaults {
                    loss_rate: 0.1,
                    duplicate_rate: 0.05,
                },
                capacity: Some(64),
                epoch_sent: 0,
                rng_state: 0x1234_5678_9ABC_DEF0,
                stats: ChannelStats {
                    delivered: 20,
                    dropped: 2,
                    duplicated: 1,
                    overflowed: 0,
                    shutdown_lost: 3,
                },
            },
            guard: Some(GuardState {
                policy: GuardPolicy::new(500.0)
                    .with_degradation(DegradationPolicy::BoundedApprox { max_width: 40 }),
                level: GuardLevel::Shedding,
                calm_epochs: 1,
                shed_counter: 9,
                last_cost: 612.5,
                repair_requested: false,
                records_lost: 11,
                bound_breached: true,
            }),
            tables: vec![
                TableStats {
                    probes: 100,
                    collisions: 10,
                    absorbed_before_eviction: 55,
                },
                TableStats::default(),
            ],
            hfta: HftaState {
                epoch: 3,
                received: 19,
                retain_results: true,
                results: vec![EpochResult {
                    query: a,
                    epoch: 2,
                    aggregates,
                }],
            },
            report: RunReport {
                records: 1234,
                intra_probes: 2000,
                intra_evictions: 15,
                flush_probes: 60,
                flush_evictions: 30,
                epochs: 3,
                filtered_out: 12,
                records_shed: 7,
                evictions_dropped: 2,
                evictions_duplicated: 1,
                dropped_records: vec![(a, 9)],
                duplicated_records: vec![(a, 4)],
                epochs_degraded: 1,
                guard_transitions: vec![GuardTransition {
                    epoch: 2,
                    from: GuardLevel::Normal,
                    to: GuardLevel::Shedding,
                    observed_cost: 612.5,
                }],
                epoch_costs: vec![(0, 100.0, 50.0), (1, 110.0, 60.0)],
                epoch_faults: vec![(1, 2, 1)],
                shard_restarts: 2,
                records_poisoned: 1,
                records_unreplayed: 5,
                records_shutdown_lost: 3,
                records_stale_lost: 2,
                records_shed_denied: 6,
                replans_committed: 2,
                replans_rolled_back: 1,
                abandoned_records: vec![(a, 2)],
                bound_breached: true,
                costs: CostParams::paper(),
            },
            intra_cost_mark: 210.0,
            flush_cost_mark: 110.0,
            dropped_mark: 2,
            duplicated_mark: 1,
        }
    }

    #[test]
    fn snapshot_roundtrip_is_lossless() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
        // Round-tripping the decoded value produces identical content.
        assert_eq!(Snapshot::decode(&back.encode()).unwrap(), snap);
    }

    #[test]
    fn log_roundtrip_is_lossless() {
        let log = sample_log();
        let back = EvictionLog::decode(&log.encode()).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.last_seq(), 50);
        assert_eq!(back.suffix(45).count(), 5);
        assert_eq!(back.suffix(0).count(), 50);
        assert_eq!(back.suffix(50).count(), 0);
    }

    #[test]
    fn corrupted_bytes_are_rejected_with_typed_errors() {
        let snap = sample_snapshot();
        let good = snap.encode();

        // Any single flipped payload byte must be caught by the checksum.
        for pos in [24, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(
                    Snapshot::decode(&bad),
                    Err(SnapshotError::ChecksumMismatch { .. })
                ),
                "flip at {pos}"
            );
        }
        // Torn writes (truncation) and foreign buffers are typed too.
        assert_eq!(
            Snapshot::decode(&good[..good.len() - 3]),
            Err(SnapshotError::Truncated)
        );
        assert_eq!(Snapshot::decode(&good[..10]), Err(SnapshotError::Truncated));
        assert_eq!(Snapshot::decode(b"oops"), Err(SnapshotError::Truncated));
        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert_eq!(Snapshot::decode(&wrong_magic), Err(SnapshotError::BadMagic));
        let mut wrong_version = good.clone();
        wrong_version[4] = 99;
        assert_eq!(
            Snapshot::decode(&wrong_version),
            Err(SnapshotError::UnsupportedVersion(99))
        );
        // A log buffer is not a snapshot buffer.
        assert_eq!(
            Snapshot::decode(&sample_log().encode()),
            Err(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn corrupted_log_is_rejected() {
        let good = sample_log().encode();
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            EvictionLog::decode(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        assert_eq!(
            EvictionLog::decode(&good[..good.len() - 1]),
            Err(SnapshotError::Truncated)
        );
    }

    #[test]
    fn fingerprint_separates_configurations() {
        use crate::plan::{PhysicalPlan, PlanNode};
        let plan = |buckets| {
            PhysicalPlan::new(vec![PlanNode {
                attrs: AttrSet::parse("AB").unwrap(),
                parent: None,
                buckets,
                is_query: true,
            }])
            .unwrap()
        };
        let base = plan_fingerprint(
            &plan(8),
            1,
            1_000_000,
            CostParams::paper(),
            ValueSource::None,
        );
        assert_eq!(
            base,
            plan_fingerprint(
                &plan(8),
                1,
                1_000_000,
                CostParams::paper(),
                ValueSource::None
            ),
            "fingerprint is deterministic"
        );
        for (other, what) in [
            (
                plan_fingerprint(
                    &plan(16),
                    1,
                    1_000_000,
                    CostParams::paper(),
                    ValueSource::None,
                ),
                "buckets",
            ),
            (
                plan_fingerprint(
                    &plan(8),
                    2,
                    1_000_000,
                    CostParams::paper(),
                    ValueSource::None,
                ),
                "seed",
            ),
            (
                plan_fingerprint(&plan(8), 1, 500_000, CostParams::paper(), ValueSource::None),
                "epoch length",
            ),
            (
                plan_fingerprint(
                    &plan(8),
                    1,
                    1_000_000,
                    CostParams { c1: 1.0, c2: 60.0 },
                    ValueSource::None,
                ),
                "costs",
            ),
            (
                plan_fingerprint(
                    &plan(8),
                    1,
                    1_000_000,
                    CostParams::paper(),
                    ValueSource::Attr(3),
                ),
                "value source",
            ),
        ] {
            assert_ne!(base, other, "fingerprint must react to {what}");
        }
    }

    #[test]
    fn sharded_snapshot_roundtrip_is_lossless() {
        let mut shard1 = sample_snapshot();
        shard1.seq = 99;
        shard1.records_hwm = 4321;
        let sharded = ShardedSnapshot {
            shards: vec![sample_snapshot(), shard1],
        };
        let bytes = sharded.encode();
        let back = ShardedSnapshot::decode(&bytes).unwrap();
        assert_eq!(back, sharded);
        assert_eq!(ShardedSnapshot::decode(&back.encode()).unwrap(), sharded);
        // Empty deployments frame too (a run that never checkpointed).
        let empty = ShardedSnapshot { shards: Vec::new() };
        assert_eq!(ShardedSnapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn sharded_snapshot_rejects_corruption() {
        let sharded = ShardedSnapshot {
            shards: vec![sample_snapshot(), sample_snapshot()],
        };
        let good = sharded.encode();
        // Outer payload flip: caught by the outer checksum.
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0x20;
        assert!(matches!(
            ShardedSnapshot::decode(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // Torn write and foreign buffers are typed.
        assert_eq!(
            ShardedSnapshot::decode(&good[..good.len() - 5]),
            Err(SnapshotError::Truncated)
        );
        assert_eq!(
            ShardedSnapshot::decode(&sample_snapshot().encode()),
            Err(SnapshotError::BadMagic)
        );
        let mut wrong_version = good.clone();
        wrong_version[4] = 77;
        assert_eq!(
            ShardedSnapshot::decode(&wrong_version),
            Err(SnapshotError::UnsupportedVersion(77))
        );
    }

    #[test]
    fn empty_log_suffix_and_high_water() {
        let log = EvictionLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.last_seq(), 0);
        assert_eq!(log.suffix(0).count(), 0);
        let back = EvictionLog::decode(&log.encode()).unwrap();
        assert_eq!(back, log);
    }
}
