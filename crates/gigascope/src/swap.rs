//! The epoch-boundary hot-swap transaction: vocabulary types.
//!
//! The adaptive runtime (see `msa-core`) re-plans in the background and
//! installs the new feeding graph through
//! [`crate::shard::ShardedExecutor::hot_swap`] — a transaction with four
//! phases, all record-counted and seeded so swapping runs keep the
//! repo's two-run bit-identity:
//!
//! 1. **quiesce** — every shard must sit at the *same* epoch boundary
//!    (tables drained, nothing in flight at the HFTA); a mid-epoch
//!    attempt is refused, a skewed deployment is refused;
//! 2. **snapshot** — each shard captures its boundary state: counters,
//!    finished results, guard ladder + degradation odometer, channel
//!    PRNG cursor;
//! 3. **rehash + validate** — a new-plan executor per shard adopts the
//!    snapshot ([`crate::executor::Executor`]'s boundary-state
//!    transplant); the handoff is validated: record-count conservation,
//!    per-query bias-ledger conservation, finished-mass conservation,
//!    and degradation-promise (loss odometer + breach latch) carryover;
//! 4. **commit or roll back** — on success the new shards replace the
//!    old ones and `replans_committed` ticks; *any* validation failure
//!    drops the new shards (the old deployment was never touched),
//!    ticks `replans_rolled_back`, and the run continues on the old
//!    plan.
//!
//! A crash injected at any [`SwapCrashPoint`] recovers from durable
//! artifacts to either the old plan (before commit) or the new plan
//! (after commit) — never a torn state; `tests/adaptive.rs` proves each
//! recovery bit-identical to an uncrashed baseline.

use crate::executor::Executor;
use crate::snapshot::{RecoveryError, Snapshot, SnapshotError};
use msa_stream::store::StoreError;
use msa_stream::AttrSet;

/// Where, inside the swap transaction, an injected crash fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwapCrashPoint {
    /// After every shard quiesced and snapshotted, before any new-plan
    /// state exists. Recovery resumes the old plan.
    AfterQuiesce,
    /// After the new shards adopted and validated, one instant before
    /// the commit point. Recovery resumes the old plan.
    BeforeCommit,
    /// Right after the commit point (new shards installed and their
    /// checkpoints durable). Recovery resumes the new plan.
    AfterCommit,
}

/// Declarative fault injection for one hot-swap transaction: force the
/// validation phase to fail (a rollback drill) and/or crash the process
/// at a chosen [`SwapCrashPoint`]. Like every fault plan in this repo
/// the injection is purely declarative — the transaction takes the same
/// code path a real fault would take.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwapFault {
    /// Report a fabricated handoff violation on shard 0, forcing the
    /// transaction to roll back.
    pub fail_validation: bool,
    /// Crash the deployment at this point inside the transaction.
    pub crash: Option<SwapCrashPoint>,
}

impl SwapFault {
    /// No injected faults: the transaction runs clean.
    pub fn none() -> SwapFault {
        SwapFault::default()
    }

    /// Forces the validation phase to report a violation.
    pub fn failing_validation() -> SwapFault {
        SwapFault {
            fail_validation: true,
            crash: None,
        }
    }

    /// Crashes the deployment at `point` inside the transaction.
    pub fn crash_at(point: SwapCrashPoint) -> SwapFault {
        SwapFault {
            fail_validation: false,
            crash: Some(point),
        }
    }

    /// True when nothing is injected.
    pub fn is_none(&self) -> bool {
        *self == SwapFault::default()
    }
}

/// One handoff-validation check that did not conserve: the transaction
/// rolls back and reports exactly what diverged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandoffViolation {
    /// Shard whose handoff failed.
    pub shard: usize,
    /// Which conservation check failed.
    pub check: &'static str,
    /// The value the old plan's snapshot holds.
    pub expected: i128,
    /// The value the adopting new-plan executor holds.
    pub found: i128,
}

impl std::fmt::Display for HandoffViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {}: handoff check `{}` did not conserve (snapshot {}, adopted {})",
            self.shard, self.check, self.expected, self.found
        )
    }
}

/// Why a transaction rolled back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RollbackReason {
    /// A handoff-validation check failed.
    Validation(HandoffViolation),
    /// A [`SwapFault::failing_validation`] drill forced it.
    Injected,
}

/// How a hot-swap transaction ended. Every variant leaves the
/// deployment whole: either entirely on the old plan or entirely on the
/// new one, never torn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwapOutcome {
    /// The new plan is live; `replans_committed` ticked.
    Committed,
    /// A crash fired after the commit point; recovery from durable
    /// artifacts resumed the *new* plan.
    CommittedAfterCrash,
    /// Validation failed; the old plan kept serving untouched and
    /// `replans_rolled_back` ticked.
    RolledBack(RollbackReason),
    /// A crash fired before the commit point; recovery from durable
    /// artifacts resumed the *old* plan and `replans_rolled_back`
    /// ticked.
    RolledBackAfterCrash,
}

impl SwapOutcome {
    /// True when the deployment ended up on the new plan.
    pub fn committed(&self) -> bool {
        matches!(
            self,
            SwapOutcome::Committed | SwapOutcome::CommittedAfterCrash
        )
    }
}

/// What one hot-swap transaction did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "the caller must inspect whether the swap committed or rolled back"]
pub struct SwapReport {
    /// The epoch boundary the transaction ran at.
    pub epoch: u64,
    /// How it ended.
    pub outcome: SwapOutcome,
}

/// A hot-swap transaction that could not even reach its validation
/// phase: the deployment was not in a swappable state, or crash
/// recovery inside a drill failed. The old plan keeps serving in every
/// case.
#[derive(Debug, PartialEq)]
pub enum SwapError {
    /// A shard's crash fuse fired earlier; recover it first.
    ShardCrashed(usize),
    /// A shard refused its boundary snapshot (mid-epoch state).
    Unaligned(SnapshotError),
    /// Shards sit at different epochs — quiesce them with
    /// `align_to_epoch` first.
    EpochSkew {
        /// Epoch of shard 0.
        expected: u64,
        /// The divergent shard's epoch.
        found: u64,
        /// The divergent shard.
        shard: usize,
    },
    /// A crash drill needs deployment-wide durability
    /// (`with_durability`): a real crash keeps only durable artifacts.
    CrashDrillNeedsDurability,
    /// A shard's durable checkpoint lags the quiesce boundary — a crash
    /// there would lose committed work, so the drill refuses to run.
    StaleCheckpoint {
        /// The lagging shard.
        shard: usize,
    },
    /// Crash recovery failed while completing the drill.
    Recovery(RecoveryError),
    /// The handoff validated, but a store-backed shard could not make
    /// the new plan's boundary checkpoint durable. The transaction
    /// rolled back before its commit point — the old deployment keeps
    /// serving, untouched.
    DurableCommit {
        /// The shard whose store refused the commit.
        shard: usize,
        /// The storage failure.
        error: StoreError,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::ShardCrashed(k) => {
                write!(f, "shard {k} has crashed; recover it before swapping")
            }
            SwapError::Unaligned(e) => write!(f, "swap refused mid-epoch: {e}"),
            SwapError::EpochSkew {
                expected,
                found,
                shard,
            } => write!(
                f,
                "shard {shard} sits at epoch {found} but shard 0 at {expected}; \
                 align the deployment before swapping"
            ),
            SwapError::CrashDrillNeedsDurability => write!(
                f,
                "a swap crash drill needs deployment-wide durability \
                 (enable with_durability)"
            ),
            SwapError::StaleCheckpoint { shard } => write!(
                f,
                "shard {shard}'s durable checkpoint lags the quiesce boundary"
            ),
            SwapError::Recovery(e) => write!(f, "swap crash recovery failed: {e}"),
            SwapError::DurableCommit { shard, error } => write!(
                f,
                "shard {shard} could not make the swap durable (rolled back): {error}"
            ),
        }
    }
}

impl std::error::Error for SwapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwapError::Unaligned(e) => Some(e),
            SwapError::Recovery(e) => Some(e),
            SwapError::DurableCommit { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<RecoveryError> for SwapError {
    fn from(e: RecoveryError) -> SwapError {
        SwapError::Recovery(e)
    }
}

/// Record mass `query`'s finished results hold in `snapshot`.
fn snapshot_finished_mass(snapshot: &Snapshot, query: AttrSet) -> u64 {
    snapshot
        .hfta
        .results
        .iter()
        .filter(|r| r.query == query)
        .flat_map(|r| r.aggregates.values())
        .map(|a| a.count)
        .sum()
}

/// The handoff-validation phase: every conservation law the snapshot
/// promises must hold on the adopting executor before the transaction
/// may commit. The checks are deliberately independent of *how* the
/// adoption is implemented — they recompute both sides from scratch, so
/// a future refactor that breaks the transplant fails here, not in
/// production results.
pub(crate) fn validate_handoff(
    shard: usize,
    adopted: &Executor,
    snapshot: &Snapshot,
    old_queries: &[AttrSet],
) -> Result<(), HandoffViolation> {
    let violation = |check: &'static str, expected: i128, found: i128| HandoffViolation {
        shard,
        check,
        expected,
        found,
    };
    let report = adopted.report();
    if report.records != snapshot.report.records {
        return Err(violation(
            "record-count conservation",
            snapshot.report.records as i128,
            report.records as i128,
        ));
    }
    if adopted.current_epoch() != snapshot.epoch {
        return Err(violation(
            "epoch position",
            snapshot.epoch as i128,
            adopted.current_epoch() as i128,
        ));
    }
    for &q in old_queries {
        let expected = snapshot.report.count_bias(q);
        let found = report.count_bias(q);
        if found != expected {
            return Err(violation(
                "bias-ledger conservation",
                expected as i128,
                found as i128,
            ));
        }
        let expected_mass = snapshot_finished_mass(snapshot, q);
        let found_mass: u64 = adopted.hfta().totals(q).values().sum();
        if found_mass != expected_mass {
            return Err(violation(
                "finished-mass conservation",
                expected_mass as i128,
                found_mass as i128,
            ));
        }
    }
    let expected_lost = snapshot.guard.as_ref().map_or(0, |g| g.records_lost);
    let found_lost = adopted.guard().map_or(0, |g| g.records_lost());
    if found_lost != expected_lost {
        return Err(violation(
            "degradation-odometer carryover",
            expected_lost as i128,
            found_lost as i128,
        ));
    }
    let expected_breach = snapshot.guard.as_ref().is_some_and(|g| g.bound_breached);
    let found_breach = adopted.guard().is_some_and(|g| g.bound_breached());
    if found_breach != expected_breach {
        return Err(violation(
            "breach-latch carryover",
            i128::from(expected_breach),
            i128::from(found_breach),
        ));
    }
    Ok(())
}
