//! Sharded multi-core LFTA execution.
//!
//! Gigascope-style deployments scale by partitioning the packet stream
//! across processing units ahead of the aggregation tier. This module
//! runs `N` independent shard [`Executor`]s — each with its own LFTA
//! tables (cut to `buckets/N`), eviction channel, overload guard and a
//! hash seed derived from the root seed — on OS threads behind bounded
//! SPSC feeds, then merges the per-shard outputs deterministically:
//!
//! * records are routed by [`shard_of`], a pure function of the root
//!   seed and the record's attribute tuple (never its timestamp), so
//!   identical tuples always co-locate and replay-identical partitions
//!   fall out of any arrival order;
//! * per-epoch evictions merge into one [`Hfta`] in shard-then-sequence
//!   order ([`Hfta::merge_ordered`]), and per-shard [`RunReport`]s fold
//!   with the commutative [`RunReport::merge`] in shard order — the
//!   final outputs are therefore independent of thread scheduling;
//! * with one shard every derivation is the identity (same plan, same
//!   seed, no merge pass), so `ShardedExecutor` with `N = 1` is
//!   bit-identical to the serial [`Executor`].
//!
//! This file is the only place in the engine allowed to spawn threads
//! (msa-lint rule D005 enforces the containment): everything outside
//! sees ordinary deterministic values.

use crate::bounds::BoundsReport;
use crate::channel::ChannelStats;
use crate::executor::{Executor, ExecutorConfig, RunReport, ValueSource};
use crate::faults::{CrashPlan, FaultPlan, ShardFault};
use crate::guard::{DegradationPolicy, GuardPolicy};
use crate::hfta::Hfta;
use crate::plan::PhysicalPlan;
use crate::snapshot::{EvictionLog, RecoveryError, ShardedSnapshot, Snapshot};
use crate::store::StoreHandle;
use crate::supervise::{
    PoisonRecord, ShardDriver, ShardHealth, ShardHeartbeat, ShardState, SupervisorPolicy,
};
use crate::swap::{
    validate_handoff, HandoffViolation, RollbackReason, SwapCrashPoint, SwapError, SwapFault,
    SwapOutcome, SwapReport,
};
use crate::table::TableStats;
use crate::CostParams;
use msa_stream::hash::mix64;
use msa_stream::{AttrSet, Filter, Record, RecordChunk};
use std::sync::Arc;

/// Domain-separation salt for the partitioner's hash chain.
const PARTITION_SALT: u64 = 0x5348_4152_4450_4152;
/// Domain-separation salt for per-shard executor seeds.
const SHARD_SEED_SALT: u64 = 0x5348_4152_4453_4544;
/// Domain-separation salt for per-shard fault-plan seeds.
const FAULT_SEED_SALT: u64 = 0x5348_4152_4446_4C54;

/// Records fed to a shard per channel message.
const FEED_BATCH: usize = 256;
/// Bounded SPSC depth, in batches, per shard feed.
const FEED_DEPTH: usize = 4;

/// The shard a record belongs to: a pure function of the root seed and
/// the record's attribute tuple. Timestamps are deliberately excluded,
/// so re-ordered or re-timestamped replays of the same tuples partition
/// identically, and records with equal attributes always co-locate —
/// which is what keeps every per-group aggregate whole within one
/// shard's table cascade.
pub fn shard_of(root_seed: u64, record: &Record, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h = mix64(root_seed ^ PARTITION_SALT);
    for &a in &record.attrs {
        h = mix64(h ^ u64::from(a));
    }
    (h % (shards as u64).max(1)) as usize
}

/// The hash-seed base of shard `k` in an `n`-way deployment, derived
/// from the root seed. With one shard the derivation is the identity,
/// so a 1-way sharded run uses the exact serial executor seed.
pub fn shard_seed(root_seed: u64, k: usize, n: usize) -> u64 {
    if n == 1 {
        root_seed
    } else {
        mix64(root_seed ^ SHARD_SEED_SALT ^ k as u64)
    }
}

/// Per-shard fault-plan seed (same identity rule as [`shard_seed`]).
fn fault_seed(root_seed: u64, k: usize, n: usize) -> u64 {
    if n == 1 {
        root_seed
    } else {
        mix64(root_seed ^ FAULT_SEED_SALT ^ k as u64)
    }
}

/// How [`ShardedExecutor::run`] feeds records to the shard executors.
///
/// Both modes produce bit-identical outputs (the differential battery
/// in `tests/vectorized.rs` holds that line); the knob exists so the
/// scalar oracle stays drivable and every pre-existing deployment keeps
/// its exact behavior by default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IngestMode {
    /// Per-record scalar ingestion (the oracle path).
    #[default]
    Scalar,
    /// Columnar [`RecordChunk`]s of `size` lanes through the vectorized
    /// probe: the router partitions chunk-at-a-time and re-chunks per
    /// shard, workers drain whole chunks per panic boundary.
    Chunked {
        /// Lanes per chunk (clamped to at least 1).
        size: usize,
    },
}

/// Sharded-deployment construction failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// A deployment needs at least one shard.
    ZeroShards,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::ZeroShards => write!(f, "a sharded deployment needs at least one shard"),
        }
    }
}

impl std::error::Error for ShardError {}

/// `N` shard [`Executor`]s behind a deterministic hash partitioner.
///
/// Configure with the same builder verbs as [`Executor`] (they apply to
/// every shard, with per-shard derivations where the subsystem needs
/// them: seeds, fault PRNG streams, `peak_budget / N` guard budgets,
/// `buckets / N` table allocations), feed records with
/// [`ShardedExecutor::run`], and collect the merged outputs with
/// [`ShardedExecutor::finish`].
#[derive(Debug)]
pub struct ShardedExecutor {
    config: ExecutorConfig,
    crashes: Vec<CrashPlan>,
    shard_faults: Vec<ShardFault>,
    policy: SupervisorPolicy,
    ingest: IngestMode,
    /// Per-shard durable stores (empty = in-memory durability only).
    /// Shard `k` persists through `stores[k]`; a deployment may attach
    /// fewer stores than shards, leaving the tail un-stored.
    stores: Vec<StoreHandle>,
    shards: Vec<Executor>,
    health: Vec<ShardHealth>,
    heartbeats: Vec<Arc<ShardHeartbeat>>,
    n: usize,
    /// Queries a committed hot-swap removed from the live plan. Their
    /// finished results stay in every shard's HFTA verbatim; `finish`
    /// must still merge them, so removal never erases history.
    retired: Vec<AttrSet>,
}

impl ShardedExecutor {
    /// Creates an `shards`-way deployment over `plan`. The plan is the
    /// *serial* plan — each shard instantiates it with `buckets / N`
    /// per table, so the deployment as a whole respects the memory
    /// limit the plan was sized for.
    pub fn new(
        plan: PhysicalPlan,
        costs: CostParams,
        epoch_micros: u64,
        seed: u64,
        shards: usize,
    ) -> Result<ShardedExecutor, ShardError> {
        if shards == 0 {
            return Err(ShardError::ZeroShards);
        }
        let mut sharded = ShardedExecutor {
            config: ExecutorConfig::new(plan, costs, epoch_micros, seed),
            crashes: vec![CrashPlan::none(); shards],
            shard_faults: vec![ShardFault::none(); shards],
            policy: SupervisorPolicy::default(),
            ingest: IngestMode::Scalar,
            stores: Vec::new(),
            shards: Vec::new(),
            health: vec![ShardHealth::default(); shards],
            heartbeats: (0..shards)
                .map(|_| Arc::new(ShardHeartbeat::default()))
                .collect(),
            n: shards,
            retired: Vec::new(),
        };
        sharded.rebuild();
        Ok(sharded)
    }

    /// The executor configuration of shard `k`: the serial recipe with
    /// the plan split `N` ways, the shard's derived hash and fault
    /// seeds, its slice of the guard budget, and its crash fuses. A
    /// shard with an armed [`ShardFault`] is durable whatever the
    /// deployment setting — supervised restart recovers from the
    /// epoch-aligned snapshot, and durability is observation-
    /// transparent (`durability_does_not_change_results`).
    fn shard_config(&self, k: usize) -> ExecutorConfig {
        self.shard_config_for(&self.config.plan, k)
    }

    /// [`ShardedExecutor::shard_config`] against an arbitrary serial
    /// plan — the hot-swap transaction builds *new-plan* shard recipes
    /// while the old plan is still installed.
    fn shard_config_for(&self, plan: &PhysicalPlan, k: usize) -> ExecutorConfig {
        let mut cfg = self.config.clone();
        cfg.plan = plan.split_for_shards(self.n);
        cfg.seed = shard_seed(self.config.seed, k, self.n);
        if let Some(faults) = &mut cfg.faults {
            faults.seed = fault_seed(faults.seed, k, self.n);
        }
        if let Some(guard) = &mut cfg.guard {
            guard.peak_budget /= self.n as f64;
            if let DegradationPolicy::BoundedApprox { max_width } = guard.degradation {
                // The promised interval width is a deployment-wide
                // budget: shard shares must sum to exactly `max_width`
                // (merged widths add), so low-index shards absorb the
                // division remainder.
                let n = self.n as u64;
                let share = max_width / n.max(1) + u64::from((k as u64) < max_width % n.max(1));
                guard.degradation = DegradationPolicy::BoundedApprox { max_width: share };
            }
        }
        cfg.crash = self.crashes.get(k).copied().unwrap_or_else(CrashPlan::none);
        cfg.durable = self.config.durable || self.shard_faults.get(k).is_some_and(|f| !f.is_none());
        cfg
    }

    /// (Re)builds every shard executor from the current configuration.
    /// Builders call this; any processed state is discarded, exactly as
    /// reconfiguring a serial executor mid-stream would be a new run.
    fn rebuild(&mut self) {
        self.shards = (0..self.n)
            .map(|k| {
                let ex = self.shard_config(k).build();
                match self.stores.get(k) {
                    Some(store) => ex.with_store(store.clone()),
                    None => ex,
                }
            })
            .collect();
        self.health = vec![ShardHealth::default(); self.n];
    }

    /// Sets the metric-value source for every shard.
    pub fn with_value_source(mut self, source: ValueSource) -> ShardedExecutor {
        self.config.value_source = source;
        self.rebuild();
        self
    }

    /// Installs a selection filter on every shard.
    pub fn with_filter(mut self, filter: Filter) -> ShardedExecutor {
        self.config.filter = filter;
        self.rebuild();
        self
    }

    /// Wires channel-level faults into every shard. Each shard's
    /// channel draws an independent PRNG stream derived from the plan's
    /// seed, so fault decisions stay deterministic per shard.
    pub fn with_faults(mut self, plan: &FaultPlan) -> ShardedExecutor {
        self.config.faults = Some(*plan);
        self.rebuild();
        self
    }

    /// Enables the overload guard on every shard, each policing
    /// `peak_budget / N` — its share of the deployment budget.
    pub fn with_guard(mut self, policy: GuardPolicy) -> ShardedExecutor {
        self.config.guard = Some(policy);
        self.rebuild();
        self
    }

    /// Enables the write-ahead eviction log and boundary checkpoints on
    /// every shard.
    pub fn with_durability(mut self) -> ShardedExecutor {
        self.config.durable = true;
        self.rebuild();
        self
    }

    /// Attaches one durable [`StoreHandle`] per shard (by index) and
    /// enables durability deployment-wide: shard `k` checkpoints into
    /// `stores[k]`, supervised restarts recover from it with
    /// generation fallback, and hot-swaps commit their handoff through
    /// it. Extra handles beyond the shard count are ignored; with fewer
    /// handles the tail shards keep in-memory durability only.
    pub fn with_stores(mut self, stores: Vec<StoreHandle>) -> ShardedExecutor {
        self.config.durable = true;
        self.stores = stores;
        self.rebuild();
        self
    }

    /// Arms crash fuses on shard `k` only (fuse counters are
    /// shard-local: they count the shard's own records and offers).
    pub fn with_crash(mut self, k: usize, crash: CrashPlan) -> ShardedExecutor {
        self.crashes[k] = crash;
        self.rebuild();
        self
    }

    /// Arms a supervised [`ShardFault`] on shard `k`: an injected panic
    /// or stall the shard supervisor must absorb (restart, quarantine
    /// or explicit degradation) without aborting the deployment. Fuse
    /// indices are shard-local, like crash fuses.
    pub fn with_shard_fault(mut self, k: usize, fault: ShardFault) -> ShardedExecutor {
        self.shard_faults[k] = fault;
        self.rebuild();
        self
    }

    /// Overrides the supervision policy (stuck deadline, poison
    /// threshold, replay-buffer bound) for every shard.
    pub fn with_supervision(mut self, policy: SupervisorPolicy) -> ShardedExecutor {
        self.policy = policy;
        self.rebuild();
        self
    }

    /// Selects the ingestion path (see [`IngestMode`]). Pure feed
    /// plumbing — no executor state depends on it, so no rebuild.
    pub fn with_ingest(mut self, mode: IngestMode) -> ShardedExecutor {
        self.ingest = mode;
        self
    }

    /// Supervision outcome of shard `k` from the runs so far: restarts,
    /// caught panics, stuck detections, replay volume and quarantined
    /// poison records.
    pub fn shard_health(&self, k: usize) -> &ShardHealth {
        &self.health[k]
    }

    /// Every quarantined poison record across the deployment, in shard
    /// order — the typed report behind `RunReport::records_poisoned`.
    pub fn poison_reports(&self) -> Vec<PoisonRecord> {
        self.health
            .iter()
            .flat_map(|h| h.poisoned.iter().cloned())
            .collect()
    }

    /// Shard `k`'s live heartbeat (progress counter + supervision
    /// state), observable from outside the worker thread.
    pub fn heartbeat(&self, k: usize) -> Arc<ShardHeartbeat> {
        Arc::clone(&self.heartbeats[k])
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.n
    }

    /// The shard executor at index `k`.
    pub fn shard(&self, k: usize) -> &Executor {
        &self.shards[k]
    }

    /// Indices of shards whose crash fuse has fired.
    pub fn crashed_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, ex)| ex.has_crashed())
            .map(|(k, _)| k)
            .collect()
    }

    /// Splits `records` into per-shard partitions, preserving stream
    /// order within each partition — exactly the sequences the shard
    /// executors consume.
    pub fn partition(&self, records: &[Record]) -> Vec<Vec<Record>> {
        let mut parts = vec![Vec::new(); self.n];
        for &r in records {
            parts[shard_of(self.config.seed, &r, self.n)].push(r);
        }
        parts
    }

    /// Streams `records` through the deployment: the caller's thread
    /// routes each record to its shard's bounded SPSC feed (in stream
    /// order), one OS thread per shard drains its feed into its
    /// executor, and every executor is joined back before returning —
    /// so the post-run state is a plain deterministic value whatever
    /// the scheduler did.
    pub fn run(&mut self, records: &[Record]) {
        match self.ingest {
            IngestMode::Scalar => self.run_scalar(records),
            IngestMode::Chunked { size } => self.run_chunked(records, size),
        }
    }

    /// The per-record feed path (see [`IngestMode::Scalar`]).
    fn run_scalar(&mut self, records: &[Record]) {
        if self.n == 1 {
            if self.shard_faults.first().is_some_and(|f| f.is_none()) {
                // Single healthy shard: the serial fast path,
                // bit-identical to the plain executor (no threads, no
                // channel hop, no supervision overhead).
                if let Some(ex) = self.shards.first_mut() {
                    ex.run(records);
                }
                return;
            }
            // Single shard with an armed fault: run the supervision
            // loop inline on the caller's thread — same state machine,
            // no thread to isolate.
            let Some(heartbeat) = self.heartbeats.first().map(Arc::clone) else {
                return;
            };
            if let Some(ex) = self.shards.pop() {
                let mut driver = ShardDriver::new(
                    0,
                    self.shard_config(0),
                    ex,
                    self.shard_faults
                        .first()
                        .copied()
                        .unwrap_or_else(ShardFault::none),
                    self.policy,
                    heartbeat,
                );
                for batch in records.chunks(FEED_BATCH) {
                    driver.offer(batch);
                }
                let (ex, health) = driver.close();
                self.shards.push(ex);
                if let Some(h) = self.health.first_mut() {
                    h.absorb(&health);
                }
            }
            return;
        }
        let executors = std::mem::take(&mut self.shards);
        let root_seed = self.config.seed;
        let n = self.n;
        let configs: Vec<ExecutorConfig> = (0..n).map(|k| self.shard_config(k)).collect();
        let policy = self.policy;
        let finished = std::thread::scope(|scope| {
            let mut senders = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for (k, (ex, cfg)) in executors.into_iter().zip(configs).enumerate() {
                let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<Record>>(FEED_DEPTH);
                senders.push(tx);
                let fault = self
                    .shard_faults
                    .get(k)
                    .copied()
                    .unwrap_or_else(ShardFault::none);
                let Some(heartbeat) = self.heartbeats.get(k).map(Arc::clone) else {
                    continue;
                };
                handles.push(scope.spawn(move || {
                    // Every worker runs the supervision loop: records
                    // are processed inside supervise.rs's panic
                    // boundary, so a dying shard restarts from its
                    // checkpoint instead of killing the deployment.
                    let mut driver = ShardDriver::new(k, cfg, ex, fault, policy, heartbeat);
                    while let Ok(batch) = rx.recv() {
                        driver.offer(&batch);
                    }
                    driver.close()
                }));
            }
            let mut bufs: Vec<Vec<Record>> =
                (0..n).map(|_| Vec::with_capacity(FEED_BATCH)).collect();
            for &r in records {
                let k = shard_of(root_seed, &r, n);
                let Some(buf) = bufs.get_mut(k) else { continue };
                buf.push(r);
                if buf.len() == FEED_BATCH {
                    let full = std::mem::replace(buf, Vec::with_capacity(FEED_BATCH));
                    // A send only fails if the shard thread died; the
                    // join below surfaces the failure.
                    if let Some(tx) = senders.get(k) {
                        let _ = tx.send(full);
                    }
                }
            }
            for (tx, buf) in senders.iter().zip(bufs) {
                if !buf.is_empty() {
                    let _ = tx.send(buf);
                }
            }
            drop(senders);
            let mut out = Vec::with_capacity(n);
            for (k, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(result) => out.push(result),
                    // The supervision boundary lives inside the driver;
                    // an unwind escaping it is a supervisor bug, not a
                    // shard fault, and must not be re-raised quietly.
                    Err(_) => panic!("shard {k} worker died outside the supervision boundary"),
                }
            }
            out
        });
        for (k, (ex, health)) in finished.into_iter().enumerate() {
            self.shards.push(ex);
            if let Some(h) = self.health.get_mut(k) {
                h.absorb(&health);
            }
        }
    }

    /// The columnar feed path (see [`IngestMode::Chunked`]): the router
    /// partitions chunk-at-a-time — records route in stream order into
    /// per-shard [`RecordChunk`] builders, and a shard's chunk ships
    /// the moment it fills — so workers receive ready-to-probe columnar
    /// batches. The final, partially-filled chunk of every shard is
    /// flushed at feed close, never dropped.
    fn run_chunked(&mut self, records: &[Record], size: usize) {
        let size = size.max(1);
        if self.n == 1 {
            if self.shard_faults.first().is_some_and(|f| f.is_none()) {
                // Single healthy shard: the vectorized probe without
                // threads, channel hops or supervision overhead.
                if let Some(ex) = self.shards.first_mut() {
                    ex.run_chunked(records, size);
                }
                return;
            }
            // Single shard with an armed fault: the inline supervision
            // loop, fed columnar (the driver falls back to the
            // per-record pump while the drill is armed).
            let Some(heartbeat) = self.heartbeats.first().map(Arc::clone) else {
                return;
            };
            if let Some(ex) = self.shards.pop() {
                let mut driver = ShardDriver::new(
                    0,
                    self.shard_config(0),
                    ex,
                    self.shard_faults
                        .first()
                        .copied()
                        .unwrap_or_else(ShardFault::none),
                    self.policy,
                    heartbeat,
                );
                for batch in records.chunks(size) {
                    driver.offer_chunk(&RecordChunk::from_records(batch));
                }
                let (ex, health) = driver.close();
                self.shards.push(ex);
                if let Some(h) = self.health.first_mut() {
                    h.absorb(&health);
                }
            }
            return;
        }
        let executors = std::mem::take(&mut self.shards);
        let root_seed = self.config.seed;
        let n = self.n;
        let configs: Vec<ExecutorConfig> = (0..n).map(|k| self.shard_config(k)).collect();
        let policy = self.policy;
        let finished = std::thread::scope(|scope| {
            let mut senders = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for (k, (ex, cfg)) in executors.into_iter().zip(configs).enumerate() {
                let (tx, rx) = std::sync::mpsc::sync_channel::<RecordChunk>(FEED_DEPTH);
                senders.push(tx);
                let fault = self
                    .shard_faults
                    .get(k)
                    .copied()
                    .unwrap_or_else(ShardFault::none);
                let Some(heartbeat) = self.heartbeats.get(k).map(Arc::clone) else {
                    continue;
                };
                handles.push(scope.spawn(move || {
                    let mut driver = ShardDriver::new(k, cfg, ex, fault, policy, heartbeat);
                    while let Ok(chunk) = rx.recv() {
                        driver.offer_chunk(&chunk);
                    }
                    driver.close()
                }));
            }
            let mut bufs: Vec<RecordChunk> =
                (0..n).map(|_| RecordChunk::with_capacity(size)).collect();
            for &r in records {
                let k = shard_of(root_seed, &r, n);
                let Some(buf) = bufs.get_mut(k) else { continue };
                buf.push(&r);
                if buf.len() == size {
                    let full = std::mem::replace(buf, RecordChunk::with_capacity(size));
                    if let Some(tx) = senders.get(k) {
                        let _ = tx.send(full);
                    }
                }
            }
            for (tx, buf) in senders.iter().zip(bufs) {
                if !buf.is_empty() {
                    let _ = tx.send(buf);
                }
            }
            drop(senders);
            let mut out = Vec::with_capacity(n);
            for (k, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(result) => out.push(result),
                    Err(_) => panic!("shard {k} worker died outside the supervision boundary"),
                }
            }
            out
        });
        for (k, (ex, health)) in finished.into_iter().enumerate() {
            self.shards.push(ex);
            if let Some(h) = self.health.get_mut(k) {
                h.absorb(&health);
            }
        }
    }

    /// The deployment's live degraded-answer view: every shard's
    /// guaranteed intervals folded with the commutative
    /// [`BoundsReport::merge`] (fold order cannot matter), plus the
    /// replay volume supervision recovered instead of losing. Queryable
    /// at any epoch boundary without stopping ingestion.
    pub fn bounds(&self) -> BoundsReport {
        let mut merged: Option<BoundsReport> = None;
        for ex in &self.shards {
            let b = ex.bounds();
            match &mut merged {
                Some(acc) => acc.merge(&b),
                None => merged = Some(b),
            }
        }
        let mut bounds = merged.unwrap_or_default();
        for h in &self.health {
            bounds.records_replayed += h.records_replayed;
        }
        bounds
    }

    /// Merged eviction-channel accounting across all shards.
    pub fn channel_stats(&self) -> ChannelStats {
        let mut stats = ChannelStats::default();
        for ex in &self.shards {
            stats.merge(ex.channel_stats());
        }
        stats
    }

    /// Shard `k`'s durable artifacts (see [`Executor::durable_state`]).
    pub fn durable_state(&self, k: usize) -> Option<(Snapshot, EvictionLog)> {
        self.shards[k].durable_state()
    }

    /// The deployment-wide checkpoint: every shard's latest boundary
    /// snapshot under one shard-count header. `None` until every shard
    /// has checkpointed at least once.
    pub fn durable_snapshot(&self) -> Option<ShardedSnapshot> {
        let mut shards = Vec::with_capacity(self.n);
        for ex in &self.shards {
            shards.push(ex.latest_snapshot()?.clone());
        }
        Some(ShardedSnapshot { shards })
    }

    /// Recovers crashed shard `k` from its durable artifacts and
    /// re-feeds it the tail of its partition of `records` (the full
    /// stream the deployment was running when the shard died), from
    /// the snapshot's record high-water mark. The recovered shard is
    /// then bit-identical to one that never crashed — the exactly-once
    /// replay rule of [`Executor::recover`], applied per shard.
    pub fn recover_shard(
        &mut self,
        k: usize,
        snapshot: &Snapshot,
        log: EvictionLog,
        records: &[Record],
    ) -> Result<(), RecoveryError> {
        let mut cfg = self.shard_config(k);
        cfg.crash = CrashPlan::none();
        let mut ex = cfg.build().recover(snapshot, log)?;
        if let Some(store) = self.stores.get(k) {
            ex = ex.with_store(store.clone());
        }
        let part: Vec<Record> = records
            .iter()
            .filter(|r| shard_of(self.config.seed, r, self.n) == k)
            .copied()
            .collect();
        let resume_at = usize::try_from(snapshot.records_hwm)
            .unwrap_or(part.len())
            .min(part.len());
        ex.run(&part[resume_at..]);
        self.shards[k] = ex;
        self.crashes[k] = CrashPlan::none();
        Ok(())
    }

    /// Recovers crashed shard `k` from its attached durable store —
    /// the newest readable generation, falling back past (and
    /// quarantining) corrupt ones — then re-feeds the tail of its
    /// partition of `records` from the recovered high-water mark. When
    /// no generation is readable the shard restarts fresh and replays
    /// its whole partition. Returns the number of generation fallbacks
    /// taken (0 = recovered bit-identically from the newest
    /// checkpoint), or `None` when shard `k` has no store attached.
    pub fn recover_shard_from_store(&mut self, k: usize, records: &[Record]) -> Option<u64> {
        let store = self.stores.get(k)?.clone();
        let mut cfg = self.shard_config(k);
        cfg.crash = CrashPlan::none();
        let recovery = store.recover_executor(&cfg);
        let mut ex = match recovery.executor {
            Some(ex) => ex,
            None => cfg.build().with_store(store),
        };
        let part: Vec<Record> = records
            .iter()
            .filter(|r| shard_of(self.config.seed, r, self.n) == k)
            .copied()
            .collect();
        let resume_at = usize::try_from(recovery.records_hwm)
            .unwrap_or(part.len())
            .min(part.len());
        ex.run(&part[resume_at..]);
        self.shards[k] = ex;
        self.crashes[k] = CrashPlan::none();
        Some(recovery.fallbacks)
    }

    /// The serial plan currently installed (each shard instantiates its
    /// `buckets / N` split).
    pub fn plan(&self) -> &PhysicalPlan {
        &self.config.plan
    }

    /// The query set the live plan serves, in slot order.
    pub fn queries(&self) -> Vec<AttrSet> {
        self.shards
            .first()
            .map(|ex| ex.queries().to_vec())
            .unwrap_or_default()
    }

    /// The epoch currently open on shard 0 (all shards agree outside a
    /// skewed mid-`run` window).
    pub fn current_epoch(&self) -> u64 {
        self.shards.first().map_or(0, Executor::current_epoch)
    }

    /// Force-closes epochs on every shard until `epoch` is the open one
    /// — the quiesce barrier of the hot-swap transaction. Each close is
    /// the identical flush a record timestamp crossing the boundary
    /// would run (see [`Executor::align_to_epoch`]), so aligning between
    /// record batches is state-identical to the boundary arriving in the
    /// stream.
    pub fn align_to_epoch(&mut self, epoch: u64) {
        for ex in &mut self.shards {
            ex.align_to_epoch(epoch);
        }
    }

    /// Live per-table collision/eviction telemetry, summed across
    /// shards by relation — the observed rates the drift detector folds
    /// back into the cost model. Shards hash independently but split
    /// every table `buckets / N`, so the summed collision rate is
    /// directly comparable to the serial plan's predicted rate.
    pub fn table_stats(&self) -> Vec<(AttrSet, TableStats)> {
        let mut merged: Vec<(AttrSet, TableStats)> = Vec::new();
        for ex in &self.shards {
            for (attrs, stats) in ex.table_stats() {
                match merged.iter_mut().find(|(a, _)| *a == attrs) {
                    Some((_, acc)) => {
                        acc.probes += stats.probes;
                        acc.collisions += stats.collisions;
                        acc.absorbed_before_eviction += stats.absorbed_before_eviction;
                    }
                    None => merged.push((attrs, stats)),
                }
            }
        }
        merged
    }

    /// Resets every shard's per-table statistics (a fresh drift window).
    pub fn reset_table_stats(&mut self) {
        for ex in &mut self.shards {
            ex.reset_table_stats();
        }
    }

    /// The epoch-boundary hot-swap transaction: quiesce, snapshot,
    /// rehash into `new_plan`, validate the handoff, commit — or roll
    /// back to the old plan on any validation failure. See
    /// [`crate::swap`] for the state machine and every outcome's
    /// guarantee; `fault` injects rollback/crash drills
    /// ([`SwapFault::none`] for a clean swap).
    ///
    /// On success the deployment serves `new_plan` from the next record
    /// on, with every counter, finished result, degradation promise and
    /// PRNG cursor carried over bit-exactly; queries `new_plan` drops
    /// are retired (their history stays in `finish`'s merged output).
    /// On rollback the old deployment is untouched — the new shards
    /// never saw a record — and `replans_rolled_back` ticks.
    pub fn hot_swap(
        &mut self,
        new_plan: PhysicalPlan,
        fault: &SwapFault,
    ) -> Result<SwapReport, SwapError> {
        if let Some(k) = self.shards.iter().position(Executor::has_crashed) {
            return Err(SwapError::ShardCrashed(k));
        }
        if fault.crash.is_some() && !self.config.durable {
            return Err(SwapError::CrashDrillNeedsDurability);
        }
        // Phase 1 + 2: quiesce barrier — every shard must sit at the
        // same epoch boundary — and per-shard boundary snapshots.
        let mut snaps = Vec::with_capacity(self.n);
        for ex in &self.shards {
            snaps.push(ex.snapshot().map_err(SwapError::Unaligned)?);
        }
        let epoch = snaps.first().map_or(0, |s| s.epoch);
        for (k, s) in snaps.iter().enumerate() {
            if s.epoch != epoch {
                return Err(SwapError::EpochSkew {
                    expected: epoch,
                    found: s.epoch,
                    shard: k,
                });
            }
        }
        if fault.crash.is_some() {
            // A drill crash recovers from durable artifacts only;
            // refuse to run if any shard's checkpoint lags the quiesce
            // boundary (recovery would silently lose committed work).
            for (k, ex) in self.shards.iter().enumerate() {
                let current = ex
                    .latest_snapshot()
                    .is_some_and(|s| s.epoch == epoch && s.records_hwm == ex.report().records);
                if !current {
                    return Err(SwapError::StaleCheckpoint { shard: k });
                }
            }
        }
        // The swap window is observable on the supervision pulse.
        for hb in &self.heartbeats {
            hb.publish(ShardState::Restarting);
        }
        if fault.crash == Some(SwapCrashPoint::AfterQuiesce) {
            return self.recover_old_after_crash(epoch);
        }
        // Phase 3: build new-plan shards and transplant the boundary
        // state. The old shards are not touched — rollback is a drop.
        let old_queries = self.queries();
        let mut new_shards = Vec::with_capacity(self.n);
        for (k, snap) in snaps.iter().enumerate() {
            let cfg = self.shard_config_for(&new_plan, k);
            let mut ex = cfg.build();
            if let Some(store) = self.stores.get(k) {
                // The store rides along *before* adoption so the commit
                // phase can persist the handoff — but adoption itself
                // never writes to it: a rollback must leave the store
                // exactly as the old plan left it.
                ex = ex.with_store(store.clone());
            }
            new_shards.push(ex.adopt_boundary_state(snap));
        }
        // Phase 3b: handoff validation — the conservation checks.
        let verdict = if fault.fail_validation {
            Err(HandoffViolation {
                shard: 0,
                check: "injected",
                expected: 0,
                found: 1,
            })
        } else {
            new_shards
                .iter()
                .zip(&snaps)
                .enumerate()
                .try_for_each(|(k, (ex, snap))| validate_handoff(k, ex, snap, &old_queries))
        };
        if let Err(violation) = verdict {
            drop(new_shards);
            if let Some(ex) = self.shards.first_mut() {
                ex.note_replan_rolled_back();
                ex.refresh_boundary_checkpoint();
            }
            for hb in &self.heartbeats {
                hb.publish(ShardState::Healthy);
            }
            let reason = if fault.fail_validation {
                RollbackReason::Injected
            } else {
                RollbackReason::Validation(violation)
            };
            return Ok(SwapReport {
                epoch,
                outcome: SwapOutcome::RolledBack(reason),
            });
        }
        if fault.crash == Some(SwapCrashPoint::BeforeCommit) {
            // The validated new shards die with the process; only the
            // old plan's durable artifacts exist.
            drop(new_shards);
            return self.recover_old_after_crash(epoch);
        }
        // Phase 4: commit. The swap ledger ticks on the new deployment
        // *before* any checkpoint is cut, so the state every durable
        // commit persists — and what a crash one instant later
        // recovers — already carries the counter.
        if let Some(ex) = new_shards.first_mut() {
            ex.note_replan_committed();
        }
        // Durable commit: each store-backed shard persists its adopted
        // boundary state as a new generation; the manifest flip is the
        // swap's real commit point on disk. A refusal rolls the whole
        // transaction back with the old deployment untouched (a shard
        // whose store already committed merely carries an
        // uncommitted-plan generation that recovery will quarantine and
        // fall back past — never torn state).
        for k in 0..new_shards.len() {
            if let Err(error) = new_shards[k].commit_handoff() {
                drop(new_shards);
                if let Some(ex) = self.shards.first_mut() {
                    ex.note_replan_rolled_back();
                    ex.refresh_boundary_checkpoint();
                }
                for hb in &self.heartbeats {
                    hb.publish(ShardState::Healthy);
                }
                return Err(SwapError::DurableCommit { shard: k, error });
            }
        }
        if let Some(ex) = new_shards.first_mut() {
            // Store-backed shards just checkpointed inside
            // `commit_handoff`; only the in-memory path still needs its
            // boundary refresh.
            if ex.store_handle().is_none() {
                ex.refresh_boundary_checkpoint();
            }
        }
        let new_queries: Vec<AttrSet> = new_shards
            .first()
            .map(|ex| ex.queries().to_vec())
            .unwrap_or_default();
        for q in &old_queries {
            if !new_queries.contains(q) && !self.retired.contains(q) {
                self.retired.push(*q);
            }
        }
        self.retired.retain(|q| !new_queries.contains(q));
        self.shards = new_shards;
        self.config.plan = new_plan;
        if fault.crash == Some(SwapCrashPoint::AfterCommit) {
            for k in 0..self.n {
                let (snap, log) = self.shards[k]
                    .durable_state()
                    .ok_or(SwapError::StaleCheckpoint { shard: k })?;
                let mut cfg = self.shard_config(k);
                cfg.crash = CrashPlan::none();
                self.crashes[k] = CrashPlan::none();
                let mut ex = cfg.build().recover(&snap, log)?;
                if let Some(store) = self.stores.get(k) {
                    ex = ex.with_store(store.clone());
                }
                self.shards[k] = ex;
            }
            for hb in &self.heartbeats {
                hb.publish(ShardState::Healthy);
            }
            return Ok(SwapReport {
                epoch,
                outcome: SwapOutcome::CommittedAfterCrash,
            });
        }
        for hb in &self.heartbeats {
            hb.publish(ShardState::Healthy);
        }
        Ok(SwapReport {
            epoch,
            outcome: SwapOutcome::Committed,
        })
    }

    /// Completes a pre-commit crash drill: rebuilds every shard from
    /// its durable artifacts (the old plan's boundary checkpoint — the
    /// only state a real crash leaves) and ticks the rollback counter.
    fn recover_old_after_crash(&mut self, epoch: u64) -> Result<SwapReport, SwapError> {
        for k in 0..self.n {
            let (snap, log) = self.shards[k]
                .durable_state()
                .ok_or(SwapError::StaleCheckpoint { shard: k })?;
            let mut cfg = self.shard_config(k);
            cfg.crash = CrashPlan::none();
            self.crashes[k] = CrashPlan::none();
            let mut ex = cfg.build().recover(&snap, log)?;
            if let Some(store) = self.stores.get(k) {
                ex = ex.with_store(store.clone());
            }
            self.shards[k] = ex;
        }
        if let Some(ex) = self.shards.first_mut() {
            ex.note_replan_rolled_back();
            ex.refresh_boundary_checkpoint();
        }
        for hb in &self.heartbeats {
            hb.publish(ShardState::Healthy);
        }
        Ok(SwapReport {
            epoch,
            outcome: SwapOutcome::RolledBackAfterCrash,
        })
    }

    /// Flushes every shard's final epoch and merges the outputs in
    /// deterministic shard order: reports fold with the commutative
    /// [`RunReport::merge`], HFTAs combine epoch-by-epoch with
    /// [`Hfta::merge_ordered`]. With one shard this is a passthrough —
    /// literally the serial executor's `finish`. Queries a hot-swap
    /// retired are merged alongside the live set, so their history
    /// survives removal.
    pub fn finish(mut self) -> (RunReport, Hfta) {
        if self.n == 1 {
            if let Some(ex) = self.shards.drain(..).next() {
                return ex.finish();
            }
        }
        let mut queries: Vec<AttrSet> = match self.shards.first() {
            Some(ex) => ex.queries().to_vec(),
            None => Vec::new(),
        };
        for q in &self.retired {
            if !queries.contains(q) {
                queries.push(*q);
            }
        }
        let mut report: Option<RunReport> = None;
        let mut hftas = Vec::with_capacity(self.shards.len());
        for ex in self.shards {
            let (r, h) = ex.finish();
            match &mut report {
                Some(acc) => acc.merge(&r),
                None => report = Some(r),
            }
            hftas.push(h);
        }
        (
            report.unwrap_or_default(),
            Hfta::merge_ordered(queries, &hftas),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanNode;
    use msa_stream::hash::FastMap;
    use msa_stream::GroupKey;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    fn phantom_plan() -> PhysicalPlan {
        PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("AB"),
                parent: None,
                buckets: 64,
                is_query: false,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 16,
                is_query: true,
            },
            PlanNode {
                attrs: s("B"),
                parent: Some(0),
                buckets: 16,
                is_query: true,
            },
        ])
        .unwrap()
    }

    fn stream(n: u32) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(&[i % 37, i % 23, 0, 0], u64::from(i) * 400))
            .collect()
    }

    fn exact(records: &[Record], q: AttrSet) -> FastMap<GroupKey, u64> {
        let mut m = FastMap::default();
        for r in records {
            *m.entry(r.project(q)).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn zero_shards_is_rejected() {
        let err = ShardedExecutor::new(phantom_plan(), CostParams::paper(), u64::MAX, 1, 0)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, ShardError::ZeroShards);
    }

    #[test]
    fn partitioner_ignores_timestamps_and_covers_all_shards() {
        let recs = stream(2000);
        for &n in &[2usize, 4, 8] {
            let mut seen = vec![0u64; n];
            for r in &recs {
                let k = shard_of(42, r, n);
                assert!(k < n);
                seen[k] += 1;
                let shifted = Record {
                    attrs: r.attrs,
                    ts_micros: r.ts_micros + 999_999,
                };
                assert_eq!(shard_of(42, &shifted, n), k, "timestamp must not matter");
            }
            assert!(seen.iter().all(|&c| c > 0), "all {n} shards reached");
        }
    }

    #[test]
    fn one_shard_is_bit_identical_to_serial() {
        let recs = stream(5000);
        let mut serial = Executor::new(phantom_plan(), CostParams::paper(), 500_000, 7);
        serial.run(&recs);
        let (sr, sh) = serial.finish();
        let mut one =
            ShardedExecutor::new(phantom_plan(), CostParams::paper(), 500_000, 7, 1).unwrap();
        one.run(&recs);
        let (or_, oh) = one.finish();
        assert_eq!(sr, or_);
        assert_eq!(sh.results(), oh.results());
    }

    #[test]
    fn sharded_results_match_serial_per_epoch() {
        let recs = stream(6000);
        let mut serial = Executor::new(phantom_plan(), CostParams::paper(), 500_000, 7);
        serial.run(&recs);
        let (_, sh) = serial.finish();
        for &n in &[2usize, 4] {
            let mut sharded =
                ShardedExecutor::new(phantom_plan(), CostParams::paper(), 500_000, 7, n).unwrap();
            sharded.run(&recs);
            let (report, hfta) = sharded.finish();
            assert_eq!(report.records, recs.len() as u64);
            // Lossless, guard-off: the merged per-epoch result list is
            // exactly the serial one, not just the totals.
            assert_eq!(hfta.results(), sh.results(), "{n} shards");
            for q in [s("A"), s("B")] {
                assert_eq!(hfta.totals(q), exact(&recs, q));
            }
        }
    }

    #[test]
    fn two_threaded_runs_are_bit_identical() {
        let recs = stream(6000);
        let run = || {
            let mut sharded =
                ShardedExecutor::new(phantom_plan(), CostParams::paper(), 500_000, 11, 4).unwrap();
            sharded.run(&recs);
            sharded.finish()
        };
        let (r1, h1) = run();
        let (r2, h2) = run();
        assert_eq!(r1, r2);
        assert_eq!(h1.results(), h2.results());
    }

    #[test]
    fn shard_seeds_and_plans_are_derived() {
        let sharded =
            ShardedExecutor::new(phantom_plan(), CostParams::paper(), u64::MAX, 3, 4).unwrap();
        // Derived seeds are distinct from each other and the root.
        let mut seeds: Vec<u64> = (0..4).map(|k| shard_seed(3, k, 4)).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
        assert!(!seeds.contains(&3));
        // Tables are cut to a quarter.
        assert_eq!(sharded.shard(0).plan().nodes()[0].buckets, 16);
        assert_eq!(sharded.shard(0).plan().nodes()[1].buckets, 4);
    }
}
