//! The host-side combiner (HFTA).
//!
//! The HFTA receives partial `{group, count}` pairs evicted by the LFTA
//! — multiple partials per group per epoch are possible — and combines
//! them into exact per-epoch aggregates (paper §2.2: "multiple tuples for
//! the same group in the same epoch may be seen because of evictions,
//! and these are combined").

use crate::table::AggState;
use msa_stream::hash::FastMap;
use msa_stream::{AttrSet, GroupKey};

/// Exact aggregation results of one query for one epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochResult {
    /// The query's grouping attributes.
    pub query: AttrSet,
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Combined `group → aggregate` results (count plus, when the plan
    /// designates a metric attribute, sum/min/max of the metric).
    pub aggregates: FastMap<GroupKey, AggState>,
}

impl EpochResult {
    /// Per-group record counts.
    pub fn counts(&self) -> FastMap<GroupKey, u64> {
        self.aggregates.iter().map(|(k, a)| (*k, a.count)).collect()
    }

    /// Total records combined into this result.
    pub fn total_count(&self) -> u64 {
        self.aggregates.values().map(|a| a.count).sum()
    }

    /// Groups whose count exceeds `threshold` — the paper's example
    /// "report ... provided this number of packets is more than 100"
    /// (a HAVING clause evaluated at the HFTA).
    pub fn having_count_over(
        &self,
        threshold: u64,
    ) -> impl Iterator<Item = (&GroupKey, &AggState)> {
        self.aggregates
            .iter()
            .filter(move |(_, a)| a.count > threshold)
    }
}

/// The complete serializable state of an [`Hfta`] at an epoch boundary.
///
/// At a boundary the per-epoch combining maps are empty (the epoch was
/// just closed), so the state is exactly the finished results plus the
/// counters — which is why checkpoints are epoch-aligned.
#[derive(Clone, Debug, PartialEq)]
pub struct HftaState {
    /// Label of the epoch that will accumulate next.
    pub epoch: u64,
    /// Total partial tuples received so far.
    pub received: u64,
    /// Whether per-epoch results are retained.
    pub retain_results: bool,
    /// All finished per-epoch results at capture time.
    pub results: Vec<EpochResult>,
}

/// The HFTA: one combiner per user query.
#[derive(Clone, Debug, Default)]
pub struct Hfta {
    queries: Vec<AttrSet>,
    current: Vec<FastMap<GroupKey, AggState>>,
    /// Total partial tuples received (each costs `c2` at the LFTA).
    received: u64,
    finished: Vec<EpochResult>,
    epoch: u64,
    retain_results: bool,
}

impl Hfta {
    /// Creates an HFTA combining the given queries.
    pub fn new(queries: Vec<AttrSet>) -> Hfta {
        let current = queries.iter().map(|_| FastMap::default()).collect();
        Hfta {
            queries,
            current,
            received: 0,
            finished: Vec::new(),
            epoch: 0,
            retain_results: true,
        }
    }

    /// Disables per-epoch result retention (long measurement runs where
    /// only the cost counters matter). Results are still combined within
    /// the running epoch and dropped at epoch close.
    pub fn discard_results(mut self) -> Hfta {
        self.retain_results = false;
        self
    }

    /// The queries this HFTA combines, in slot order.
    pub fn queries(&self) -> &[AttrSet] {
        &self.queries
    }

    /// Receives one evicted partial for query slot `qi`.
    #[inline]
    pub fn receive(&mut self, qi: usize, key: GroupKey, agg: AggState) {
        self.received += 1;
        match self.current[qi].entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(&agg),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(agg);
            }
        }
    }

    /// Total partial tuples received across all epochs so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Sets the label of the epoch currently accumulating (executor
    /// swaps mid-stream keep absolute epoch numbering).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Closes the current epoch: moves combined maps to the finished
    /// list and starts fresh ones.
    pub fn close_epoch(&mut self) {
        for (query, map) in self.queries.iter().zip(self.current.iter_mut()) {
            let aggregates = std::mem::take(map);
            if self.retain_results && !aggregates.is_empty() {
                self.finished.push(EpochResult {
                    query: *query,
                    epoch: self.epoch,
                    aggregates,
                });
            }
        }
        self.epoch += 1;
    }

    /// All finished per-epoch results.
    pub fn results(&self) -> &[EpochResult] {
        &self.finished
    }

    /// True when finished per-epoch results are retained (the default;
    /// see [`Hfta::discard_results`]). Abandonment accounting needs the
    /// finished totals, so it only runs in this mode.
    pub fn retains_results(&self) -> bool {
        self.retain_results
    }

    /// Number of partials sitting in the still-open epoch's combining
    /// maps — zero exactly at an epoch boundary, which is the alignment
    /// condition checkpoints require.
    pub fn in_flight(&self) -> usize {
        self.current.iter().map(|m| m.len()).sum()
    }

    /// Exports the boundary state for a checkpoint. Partials of a
    /// still-open epoch (see [`Hfta::in_flight`]) are *not* captured;
    /// callers must snapshot at an epoch boundary.
    pub fn export_state(&self) -> HftaState {
        HftaState {
            epoch: self.epoch,
            received: self.received,
            retain_results: self.retain_results,
            results: self.finished.clone(),
        }
    }

    /// Rebuilds an HFTA for `queries` from an exported boundary state.
    pub fn restore(queries: Vec<AttrSet>, state: HftaState) -> Hfta {
        let current = queries.iter().map(|_| FastMap::default()).collect();
        Hfta {
            queries,
            current,
            received: state.received,
            finished: state.results,
            epoch: state.epoch,
            retain_results: state.retain_results,
        }
    }

    /// Combines per-shard HFTAs into one, in deterministic
    /// epoch-then-slot order — the order a serial executor would have
    /// produced. For every epoch (ascending) and every query slot (in
    /// `queries` order), the shards' partial results are merged in
    /// source (shard) order; empty combinations are skipped, exactly as
    /// [`Hfta::close_epoch`] skips empty maps. Queries are matched by
    /// attribute set, so `queries` must be distinct (plan validation
    /// already guarantees the executors agree on the slot order).
    ///
    /// Counters merge too: `received` sums, the next-epoch label takes
    /// the maximum, and results are retained only if every source
    /// retained them (a discarding source would make the merge
    /// incomplete).
    pub fn merge_ordered(queries: Vec<AttrSet>, sources: &[Hfta]) -> Hfta {
        let mut epochs: Vec<u64> = sources
            .iter()
            .flat_map(|s| s.finished.iter().map(|r| r.epoch))
            .collect();
        epochs.sort_unstable();
        epochs.dedup();
        let mut finished = Vec::new();
        for &epoch in &epochs {
            for &query in &queries {
                let mut aggregates: FastMap<GroupKey, AggState> = FastMap::default();
                for s in sources {
                    for r in s
                        .finished
                        .iter()
                        .filter(|r| r.epoch == epoch && r.query == query)
                    {
                        for (k, a) in &r.aggregates {
                            match aggregates.entry(*k) {
                                std::collections::hash_map::Entry::Occupied(mut e) => {
                                    e.get_mut().merge(a)
                                }
                                std::collections::hash_map::Entry::Vacant(v) => {
                                    v.insert(*a);
                                }
                            }
                        }
                    }
                }
                if !aggregates.is_empty() {
                    finished.push(EpochResult {
                        query,
                        epoch,
                        aggregates,
                    });
                }
            }
        }
        let current = queries.iter().map(|_| FastMap::default()).collect();
        Hfta {
            current,
            received: sources.iter().map(|s| s.received).sum(),
            finished,
            epoch: sources.iter().map(|s| s.epoch).max().unwrap_or(0),
            retain_results: sources.iter().all(|s| s.retain_results),
            queries,
        }
    }

    /// Sums a query's counts across all finished epochs — the total
    /// per-group record counts, used to verify end-to-end correctness.
    pub fn totals(&self, query: AttrSet) -> FastMap<GroupKey, u64> {
        self.aggregate_totals(query)
            .into_iter()
            .map(|(k, a)| (k, a.count))
            .collect()
    }

    /// Combines a query's full aggregate states across all epochs.
    pub fn aggregate_totals(&self, query: AttrSet) -> FastMap<GroupKey, AggState> {
        let mut out: FastMap<GroupKey, AggState> = FastMap::default();
        for r in &self.finished {
            if r.query == query {
                for (k, a) in &r.aggregates {
                    match out.entry(*k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(a),
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(*a);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: &[u32]) -> GroupKey {
        GroupKey::from_values(vals)
    }

    /// A partial state of `count` records summing to `sum`.
    fn counted(count: u64, sum: u64) -> AggState {
        AggState {
            count,
            sum,
            min: sum.min(u64::from(u32::MAX)) as u32,
            max: sum.min(u64::from(u32::MAX)) as u32,
        }
    }

    #[test]
    fn having_filter_and_epoch_helpers() {
        let a = AttrSet::parse("A").unwrap();
        let mut h = Hfta::new(vec![a]);
        h.receive(0, key(&[1]), counted(150, 150));
        h.receive(0, key(&[2]), counted(50, 50));
        h.close_epoch();
        let res = &h.results()[0];
        assert_eq!(res.total_count(), 200);
        assert_eq!(res.counts()[&key(&[2])], 50);
        let heavy: Vec<_> = res.having_count_over(100).collect();
        assert_eq!(heavy.len(), 1);
        assert_eq!(*heavy[0].0, key(&[1]));
    }

    #[test]
    fn combines_partials_within_epoch() {
        let a = AttrSet::parse("A").unwrap();
        let mut h = Hfta::new(vec![a]);
        h.receive(0, key(&[1]), counted(3, 30));
        h.receive(0, key(&[1]), counted(4, 4));
        h.receive(0, key(&[2]), counted(1, 9));
        h.close_epoch();
        let totals = h.totals(a);
        assert_eq!(totals[&key(&[1])], 7);
        assert_eq!(totals[&key(&[2])], 1);
        assert_eq!(h.received(), 3);
        // Value aggregates combine too.
        let aggs = h.aggregate_totals(a);
        assert_eq!(aggs[&key(&[1])].sum, 34);
        assert_eq!(aggs[&key(&[1])].min, 4);
    }

    #[test]
    fn epochs_are_separated() {
        let a = AttrSet::parse("A").unwrap();
        let mut h = Hfta::new(vec![a]);
        h.receive(0, key(&[1]), counted(1, 1));
        h.close_epoch();
        h.receive(0, key(&[1]), counted(2, 2));
        h.close_epoch();
        assert_eq!(h.results().len(), 2);
        assert_eq!(h.results()[0].epoch, 0);
        assert_eq!(h.results()[1].epoch, 1);
        assert_eq!(h.totals(a)[&key(&[1])], 3);
    }

    #[test]
    fn multiple_queries_are_independent() {
        let a = AttrSet::parse("A").unwrap();
        let b = AttrSet::parse("B").unwrap();
        let mut h = Hfta::new(vec![a, b]);
        h.receive(0, key(&[1]), counted(5, 5));
        h.receive(1, key(&[9]), counted(2, 2));
        h.close_epoch();
        assert_eq!(h.totals(a).len(), 1);
        assert_eq!(h.totals(b)[&key(&[9])], 2);
    }

    #[test]
    fn discard_results_keeps_counters_only() {
        let a = AttrSet::parse("A").unwrap();
        let mut h = Hfta::new(vec![a]).discard_results();
        h.receive(0, key(&[1]), counted(1, 1));
        h.close_epoch();
        assert!(h.results().is_empty());
        assert_eq!(h.received(), 1);
    }

    /// The documented resilience bounds: a partial delivered twice
    /// over-counts its group by exactly its record mass, a lost partial
    /// under-counts by the same, and combining never panics — so for
    /// any mix, `true − lost ≤ observed ≤ true + duplicated` per group.
    #[test]
    fn duplicate_and_lost_partials_combine_to_documented_bounds() {
        let a = AttrSet::parse("A").unwrap();
        let mut h = Hfta::new(vec![a]);
        // True stream for group 1: partials of 10 + 5 + 2 = 17 records.
        // The 10-partial is duplicated by the channel; the 2-partial is
        // lost and never arrives.
        h.receive(0, key(&[1]), counted(10, 10));
        h.receive(0, key(&[1]), counted(10, 10)); // duplicate
        h.receive(0, key(&[1]), counted(5, 5));
        // Group 2 is delivered faithfully.
        h.receive(0, key(&[2]), counted(4, 4));
        h.close_epoch();

        let totals = h.totals(a);
        let (truth, duplicated, lost) = (17i64, 10i64, 2i64);
        let observed = totals[&key(&[1])] as i64;
        assert_eq!(observed, truth + duplicated - lost);
        assert!((truth - lost..=truth + duplicated).contains(&observed));
        assert_eq!(totals[&key(&[2])], 4, "faithful groups stay exact");
        // Value aggregates degrade the same way: the duplicated sum is
        // added once more, never corrupted.
        assert_eq!(h.aggregate_totals(a)[&key(&[1])].sum, 25);
    }

    #[test]
    fn state_roundtrip_preserves_results_and_counters() {
        let a = AttrSet::parse("A").unwrap();
        let b = AttrSet::parse("B").unwrap();
        let mut h = Hfta::new(vec![a, b]);
        h.receive(0, key(&[1]), counted(3, 3));
        h.receive(1, key(&[2]), counted(5, 5));
        assert_eq!(h.in_flight(), 2);
        h.close_epoch();
        assert_eq!(h.in_flight(), 0);
        let state = h.export_state();
        let restored = Hfta::restore(vec![a, b], state.clone());
        assert_eq!(restored.export_state(), state);
        assert_eq!(restored.results(), h.results());
        assert_eq!(restored.received(), h.received());
        assert_eq!(restored.totals(a), h.totals(a));
    }

    #[test]
    fn merge_ordered_matches_serial_order() {
        let a = AttrSet::parse("A").unwrap();
        let b = AttrSet::parse("B").unwrap();
        // Serial reference: all partials through one HFTA.
        let mut serial = Hfta::new(vec![a, b]);
        serial.receive(0, key(&[1]), counted(3, 3));
        serial.receive(0, key(&[2]), counted(2, 2));
        serial.receive(1, key(&[7]), counted(5, 5));
        serial.close_epoch();
        serial.receive(0, key(&[1]), counted(4, 4));
        serial.close_epoch();
        // Sharded: the same partials split across two HFTAs by group.
        let mut s0 = Hfta::new(vec![a, b]);
        s0.receive(0, key(&[1]), counted(3, 3));
        s0.close_epoch();
        s0.receive(0, key(&[1]), counted(4, 4));
        s0.close_epoch();
        let mut s1 = Hfta::new(vec![a, b]);
        s1.receive(0, key(&[2]), counted(2, 2));
        s1.receive(1, key(&[7]), counted(5, 5));
        s1.close_epoch();
        s1.close_epoch();
        let merged = Hfta::merge_ordered(vec![a, b], &[s0, s1]);
        // Bit-for-bit the serial result list: same (query, epoch)
        // sequence, same combined aggregates, no empty entries.
        assert_eq!(merged.results(), serial.results());
        assert_eq!(merged.received(), serial.received());
        assert_eq!(merged.totals(a), serial.totals(a));
        assert_eq!(merged.totals(b), serial.totals(b));
        // Shard order is part of the contract, not the result: groups
        // are disjoint across shards so either order combines equally.
        let merged_rev = Hfta::merge_ordered(
            vec![a, b],
            &[Hfta::restore(vec![a, b], merged.export_state())],
        );
        assert_eq!(merged_rev.results(), serial.results());
    }

    #[test]
    fn merge_ordered_combines_same_group_partials_in_shard_order() {
        // Two shards holding partials of the SAME group (possible after
        // a rebalance): they must combine, not duplicate.
        let a = AttrSet::parse("A").unwrap();
        let mut s0 = Hfta::new(vec![a]);
        s0.receive(0, key(&[1]), counted(3, 30));
        s0.close_epoch();
        let mut s1 = Hfta::new(vec![a]);
        s1.receive(0, key(&[1]), counted(4, 4));
        s1.close_epoch();
        let merged = Hfta::merge_ordered(vec![a], &[s0, s1]);
        assert_eq!(merged.results().len(), 1);
        let aggs = &merged.results()[0].aggregates;
        assert_eq!(aggs[&key(&[1])].count, 7);
        assert_eq!(aggs[&key(&[1])].sum, 34);
        assert_eq!(aggs[&key(&[1])].min, 4);
    }

    #[test]
    fn empty_epochs_produce_no_results() {
        let a = AttrSet::parse("A").unwrap();
        let mut h = Hfta::new(vec![a]);
        h.close_epoch();
        h.close_epoch();
        assert!(h.results().is_empty());
    }
}
