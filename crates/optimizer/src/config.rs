//! Configurations: trees of instantiated relations (paper §3.1).
//!
//! A configuration is the set of relations instantiated in the LFTA —
//! all user queries plus any chosen phantoms — organised as a forest:
//! each relation is fed by its minimal instantiated proper superset, or
//! by the raw stream if none exists. The paper writes configurations in
//! a nested notation, e.g. `(ABCD(AB BCD(BC BD CD)))` for Fig. 3(c);
//! [`Configuration::parse`] and [`Configuration::notation`] round-trip
//! that syntax.

use msa_stream::AttrSet;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A configuration: queries + phantoms arranged in feeding trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Configuration {
    queries: BTreeSet<AttrSet>,
    /// `relation → feeding parent` (None = raw, fed by the stream).
    parent: BTreeMap<AttrSet, Option<AttrSet>>,
}

impl Configuration {
    /// The configuration with no phantoms: every query is raw.
    pub fn from_queries(queries: &[AttrSet]) -> Configuration {
        let queries: BTreeSet<AttrSet> = queries.iter().copied().collect();
        assert!(!queries.is_empty(), "need at least one query");
        let relations = queries.clone();
        Configuration {
            parent: derive_parents(&relations),
            queries,
        }
    }

    /// Builds a configuration from `queries` plus `phantoms`, deriving
    /// the feeding tree by the minimal-superset rule.
    pub fn with_phantoms(queries: &[AttrSet], phantoms: &[AttrSet]) -> Configuration {
        let queries: BTreeSet<AttrSet> = queries.iter().copied().collect();
        assert!(!queries.is_empty(), "need at least one query");
        let mut relations = queries.clone();
        relations.extend(phantoms.iter().copied());
        Configuration {
            parent: derive_parents(&relations),
            queries,
        }
    }

    /// Returns a new configuration with `phantom` added (feeding edges
    /// re-derived, as in the GC greedy step).
    pub fn add_phantom(&self, phantom: AttrSet) -> Configuration {
        let mut relations: BTreeSet<AttrSet> = self.parent.keys().copied().collect();
        relations.insert(phantom);
        Configuration {
            parent: derive_parents(&relations),
            queries: self.queries.clone(),
        }
    }

    /// All instantiated relations, sorted.
    pub fn relations(&self) -> impl Iterator<Item = AttrSet> + '_ {
        self.parent.keys().copied()
    }

    /// Number of instantiated relations.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the configuration is empty (never constructible).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The user queries.
    pub fn queries(&self) -> impl Iterator<Item = AttrSet> + '_ {
        self.queries.iter().copied()
    }

    /// The phantoms (instantiated relations that are not queries).
    pub fn phantoms(&self) -> impl Iterator<Item = AttrSet> + '_ {
        self.parent
            .keys()
            .copied()
            .filter(move |r| !self.queries.contains(r))
    }

    /// True iff `r` is one of the user queries.
    pub fn is_query(&self, r: AttrSet) -> bool {
        self.queries.contains(&r)
    }

    /// True iff `r` is instantiated.
    pub fn contains(&self, r: AttrSet) -> bool {
        self.parent.contains_key(&r)
    }

    /// The feeding parent of `r` (None = raw relation).
    ///
    /// # Panics
    /// Panics if `r` is not instantiated.
    pub fn parent(&self, r: AttrSet) -> Option<AttrSet> {
        *self
            .parent
            .get(&r)
            .unwrap_or_else(|| panic!("{r} not in configuration"))
    }

    /// The relations fed directly by the stream.
    pub fn raw_relations(&self) -> impl Iterator<Item = AttrSet> + '_ {
        self.parent
            .iter()
            .filter(|(_, p)| p.is_none())
            .map(|(r, _)| *r)
    }

    /// Children of `r` in the feeding tree.
    pub fn children(&self, r: AttrSet) -> impl Iterator<Item = AttrSet> + '_ {
        self.parent
            .iter()
            .filter(move |(_, p)| **p == Some(r))
            .map(|(c, _)| *c)
    }

    /// Relations with no children (always queries, per the paper).
    pub fn leaves(&self) -> impl Iterator<Item = AttrSet> + '_ {
        let with_children: BTreeSet<AttrSet> = self.parent.values().flatten().copied().collect();
        self.parent
            .keys()
            .copied()
            .filter(move |r| !with_children.contains(r))
    }

    /// Ancestors of `r` along the feeding chain, nearest first.
    pub fn ancestors(&self, r: AttrSet) -> Vec<AttrSet> {
        let mut out = Vec::new();
        let mut cur = self.parent(r);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// Parses the paper's nested notation given the query set.
    ///
    /// Accepts forms like `"AB(A B) CD(C D)"` and
    /// `"(ABCD(AB BCD(BC BD CD)))"` (optional outer parentheses). Every
    /// query must appear; relations not in `queries` become phantoms.
    pub fn parse(notation: &str, queries: &[AttrSet]) -> Result<Configuration, ParseError> {
        let mut parser = Parser {
            input: notation.as_bytes(),
            pos: 0,
        };
        let mut parent: BTreeMap<AttrSet, Option<AttrSet>> = BTreeMap::new();
        parser.skip_ws();
        // Optional outer parens wrapping the entire configuration.
        let trees = if parser.peek() == Some(b'(') && parser.outer_paren_wraps_all() {
            parser.pos += 1;
            let trees = parser.parse_forest(&mut parent)?;
            parser.consume(b')')?;
            trees
        } else {
            parser.parse_forest(&mut parent)?
        };
        parser.skip_ws();
        if parser.pos != parser.input.len() {
            return Err(ParseError::TrailingInput(parser.pos));
        }
        if trees == 0 {
            return Err(ParseError::Empty);
        }
        let qset: BTreeSet<AttrSet> = queries.iter().copied().collect();
        for q in &qset {
            if !parent.contains_key(q) {
                return Err(ParseError::MissingQuery(*q));
            }
        }
        Ok(Configuration {
            queries: qset,
            parent,
        })
    }

    /// Renders the configuration in the paper's notation (trees sorted,
    /// children sorted; no outer parentheses).
    pub fn notation(&self) -> String {
        let mut out = String::new();
        for (i, root) in self.raw_relations().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            self.render(root, &mut out);
        }
        out
    }

    fn render(&self, r: AttrSet, out: &mut String) {
        out.push_str(&r.to_string());
        let kids: Vec<AttrSet> = self.children(r).collect();
        if !kids.is_empty() {
            out.push('(');
            for (i, k) in kids.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                self.render(*k, out);
            }
            out.push(')');
        }
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.notation())
    }
}

/// Derives the feeding forest over `relations`: each relation's parent
/// is its minimal instantiated proper superset. When two minimal
/// supersets are incomparable the one with fewer attributes (then the
/// smaller bitmask) wins — the paper only states configurations are
/// trees, so the tie-break is ours (see DESIGN.md §3).
fn derive_parents(relations: &BTreeSet<AttrSet>) -> BTreeMap<AttrSet, Option<AttrSet>> {
    let mut out = BTreeMap::new();
    for &r in relations {
        let parent = relations
            .iter()
            .copied()
            .filter(|&s| r.is_proper_subset_of(s))
            // Minimal supersets first: fewest attributes, then bitmask.
            .min_by_key(|s| (s.len(), s.bits()));
        out.insert(r, parent);
    }
    out
}

/// Notation parsing failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Unexpected character at byte offset.
    Unexpected(usize),
    /// Input ended prematurely.
    Eof,
    /// Trailing garbage after a complete configuration.
    TrailingInput(usize),
    /// The notation was empty.
    Empty,
    /// A relation appeared twice.
    Duplicate(AttrSet),
    /// A child is not a proper subset of its parent.
    NotSubset(AttrSet, AttrSet),
    /// A declared query is missing from the notation.
    MissingQuery(AttrSet),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Unexpected(p) => write!(f, "unexpected character at offset {p}"),
            ParseError::Eof => write!(f, "unexpected end of input"),
            ParseError::TrailingInput(p) => write!(f, "trailing input at offset {p}"),
            ParseError::Empty => write!(f, "empty configuration"),
            ParseError::Duplicate(r) => write!(f, "relation {r} appears twice"),
            ParseError::NotSubset(c, p) => write!(f, "{c} is not a proper subset of parent {p}"),
            ParseError::MissingQuery(q) => write!(f, "query {q} missing from configuration"),
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\n')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(ParseError::Unexpected(self.pos)),
            None => Err(ParseError::Eof),
        }
    }

    /// Checks whether the `(` at the current position matches the final
    /// non-whitespace `)` of the input (i.e. outer parens wrap all).
    fn outer_paren_wraps_all(&self) -> bool {
        let mut depth = 0usize;
        let mut close_at = None;
        for (i, &b) in self.input.iter().enumerate().skip(self.pos) {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        close_at = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        match close_at {
            Some(i) => self.input[i + 1..].iter().all(|b| b.is_ascii_whitespace()),
            None => false,
        }
    }

    /// Parses one or more trees; returns how many were parsed.
    fn parse_forest(
        &mut self,
        parent: &mut BTreeMap<AttrSet, Option<AttrSet>>,
    ) -> Result<usize, ParseError> {
        let mut count = 0;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(c) if c.is_ascii_uppercase() => {
                    self.parse_tree(None, parent)?;
                    count += 1;
                }
                _ => break,
            }
        }
        Ok(count)
    }

    fn parse_name(&mut self) -> Result<AttrSet, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_uppercase()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self
                .peek()
                .map_or(ParseError::Eof, |_| ParseError::Unexpected(self.pos)));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| ParseError::Unexpected(start))?;
        AttrSet::parse(name).ok_or(ParseError::Unexpected(start))
    }

    fn parse_tree(
        &mut self,
        up: Option<AttrSet>,
        parent: &mut BTreeMap<AttrSet, Option<AttrSet>>,
    ) -> Result<(), ParseError> {
        let name = self.parse_name()?;
        if let Some(p) = up {
            if !name.is_proper_subset_of(p) {
                return Err(ParseError::NotSubset(name, p));
            }
        }
        if parent.insert(name, up).is_some() {
            return Err(ParseError::Duplicate(name));
        }
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    Some(c) if c.is_ascii_uppercase() => {
                        self.parse_tree(Some(name), parent)?;
                    }
                    Some(_) => return Err(ParseError::Unexpected(self.pos)),
                    None => return Err(ParseError::Eof),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    fn qs(names: &[&str]) -> Vec<AttrSet> {
        names.iter().map(|n| s(n)).collect()
    }

    #[test]
    fn flat_configuration() {
        let cfg = Configuration::from_queries(&qs(&["A", "B", "C"]));
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.raw_relations().count(), 3);
        assert_eq!(cfg.leaves().count(), 3);
        assert_eq!(cfg.phantoms().count(), 0);
        assert_eq!(cfg.notation(), "A B C");
    }

    #[test]
    fn single_phantom_tree() {
        // Fig. 2: ABC feeds A, B, C.
        let cfg = Configuration::with_phantoms(&qs(&["A", "B", "C"]), &[s("ABC")]);
        assert_eq!(cfg.parent(s("A")), Some(s("ABC")));
        assert_eq!(cfg.parent(s("ABC")), None);
        assert_eq!(cfg.children(s("ABC")).count(), 3);
        assert_eq!(cfg.notation(), "ABC(A B C)");
        assert!(cfg.is_query(s("A")));
        assert!(!cfg.is_query(s("ABC")));
    }

    #[test]
    fn fig3c_multi_level() {
        // (ABCD(AB BCD(BC BD CD))).
        let queries = qs(&["AB", "BC", "BD", "CD"]);
        let cfg = Configuration::with_phantoms(&queries, &[s("ABCD"), s("BCD")]);
        assert_eq!(cfg.parent(s("AB")), Some(s("ABCD")));
        assert_eq!(cfg.parent(s("BCD")), Some(s("ABCD")));
        assert_eq!(cfg.parent(s("BC")), Some(s("BCD")));
        assert_eq!(cfg.notation(), "ABCD(AB BCD(BC BD CD))");
        assert_eq!(cfg.ancestors(s("BC")), vec![s("BCD"), s("ABCD")]);
        // Leaves are exactly the queries here.
        let leaves: Vec<AttrSet> = cfg.leaves().collect();
        assert_eq!(leaves, queries);
    }

    #[test]
    fn parse_round_trips() {
        let queries = qs(&["AB", "BC", "BD", "CD"]);
        for notation in ["ABCD(AB BCD(BC BD CD))", "ABC(AB BC) BD CD", "AB BC BD CD"] {
            let cfg = Configuration::parse(notation, &queries).unwrap();
            assert_eq!(cfg.notation(), notation, "round trip {notation}");
        }
    }

    #[test]
    fn parse_accepts_outer_parens() {
        let queries = qs(&["AB", "BC", "BD", "CD"]);
        let cfg = Configuration::parse("(ABCD(AB BCD(BC BD CD)))", &queries).unwrap();
        assert_eq!(cfg.notation(), "ABCD(AB BCD(BC BD CD))");
        // Multi-tree with parens only around the first tree must NOT be
        // treated as outer-wrapped.
        let queries2 = qs(&["A", "B", "C", "D"]);
        let cfg2 = Configuration::parse("(AB(A B)) CD(C D)", &queries2);
        assert!(cfg2.is_err() || cfg2.unwrap().len() == 6);
    }

    #[test]
    fn parse_fig9b_two_trees() {
        let queries = qs(&["A", "B", "C", "D"]);
        let cfg = Configuration::parse("AB(A B) CD(C D)", &queries).unwrap();
        assert_eq!(cfg.raw_relations().count(), 2);
        assert_eq!(cfg.phantoms().count(), 2);
        assert_eq!(cfg.parent(s("C")), Some(s("CD")));
    }

    #[test]
    fn parse_rejects_errors() {
        let queries = qs(&["A", "B"]);
        assert!(matches!(
            Configuration::parse("", &queries),
            Err(ParseError::Empty)
        ));
        assert!(matches!(
            Configuration::parse("AB(A B) A", &queries),
            Err(ParseError::Duplicate(_))
        ));
        assert!(matches!(
            Configuration::parse("AB(A CD)", &queries),
            Err(ParseError::NotSubset(..))
        ));
        assert!(matches!(
            Configuration::parse("A", &queries),
            Err(ParseError::MissingQuery(_))
        ));
        assert!(matches!(
            Configuration::parse("AB(A B))", &queries),
            Err(ParseError::TrailingInput(_))
        ));
    }

    #[test]
    fn add_phantom_rederives_edges() {
        let queries = qs(&["A", "B", "C"]);
        let cfg = Configuration::from_queries(&queries);
        let cfg2 = cfg.add_phantom(s("ABC"));
        assert_eq!(cfg2.parent(s("A")), Some(s("ABC")));
        // Adding an intermediate phantom re-parents the queries under it.
        let cfg3 = cfg2.add_phantom(s("AB"));
        assert_eq!(cfg3.parent(s("A")), Some(s("AB")));
        assert_eq!(cfg3.parent(s("AB")), Some(s("ABC")));
        assert_eq!(cfg3.parent(s("C")), Some(s("ABC")));
        // Original configs are unchanged (persistent semantics).
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg2.len(), 4);
    }

    #[test]
    fn minimal_superset_tie_break_is_deterministic() {
        // AB and BC both minimally cover B; fewer attrs ties, bitmask
        // decides: AB (bits 0b011) < BC (0b110).
        let queries = qs(&["B", "AB", "BC"]);
        let cfg = Configuration::from_queries(&queries);
        assert_eq!(cfg.parent(s("B")), Some(s("AB")));
    }

    #[test]
    fn display_matches_notation() {
        let cfg = Configuration::with_phantoms(&qs(&["A", "B"]), &[s("AB")]);
        assert_eq!(format!("{cfg}"), "AB(A B)");
    }
}
