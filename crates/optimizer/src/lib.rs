//! Phantom choice and space allocation for multiple aggregations.
//!
//! This crate implements the paper's contribution: given a set of
//! aggregation queries differing only in their grouping attributes, a
//! memory budget `M` at the LFTA, and dataset statistics, find a
//! *configuration* — user queries plus beneficial *phantoms* — and a
//! space allocation minimising the per-record maintenance cost (Eq. 7),
//! optionally subject to the end-of-epoch peak-load constraint (Eq. 8).
//!
//! * [`graph`] — the relation feeding graph and phantom candidates
//!   (Fig. 4);
//! * [`config`] — configurations as feeding trees, with the paper's
//!   `(ABCD(AB BCD(BC BD CD)))` notation;
//! * [`cost`] — the cost model: Eq. 7 (intra-epoch) and Eq. 8
//!   (end-of-epoch);
//! * [`alloc`] — space allocation: the exact two-level solution
//!   (Eqs. 19–21), the SL/SR/PL/PR heuristics, exhaustive grid search
//!   and the numeric (convex) optimum standing in for ES;
//! * [`greedy`] — phantom-choice algorithms GS (greedy by increasing
//!   space) and GC (greedy by increasing collision rates), plus the
//!   exhaustive EPES reference;
//! * [`peakload`] — the shrink/shift repairs for the peak-load
//!   constraint (§6.3.4);
//! * [`planner`] — a one-call facade producing an executable
//!   [`msa_gigascope::PhysicalPlan`];
//! * [`replan`] — background re-planning: re-runs the pipeline against
//!   statistics refreshed from live collision telemetry and costs the
//!   candidate side-by-side with the deployed plan.

#![deny(unsafe_code)]

pub mod alloc;
pub mod config;
pub mod cost;
pub mod graph;
pub mod greedy;
pub mod peakload;
pub mod planner;
pub mod replan;

pub use alloc::{AllocStrategy, Allocation};
pub use config::Configuration;
pub use cost::{ClusterHandling, CostContext};
pub use graph::FeedingGraph;
pub use greedy::{epes, greedy_collision, greedy_space};
pub use peakload::{enforce_peak_load, enforce_peak_load_from, PeakLoadMethod, PeakLoadOutcome};
pub use planner::{Algorithm, Plan, Planner, PlannerOptions};
pub use replan::{propose_replan, ReplanProposal};
