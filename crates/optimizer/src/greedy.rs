//! Phantom-choice algorithms (paper §3.4) and the exhaustive reference.
//!
//! * **GS — greedy by increasing space** (§3.4.1): every relation's
//!   table is sized `φ·g` buckets; phantoms are added in decreasing
//!   benefit-per-unit-space order while space lasts; leftover space is
//!   finally distributed proportionally to group counts. Sensitive to
//!   the choice of `φ` (Fig. 11).
//! * **GC — greedy by increasing collision rates** (§3.4.2): the whole
//!   budget is always allocated to the current configuration (via a
//!   pluggable space-allocation strategy); the phantom with the largest
//!   cost benefit under full reallocation is added until no phantom
//!   helps. `GC + SL` is the paper's recommended algorithm (GCSL).
//! * **EPES** (§6.3): exhaustive enumeration of phantom subsets, each
//!   with (numerically) exhaustive space allocation — the optimal
//!   reference, exponential and used only for evaluation.

use crate::alloc::{allocate_numeric, AllocStrategy, Allocation};
use crate::config::Configuration;
use crate::cost::{per_record_cost, CostContext};
use crate::graph::FeedingGraph;
use msa_stream::AttrSet;

/// One step of a greedy run.
#[derive(Clone, Debug)]
pub struct GreedyStep {
    /// Phantom added at this step (`None` for the initial all-queries
    /// configuration).
    pub added: Option<AttrSet>,
    /// Configuration after the step.
    pub configuration: Configuration,
    /// Allocation after the step.
    pub allocation: Allocation,
    /// Per-record cost (Eq. 7) after the step.
    pub cost: f64,
}

/// A greedy run: the initial state plus one step per adopted phantom.
///
/// The phantom-free starting point is stored apart from the adopted
/// steps, so a trace is non-empty by construction and every accessor
/// below is total.
#[derive(Clone, Debug)]
pub struct GreedyTrace {
    /// The phantom-free starting configuration.
    pub baseline: GreedyStep,
    /// One step per adopted phantom, in adoption order.
    pub adopted: Vec<GreedyStep>,
}

impl GreedyTrace {
    /// The final configuration/allocation/cost.
    pub fn final_step(&self) -> &GreedyStep {
        self.adopted.last().unwrap_or(&self.baseline)
    }

    /// Number of phantoms adopted.
    pub fn phantoms_chosen(&self) -> usize {
        self.adopted.len()
    }

    /// All steps, baseline first.
    pub fn steps(&self) -> impl Iterator<Item = &GreedyStep> {
        std::iter::once(&self.baseline).chain(self.adopted.iter())
    }

    /// The state after `i` phantoms, if the run adopted that many.
    pub fn step(&self, i: usize) -> Option<&GreedyStep> {
        match i.checked_sub(1) {
            None => Some(&self.baseline),
            Some(j) => self.adopted.get(j),
        }
    }
}

/// GS: greedy by increasing space with parameter `φ` (buckets per group).
///
/// Queries are instantiated at `φ·g` buckets first; candidates are added
/// by benefit per unit space while they fit; remaining space is finally
/// distributed proportionally to group counts (top-ups are also applied
/// to intermediate trace steps so Fig. 12-style plots are comparable).
pub fn greedy_space(
    graph: &FeedingGraph,
    m_words: f64,
    phi: f64,
    ctx: &CostContext<'_>,
) -> GreedyTrace {
    assert!(phi > 0.0 && phi.is_finite());
    let phi_buckets = |r: AttrSet| (phi * ctx.groups(r)).max(1.0);
    let space_of = |r: AttrSet| phi_buckets(r) * r.entry_words() as f64;

    let mut cfg = Configuration::from_queries(graph.queries());
    let mut alloc = Allocation::default();
    let mut used = 0.0;
    for q in graph.queries() {
        alloc.set(*q, phi_buckets(*q));
        used += space_of(*q);
    }
    // If φ is so large the queries alone overflow M, shrink them to fit
    // (the paper implicitly assumes queries fit).
    if used > m_words {
        let t = m_words / used;
        alloc = alloc.scaled(t);
        used = m_words;
    }

    let topped_cost = |cfg: &Configuration, alloc: &Allocation, used: f64| -> f64 {
        per_record_cost(cfg, &top_up(cfg, alloc, m_words - used, ctx), ctx)
    };

    let baseline = GreedyStep {
        added: None,
        configuration: cfg.clone(),
        allocation: top_up(&cfg, &alloc, m_words - used, ctx),
        cost: topped_cost(&cfg, &alloc, used),
    };
    let mut adopted = Vec::new();

    loop {
        let current_cost = per_record_cost(&cfg, &alloc, ctx);
        let mut best: Option<(AttrSet, f64, f64)> = None; // (phantom, score, benefit)
        for &p in graph.phantom_candidates() {
            if cfg.contains(p) {
                continue;
            }
            let space_p = space_of(p);
            if used + space_p > m_words {
                continue;
            }
            let cfg_p = cfg.add_phantom(p);
            let mut alloc_p = alloc.clone();
            alloc_p.set(p, phi_buckets(p));
            let benefit = current_cost - per_record_cost(&cfg_p, &alloc_p, ctx);
            if benefit <= 0.0 {
                continue;
            }
            let score = benefit / space_p;
            if best.as_ref().is_none_or(|(_, s, _)| score > *s) {
                best = Some((p, score, benefit));
            }
        }
        match best {
            Some((p, _, _)) => {
                cfg = cfg.add_phantom(p);
                alloc.set(p, phi_buckets(p));
                used += space_of(p);
                adopted.push(GreedyStep {
                    added: Some(p),
                    configuration: cfg.clone(),
                    allocation: top_up(&cfg, &alloc, m_words - used, ctx),
                    cost: topped_cost(&cfg, &alloc, used),
                });
            }
            None => break,
        }
    }
    GreedyTrace { baseline, adopted }
}

/// Distributes `leftover` words across the configuration proportionally
/// to group counts (the GS end-of-run top-up).
fn top_up(
    cfg: &Configuration,
    alloc: &Allocation,
    leftover: f64,
    ctx: &CostContext<'_>,
) -> Allocation {
    if leftover <= 0.0 {
        return alloc.clone();
    }
    let total_g: f64 = cfg.relations().map(|r| ctx.groups(r)).sum();
    let mut out = alloc.clone();
    if total_g <= 0.0 {
        return out;
    }
    for r in cfg.relations() {
        let extra_space = leftover * ctx.groups(r) / total_g;
        out.set(r, alloc.buckets(r) + extra_space / r.entry_words() as f64);
    }
    out
}

/// GC: greedy by increasing collision rates, reallocating the full
/// budget with `strategy` at every step. `strategy =`
/// [`AllocStrategy::SupernodeLinear`] gives the paper's GCSL.
pub fn greedy_collision(
    graph: &FeedingGraph,
    m_words: f64,
    ctx: &CostContext<'_>,
    strategy: AllocStrategy,
) -> GreedyTrace {
    let mut cfg = Configuration::from_queries(graph.queries());
    let mut alloc = strategy.allocate(&cfg, m_words, ctx);
    let mut cost = per_record_cost(&cfg, &alloc, ctx);
    let baseline = GreedyStep {
        added: None,
        configuration: cfg.clone(),
        allocation: alloc.clone(),
        cost,
    };
    let mut adopted = Vec::new();
    loop {
        let mut best: Option<(AttrSet, Configuration, Allocation, f64)> = None;
        for &p in graph.phantom_candidates() {
            if cfg.contains(p) {
                continue;
            }
            let cfg_p = cfg.add_phantom(p);
            let alloc_p = strategy.allocate(&cfg_p, m_words, ctx);
            let cost_p = per_record_cost(&cfg_p, &alloc_p, ctx);
            if best.as_ref().is_none_or(|(_, _, _, c)| cost_p < *c) {
                best = Some((p, cfg_p, alloc_p, cost_p));
            }
        }
        match best {
            Some((p, cfg_p, alloc_p, cost_p)) if cost_p < cost => {
                cfg = cfg_p;
                alloc = alloc_p;
                cost = cost_p;
                adopted.push(GreedyStep {
                    added: Some(p),
                    configuration: cfg.clone(),
                    allocation: alloc.clone(),
                    cost,
                });
            }
            _ => break,
        }
    }
    GreedyTrace { baseline, adopted }
}

/// EPES: exhaustive phantoms × (numerically) exhaustive space — the
/// optimal configuration under the cost model (§6.3). Exponential in
/// the number of phantom candidates.
///
/// Configurations containing a phantom that feeds fewer than two
/// relations are skipped: dropping such a phantom never increases cost
/// (the paper proves it is never beneficial), and the reduced
/// configuration is enumerated anyway.
///
/// # Panics
/// Panics if the graph has more than 20 phantom candidates.
pub fn epes(graph: &FeedingGraph, m_words: f64, ctx: &CostContext<'_>) -> GreedyStep {
    let candidates = graph.phantom_candidates();
    assert!(
        candidates.len() <= 20,
        "EPES is exponential; {} candidates is too many",
        candidates.len()
    );
    // Mask 0 — the empty phantom set — is always a valid configuration,
    // so it seeds `best` directly and every other subset competes
    // against it under the same strict-improvement comparison.
    let base_cfg = Configuration::with_phantoms(graph.queries(), &[]);
    let base_alloc = allocate_numeric(&base_cfg, m_words, ctx, 200);
    let base_cost = per_record_cost(&base_cfg, &base_alloc, ctx);
    let mut best = GreedyStep {
        added: None,
        configuration: base_cfg,
        allocation: base_alloc,
        cost: base_cost,
    };
    for mask in 1u64..(1 << candidates.len()) {
        let phantoms: Vec<AttrSet> = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &p)| p)
            .collect();
        let cfg = Configuration::with_phantoms(graph.queries(), &phantoms);
        if phantoms.iter().any(|&p| cfg.children(p).count() < 2) {
            continue;
        }
        let alloc = allocate_numeric(&cfg, m_words, ctx, 200);
        let cost = per_record_cost(&cfg, &alloc, ctx);
        if cost < best.cost {
            best = GreedyStep {
                added: None,
                configuration: cfg,
                allocation: alloc,
                cost,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ClusterHandling;
    use msa_collision::LinearModel;
    use msa_stream::DatasetStats;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    /// Statistics shaped like the paper's single-attribute experiment:
    /// fine relations have many more groups than coarse ones, so
    /// phantoms pay off.
    fn stats_abcd() -> DatasetStats {
        DatasetStats::from_group_counts(
            [
                (s("A"), 500),
                (s("B"), 450),
                (s("C"), 550),
                (s("D"), 480),
                (s("AB"), 2000),
                (s("AC"), 2200),
                (s("AD"), 2100),
                (s("BC"), 1900),
                (s("BD"), 2050),
                (s("CD"), 2150),
                (s("ABC"), 2700),
                (s("ABD"), 2650),
                (s("ACD"), 2750),
                (s("BCD"), 2600),
                (s("ABCD"), 2837),
            ],
            1_000_000,
        )
    }

    fn queries1() -> Vec<AttrSet> {
        vec![s("A"), s("B"), s("C"), s("D")]
    }

    #[test]
    fn gc_adopts_beneficial_phantoms() {
        let stats = stats_abcd();
        let model = LinearModel::paper_no_intercept();
        let mut ctx = CostContext::new(&stats, &model);
        ctx.clustering = ClusterHandling::None;
        let graph = FeedingGraph::new(&queries1());
        let trace = greedy_collision(&graph, 40_000.0, &ctx, AllocStrategy::SupernodeLinear);
        assert!(
            trace.phantoms_chosen() >= 1,
            "expected at least one phantom, config {}",
            trace.final_step().configuration
        );
        // Costs decrease monotonically along the trace.
        let steps: Vec<&GreedyStep> = trace.steps().collect();
        for w in steps.windows(2) {
            assert!(w[1].cost < w[0].cost);
        }
    }

    #[test]
    fn gc_stops_when_space_is_scarce() {
        // With a tiny budget every phantom raises collision rates enough
        // to hurt: GC must keep the flat configuration.
        let stats = stats_abcd();
        let model = LinearModel::paper_no_intercept();
        let mut ctx = CostContext::new(&stats, &model);
        ctx.clustering = ClusterHandling::None;
        let graph = FeedingGraph::new(&queries1());
        let trace = greedy_collision(&graph, 900.0, &ctx, AllocStrategy::SupernodeLinear);
        assert_eq!(trace.phantoms_chosen(), 0);
    }

    #[test]
    fn gs_respects_budget_and_tops_up() {
        let stats = stats_abcd();
        let model = LinearModel::paper_no_intercept();
        let mut ctx = CostContext::new(&stats, &model);
        ctx.clustering = ClusterHandling::None;
        let graph = FeedingGraph::new(&queries1());
        let trace = greedy_space(&graph, 40_000.0, 1.0, &ctx);
        let final_alloc = &trace.final_step().allocation;
        let space = final_alloc.space_words();
        assert!(
            (space - 40_000.0).abs() / 40_000.0 < 0.02,
            "space {space} should exhaust the budget after top-up"
        );
    }

    #[test]
    fn gs_with_huge_phi_cannot_add_phantoms() {
        let stats = stats_abcd();
        let model = LinearModel::paper_no_intercept();
        let mut ctx = CostContext::new(&stats, &model);
        ctx.clustering = ClusterHandling::None;
        let graph = FeedingGraph::new(&queries1());
        // φ so large that no candidate fits next to the queries.
        let trace = greedy_space(&graph, 20_000.0, 3.0, &ctx);
        assert_eq!(trace.phantoms_chosen(), 0);
    }

    #[test]
    fn gcsl_at_least_as_good_as_gs() {
        // Fig. 11's qualitative claim: GCSL beats GS for any φ.
        let stats = stats_abcd();
        let model = LinearModel::paper_no_intercept();
        let mut ctx = CostContext::new(&stats, &model);
        ctx.clustering = ClusterHandling::None;
        let graph = FeedingGraph::new(&queries1());
        let m = 40_000.0;
        let gcsl = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
        for phi in [0.6, 0.8, 1.0, 1.2] {
            let gs = greedy_space(&graph, m, phi, &ctx);
            assert!(
                gcsl.final_step().cost <= gs.final_step().cost * 1.02,
                "phi={phi}: GCSL {} vs GS {}",
                gcsl.final_step().cost,
                gs.final_step().cost
            );
        }
    }

    #[test]
    fn epes_is_lower_bound() {
        // EPES must be at least as good as both greedy algorithms.
        let stats = stats_abcd();
        let model = LinearModel::paper_no_intercept();
        let mut ctx = CostContext::new(&stats, &model);
        ctx.clustering = ClusterHandling::None;
        // Two-query graph keeps the candidate set tiny for speed.
        let graph = FeedingGraph::new(&[s("AB"), s("BC")]);
        let m = 20_000.0;
        let best = epes(&graph, m, &ctx);
        let gc = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
        assert!(best.cost <= gc.final_step().cost * 1.005);
        let gs = greedy_space(&graph, m, 1.0, &ctx);
        assert!(best.cost <= gs.final_step().cost * 1.005);
    }

    #[test]
    fn trace_bookkeeping() {
        let stats = stats_abcd();
        let model = LinearModel::paper_no_intercept();
        let mut ctx = CostContext::new(&stats, &model);
        ctx.clustering = ClusterHandling::None;
        let graph = FeedingGraph::new(&queries1());
        let trace = greedy_collision(&graph, 60_000.0, &ctx, AllocStrategy::SupernodeLinear);
        assert_eq!(trace.baseline.added, None);
        assert_eq!(trace.baseline.configuration.phantoms().count(), 0);
        assert_eq!(trace.step(0).map(|s| s.added), Some(None));
        for (i, step) in trace.adopted.iter().enumerate() {
            assert!(step.added.is_some());
            assert_eq!(step.configuration.phantoms().count(), i + 1);
        }
    }
}
