//! The peak-load constraint (paper §3.3 and §6.3.4, Fig. 15).
//!
//! The end-of-epoch update cost `E_u` (Eq. 8) must stay below a peak
//! budget `E_p` — the LFTA must be able to drain its tables between
//! epochs without dropping packets. When a cost-optimal allocation
//! violates the constraint the paper repairs it with one of:
//!
//! * **shrink** — scale *all* tables down proportionally (leaves space
//!   unused but keeps the allocation shape);
//! * **shift** — move space from query tables to phantom tables: `c2`
//!   dominates `E_u` and queries are the relations paying `c2`, so
//!   shrinking the query tables attacks the constraint directly while
//!   the reclaimed space keeps phantoms effective.
//!
//! Fig. 15: shift wins when `E_p` is close to `E_u`; shrink wins when
//! the gap is large.

use crate::alloc::Allocation;
use crate::config::Configuration;
use crate::cost::{end_of_epoch_cost, CostContext};
use msa_stream::AttrSet;

/// Repair method for a violated peak-load constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeakLoadMethod {
    /// Scale all tables down proportionally.
    Shrink,
    /// Move space from query tables to phantom tables.
    Shift,
}

/// Result of a peak-load repair.
#[derive(Clone, Debug)]
pub struct PeakLoadOutcome {
    /// The repaired allocation.
    pub allocation: Allocation,
    /// `E_u` of the repaired allocation.
    pub update_cost: f64,
    /// True if the constraint could be met.
    pub feasible: bool,
    /// The scale factor `t` that produced `allocation` (1.0 when the
    /// allocation was left untouched). Feed it back as the `start` of
    /// the next [`enforce_peak_load_from`] call to make successive
    /// runtime repairs incremental.
    pub scale: f64,
}

/// Repairs `alloc` so that `E_u ≤ e_p`, using `method`.
///
/// Both repairs are parameterised by a scale factor `t ∈ (0, 1]` and
/// found by scanning `t` downward at 1 % granularity (matching the ES
/// granularity of the paper) — `E_u(t)` is monotone in the practical
/// range but not provably so, hence the scan rather than bisection.
pub fn enforce_peak_load(
    cfg: &Configuration,
    alloc: &Allocation,
    ctx: &CostContext<'_>,
    e_p: f64,
    method: PeakLoadMethod,
) -> PeakLoadOutcome {
    enforce_peak_load_from(cfg, alloc, ctx, e_p, method, 1.0)
}

/// Like [`enforce_peak_load`], but resumes the downward scan strictly
/// below `start` instead of at 0.99.
///
/// This is the incremental entry point for *runtime* repairs: a guard
/// that already shrank to `t = 0.8` last epoch and finds the budget
/// breached again passes `start = 0.8`, skipping the 20 candidate
/// evaluations it has already rejected. `start = 1.0` degenerates to
/// the full scan.
pub fn enforce_peak_load_from(
    cfg: &Configuration,
    alloc: &Allocation,
    ctx: &CostContext<'_>,
    e_p: f64,
    method: PeakLoadMethod,
    start: f64,
) -> PeakLoadOutcome {
    let start = start.clamp(0.01, 1.0);
    let current = end_of_epoch_cost(cfg, alloc, ctx);
    if current <= e_p {
        return PeakLoadOutcome {
            allocation: alloc.clone(),
            update_cost: current,
            feasible: true,
            scale: 1.0,
        };
    }
    // Seed with the unrepaired allocation: if every repair step makes
    // E_u worse (possible for shift when query tables are occupancy-
    // saturated), the honest answer is "infeasible, keep the original".
    let mut lowest: Option<(f64, f64, Allocation)> = Some((current, 1.0, alloc.clone()));
    for step in 1..100 {
        let t = 1.0 - step as f64 / 100.0;
        if t >= start {
            continue;
        }
        let candidate = match method {
            PeakLoadMethod::Shrink => alloc.scaled(t),
            PeakLoadMethod::Shift => shift(cfg, alloc, t),
        };
        let eu = end_of_epoch_cost(cfg, &candidate, ctx);
        if eu <= e_p {
            return PeakLoadOutcome {
                allocation: candidate,
                update_cost: eu,
                feasible: true,
                scale: t,
            };
        }
        if lowest.as_ref().is_none_or(|(c, _, _)| eu < *c) {
            lowest = Some((eu, t, candidate));
        }
    }
    // Constraint unreachable with this method: return the repair that got
    // closest (the caller can fall back to the other method).
    let (update_cost, scale, allocation) = lowest.unwrap_or_else(|| (current, 1.0, alloc.clone()));
    PeakLoadOutcome {
        allocation,
        update_cost,
        feasible: false,
        scale,
    }
}

/// Scales query tables by `t` and redistributes the reclaimed space to
/// phantoms proportionally to their current space. With no phantoms the
/// reclaimed space is simply dropped (degenerates to a query-side
/// shrink).
fn shift(cfg: &Configuration, alloc: &Allocation, t: f64) -> Allocation {
    let queries: Vec<AttrSet> = cfg.queries().collect();
    let phantoms: Vec<AttrSet> = cfg.phantoms().collect();
    let mut out = alloc.clone();
    let mut reclaimed = 0.0;
    for &q in &queries {
        let b = alloc.buckets(q);
        let shrunk = (b * t).max(1.0);
        reclaimed += (b - shrunk) * q.entry_words() as f64;
        out.set(q, shrunk);
    }
    if phantoms.is_empty() || reclaimed <= 0.0 {
        return out;
    }
    let phantom_space: f64 = phantoms.iter().map(|&p| alloc.space_words_of(p)).sum();
    for &p in &phantoms {
        let share = if phantom_space > 0.0 {
            alloc.space_words_of(p) / phantom_space
        } else {
            1.0 / phantoms.len() as f64
        };
        let extra_buckets = reclaimed * share / p.entry_words() as f64;
        out.set(p, alloc.buckets(p) + extra_buckets);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocStrategy;
    use crate::cost::ClusterHandling;
    use msa_collision::LinearModel;
    use msa_stream::DatasetStats;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    fn setup() -> (DatasetStats, LinearModel) {
        (
            DatasetStats::from_group_counts(
                [(s("A"), 500), (s("B"), 450), (s("AB"), 2000)],
                1_000_000,
            ),
            LinearModel::paper_no_intercept(),
        )
    }

    fn ctx<'a>(stats: &'a DatasetStats, model: &'a LinearModel) -> CostContext<'a> {
        let mut c = CostContext::new(stats, model);
        c.clustering = ClusterHandling::None;
        c
    }

    #[test]
    fn no_repair_when_constraint_holds() {
        let (stats, model) = setup();
        let ctx = ctx(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[s("AB")]);
        let alloc = AllocStrategy::SupernodeLinear.allocate(&cfg, 20_000.0, &ctx);
        let eu = end_of_epoch_cost(&cfg, &alloc, &ctx);
        let out = enforce_peak_load(&cfg, &alloc, &ctx, eu * 1.1, PeakLoadMethod::Shrink);
        assert!(out.feasible);
        assert_eq!(out.allocation, alloc);
    }

    #[test]
    fn shrink_meets_constraint() {
        let (stats, model) = setup();
        let ctx = ctx(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[s("AB")]);
        let alloc = AllocStrategy::SupernodeLinear.allocate(&cfg, 20_000.0, &ctx);
        let eu = end_of_epoch_cost(&cfg, &alloc, &ctx);
        let out = enforce_peak_load(&cfg, &alloc, &ctx, eu * 0.9, PeakLoadMethod::Shrink);
        assert!(out.feasible);
        assert!(out.update_cost <= eu * 0.9);
        // Total space strictly decreased.
        assert!(out.allocation.space_words() < alloc.space_words());
    }

    #[test]
    fn shift_meets_constraint_and_grows_phantom() {
        // Budget chosen so tables are smaller than their group counts
        // (b < g): that is the regime where query occupancy tracks table
        // size and shifting space to the phantom pays (the paper's
        // operating point; see Fig. 15).
        let (stats, model) = setup();
        let ctx = ctx(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[s("AB")]);
        let alloc = AllocStrategy::SupernodeLinear.allocate(&cfg, 2_000.0, &ctx);
        let eu = end_of_epoch_cost(&cfg, &alloc, &ctx);
        let out = enforce_peak_load(&cfg, &alloc, &ctx, eu * 0.95, PeakLoadMethod::Shift);
        // The outcome is reported honestly: either the target was met by
        // an actual repair, or the best candidate (possibly the original
        // allocation, when every shift makes E_u worse) is returned with
        // feasible = false.
        assert!(out.update_cost <= eu);
        if out.feasible {
            assert!(out.update_cost <= eu * 0.95);
            // A real shift happened: space moved from queries to the
            // phantom, conserving the total (within bucket-floor
            // rounding).
            assert!(out.allocation.buckets(s("AB")) > alloc.buckets(s("AB")));
            assert!(out.allocation.buckets(s("A")) < alloc.buckets(s("A")));
        } else {
            assert_eq!(out.allocation, alloc);
        }
        assert!(
            (out.allocation.space_words() - alloc.space_words()).abs() / alloc.space_words() < 0.01
        );
    }

    #[test]
    fn budget_at_exactly_eu_is_a_noop_with_unit_scale() {
        let (stats, model) = setup();
        let ctx = ctx(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[s("AB")]);
        let alloc = AllocStrategy::SupernodeLinear.allocate(&cfg, 20_000.0, &ctx);
        let eu = end_of_epoch_cost(&cfg, &alloc, &ctx);
        let out = enforce_peak_load(&cfg, &alloc, &ctx, eu, PeakLoadMethod::Shrink);
        assert!(out.feasible);
        assert_eq!(out.allocation, alloc);
        assert_eq!(out.scale, 1.0);
        assert_eq!(out.update_cost, eu);
    }

    #[test]
    fn tiny_budget_shrinks_below_one_bucket_without_panic() {
        // M so small every table is already at (or below) one bucket:
        // scaled() floors at 1.0, the scan must terminate cleanly for
        // both methods and report honestly.
        let (stats, model) = setup();
        let ctx = ctx(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[s("AB")]);
        let alloc = AllocStrategy::ProportionalSqrt.allocate(&cfg, 4.0, &ctx);
        for method in [PeakLoadMethod::Shrink, PeakLoadMethod::Shift] {
            let out = enforce_peak_load(&cfg, &alloc, &ctx, 1e-6, method);
            assert!(!out.feasible, "{method:?}: E_u cannot reach ~0");
            for (r, b) in out.allocation.iter() {
                assert!(b >= 1.0, "{method:?}: {r} shrunk below one bucket");
            }
        }
    }

    #[test]
    fn incremental_scan_resumes_strictly_below_start() {
        let (stats, model) = setup();
        let ctx = ctx(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[s("AB")]);
        let alloc = AllocStrategy::SupernodeLinear.allocate(&cfg, 20_000.0, &ctx);
        let eu = end_of_epoch_cost(&cfg, &alloc, &ctx);
        let full = enforce_peak_load(&cfg, &alloc, &ctx, eu * 0.9, PeakLoadMethod::Shrink);
        assert!(full.feasible && full.scale < 1.0);
        // Resuming from the scale the full scan found must move strictly
        // lower (every candidate ≥ start is skipped)...
        let resumed = enforce_peak_load_from(
            &cfg,
            &alloc,
            &ctx,
            eu * 0.9,
            PeakLoadMethod::Shrink,
            full.scale,
        );
        assert!(resumed.feasible);
        assert!(resumed.scale < full.scale);
        // ...and clamping pathological starts must not panic or loop.
        for start in [0.0, -3.0, 2.0] {
            let out =
                enforce_peak_load_from(&cfg, &alloc, &ctx, eu * 0.9, PeakLoadMethod::Shrink, start);
            assert!(out.scale <= 1.0);
        }
    }

    #[test]
    fn infeasible_constraint_reported() {
        let (stats, model) = setup();
        let ctx = ctx(&stats, &model);
        let cfg = Configuration::from_queries(&[s("A"), s("B")]);
        let alloc = AllocStrategy::ProportionalSqrt.allocate(&cfg, 20_000.0, &ctx);
        // E_u can never reach ~0 (flush always evicts at least the
        // occupied buckets).
        let out = enforce_peak_load(&cfg, &alloc, &ctx, 1e-3, PeakLoadMethod::Shrink);
        assert!(!out.feasible);
    }

    #[test]
    fn shift_without_phantoms_degenerates_to_query_shrink() {
        let (stats, model) = setup();
        let ctx = ctx(&stats, &model);
        let cfg = Configuration::from_queries(&[s("A"), s("B")]);
        let alloc = AllocStrategy::ProportionalSqrt.allocate(&cfg, 20_000.0, &ctx);
        let eu = end_of_epoch_cost(&cfg, &alloc, &ctx);
        let out = enforce_peak_load(&cfg, &alloc, &ctx, eu * 0.5, PeakLoadMethod::Shift);
        assert!(out.feasible);
        assert!(out.allocation.space_words() < alloc.space_words());
    }
}
