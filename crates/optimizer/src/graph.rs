//! The relation feeding graph (paper §2.6, Fig. 4).
//!
//! Nodes are the user queries plus every *phantom candidate*: a relation
//! obtained as the union of two or more queries. (The paper notes a
//! phantom feeding fewer than two relations is never beneficial, so only
//! such unions need be considered.) A directed edge `X → Y` exists when
//! `Y ⊂ X`: a table on `X` can feed a table on `Y` — possibly
//! "short-circuited" past uninstantiated intermediate nodes.

use msa_stream::AttrSet;
use std::collections::BTreeSet;

/// The feeding graph of a query set.
#[derive(Clone, Debug)]
pub struct FeedingGraph {
    queries: Vec<AttrSet>,
    phantoms: Vec<AttrSet>,
}

impl FeedingGraph {
    /// Builds the graph for `queries` (duplicates are removed).
    ///
    /// # Panics
    /// Panics if `queries` is empty or contains an empty attribute set.
    pub fn new(queries: &[AttrSet]) -> FeedingGraph {
        assert!(!queries.is_empty(), "need at least one query");
        assert!(
            queries.iter().all(|q| !q.is_empty()),
            "queries must have at least one grouping attribute"
        );
        let qset: BTreeSet<AttrSet> = queries.iter().copied().collect();
        // Closure of unions of ≥ 2 queries. Iterating unions of pairs to
        // a fixed point covers all unions of arbitrary subsets.
        let mut candidates: BTreeSet<AttrSet> = BTreeSet::new();
        let mut frontier: Vec<AttrSet> = qset.iter().copied().collect();
        while let Some(x) = frontier.pop() {
            for &q in &qset {
                let u = x.union(q);
                if u != x && u != q && !qset.contains(&u) && candidates.insert(u) {
                    frontier.push(u);
                }
            }
        }
        // A candidate must (potentially) feed at least two relations.
        let phantoms: Vec<AttrSet> = candidates
            .into_iter()
            .filter(|&p| qset.iter().filter(|q| q.is_proper_subset_of(p)).count() >= 2)
            .collect();
        FeedingGraph {
            queries: qset.into_iter().collect(),
            phantoms,
        }
    }

    /// The (deduplicated, sorted) query relations.
    pub fn queries(&self) -> &[AttrSet] {
        &self.queries
    }

    /// The phantom candidates, sorted.
    pub fn phantom_candidates(&self) -> &[AttrSet] {
        &self.phantoms
    }

    /// All nodes: queries and phantom candidates.
    pub fn nodes(&self) -> impl Iterator<Item = AttrSet> + '_ {
        self.queries
            .iter()
            .copied()
            .chain(self.phantoms.iter().copied())
    }

    /// True iff `x` can feed `y` (possibly short-circuited).
    pub fn can_feed(&self, x: AttrSet, y: AttrSet) -> bool {
        y.is_proper_subset_of(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    #[test]
    fn fig4_feeding_graph() {
        // Queries {AB, BC, BD, CD} → candidates {ABC, ABD, BCD, ABCD}
        // (paper Fig. 4).
        let g = FeedingGraph::new(&[s("AB"), s("BC"), s("BD"), s("CD")]);
        assert_eq!(
            g.phantom_candidates(),
            &[s("ABC"), s("ABD"), s("BCD"), s("ABCD")]
        );
        assert_eq!(g.queries().len(), 4);
    }

    #[test]
    fn single_attribute_queries() {
        // Queries {A, B, C, D} → all subsets of size ≥ 2: 11 candidates.
        let g = FeedingGraph::new(&[s("A"), s("B"), s("C"), s("D")]);
        assert_eq!(g.phantom_candidates().len(), 11);
        assert!(g.phantom_candidates().contains(&s("ABCD")));
        assert!(g.phantom_candidates().contains(&s("AC")));
    }

    #[test]
    fn candidate_feeding_two_queries_required() {
        // Queries {AB, CD}: only ABCD covers ≥ 2 queries.
        let g = FeedingGraph::new(&[s("AB"), s("CD")]);
        assert_eq!(g.phantom_candidates(), &[s("ABCD")]);
    }

    #[test]
    fn nested_queries_yield_no_union_phantoms() {
        // Queries {A, AB}: union AB is itself a query → no candidates.
        let g = FeedingGraph::new(&[s("A"), s("AB")]);
        assert!(g.phantom_candidates().is_empty());
    }

    #[test]
    fn duplicates_are_removed() {
        let g = FeedingGraph::new(&[s("A"), s("A"), s("B")]);
        assert_eq!(g.queries(), &[s("A"), s("B")]);
        assert_eq!(g.phantom_candidates(), &[s("AB")]);
    }

    #[test]
    fn can_feed_is_strict_subset() {
        let g = FeedingGraph::new(&[s("A"), s("B")]);
        assert!(g.can_feed(s("AB"), s("A")));
        assert!(!g.can_feed(s("AB"), s("AB")));
        assert!(!g.can_feed(s("A"), s("AB")));
        assert!(!g.can_feed(s("AC"), s("B")));
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_query_set_rejected() {
        let _ = FeedingGraph::new(&[]);
    }
}
