//! The cost model: Eq. 7 (per-record maintenance) and Eq. 8
//! (end-of-epoch update).
//!
//! Per-record intra-epoch cost of configuration `I` with leaf set `L`:
//!
//! ```text
//! e_m = Σ_{R∈I} (Π_{R'∈A_R} x_{R'})·c1  +  Σ_{R∈L} (Π_{R'∈A_R} x_{R'})·x_R·c2
//! ```
//!
//! where `A_R` are `R`'s ancestors in the configuration tree and `x_R`
//! its table's collision rate. We charge the `c2` term to every *query*
//! relation rather than every leaf: for the paper's workloads (query
//! sets that are antichains) the two coincide, and for nested queries an
//! internal query's evictions really do cross to the HFTA (see the
//! executor), so this matches the substrate.
//!
//! The end-of-epoch cost follows the flush cascade of §3.2.2: scanning
//! top-down, relation `R` receives
//! `inflow(R) = Σ_{R'∈A_R} M_{R'}·Π_{R'' between R' and R} x_{R''}`
//! feed probes (each `c1`); of these, the colliding fraction `x_R`
//! evicts, and the final scan evicts the table contents, so a query
//! sends `M_R + x_R·inflow(R)` entries to the HFTA (each `c2`). Inflow
//! entries that merge with resident groups do *not* evict — which is why
//! the paper's *shift* repair (move space from queries to phantoms)
//! lowers `E_u`: the dominant term is `M_R·c2` on the query tables.

use crate::alloc::Allocation;
use crate::config::Configuration;
use msa_collision::CollisionModel;
use msa_gigascope::CostParams;
use msa_stream::{AttrSet, DatasetStats};
use std::collections::BTreeMap;

/// How average flow lengths enter collision rates (Eq. 15).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ClusterHandling {
    /// Ignore clusteredness (`l = 1` everywhere) — the random-data model.
    None,
    /// Divide the collision rate of **raw** relations by their flow
    /// length. Tables fed by parent evictions see de-clustered input
    /// (each eviction already aggregates a run), so their `l` is 1.
    /// This is the default and what the executor measures.
    #[default]
    RawOnly,
    /// Divide every relation's rate by its flow length, as §5.3's space
    /// allocation rule (`√(g·h/l)`) implicitly does.
    AllRelations,
}

/// Everything the cost model needs about the environment.
pub struct CostContext<'a> {
    /// Dataset statistics (group counts, flow lengths).
    pub stats: &'a DatasetStats,
    /// Collision-rate model.
    pub model: &'a dyn CollisionModel,
    /// Probe / eviction costs.
    pub params: CostParams,
    /// Flow-length handling.
    pub clustering: ClusterHandling,
}

impl<'a> CostContext<'a> {
    /// A context with the paper's defaults (`c1 = 1`, `c2 = 50`,
    /// raw-only clustering).
    pub fn new(stats: &'a DatasetStats, model: &'a dyn CollisionModel) -> CostContext<'a> {
        CostContext {
            stats,
            model,
            params: CostParams::paper(),
            clustering: ClusterHandling::default(),
        }
    }

    /// Group count of `r` as f64.
    pub fn groups(&self, r: AttrSet) -> f64 {
        self.stats.groups(r) as f64
    }

    /// Effective flow length of `r` given its position (`raw` = fed by
    /// the stream).
    pub fn flow_len(&self, r: AttrSet, raw: bool) -> f64 {
        match self.clustering {
            ClusterHandling::None => 1.0,
            ClusterHandling::RawOnly => {
                if raw {
                    self.stats.flow_length(r).max(1.0)
                } else {
                    1.0
                }
            }
            ClusterHandling::AllRelations => self.stats.flow_length(r).max(1.0),
        }
    }

    /// Collision rate of `r`'s table with `buckets` buckets.
    pub fn rate(&self, r: AttrSet, buckets: f64, raw: bool) -> f64 {
        let x = self.model.rate(self.groups(r), buckets.max(1.0));
        (x / self.flow_len(r, raw)).clamp(0.0, 1.0)
    }

    /// The allocation weight `g̃ = g·h / l` of `r` (§5.3): collision
    /// rate in *space* units is `µ·g̃/s` where `s` is the table's space
    /// in words. Allocators size tables by this weight.
    pub fn weight(&self, r: AttrSet, raw: bool) -> f64 {
        self.groups(r) * r.entry_words() as f64 / self.flow_len(r, raw)
    }
}

/// Collision rates of every relation under `alloc`.
pub fn rates(
    cfg: &Configuration,
    alloc: &Allocation,
    ctx: &CostContext<'_>,
) -> BTreeMap<AttrSet, f64> {
    cfg.relations()
        .map(|r| {
            let raw = cfg.parent(r).is_none();
            (r, ctx.rate(r, alloc.buckets(r), raw))
        })
        .collect()
}

/// Per-record intra-epoch maintenance cost `e_m` (Eq. 7).
pub fn per_record_cost(cfg: &Configuration, alloc: &Allocation, ctx: &CostContext<'_>) -> f64 {
    let x = rates(cfg, alloc, ctx);
    let mut total = 0.0;
    for r in cfg.relations() {
        let anc_prod: f64 = cfg.ancestors(r).iter().map(|a| x[a]).product();
        total += anc_prod * ctx.params.c1;
        if cfg.is_query(r) {
            total += anc_prod * x[&r] * ctx.params.c2;
        }
    }
    total
}

/// Expected number of occupied buckets in a `b`-bucket table holding
/// `g` groups: `b·(1 − (1 − 1/b)^g)`.
///
/// Eq. 8 writes `M_R` for "the size of the hash table of relation `R`",
/// implicitly assuming full tables; when `b > g` a table can never hold
/// more than `g` entries, so using the expected occupancy keeps the
/// end-of-epoch prediction accurate across the whole sizing range (the
/// executor's measured flush counts confirm this within a few percent).
pub fn expected_occupied(g: f64, b: f64) -> f64 {
    if g <= 0.0 || b <= 0.0 {
        return 0.0;
    }
    if b <= 1.0 {
        return 1.0;
    }
    b * (1.0 - (g * (1.0 - 1.0 / b).ln()).exp())
}

/// End-of-epoch update cost `E_u` (Eq. 8, cascade reconstruction — see
/// module docs and DESIGN.md §3). Table sizes `M_R` are the expected
/// occupied bucket counts (see [`expected_occupied`]).
pub fn end_of_epoch_cost(cfg: &Configuration, alloc: &Allocation, ctx: &CostContext<'_>) -> f64 {
    let x = rates(cfg, alloc, ctx);
    let occupied = |r: AttrSet| expected_occupied(ctx.groups(r), alloc.buckets(r));
    let mut total = 0.0;
    for r in cfg.relations() {
        let ancestors = cfg.ancestors(r); // nearest first
        let mut inflow = 0.0;
        let mut between = 1.0; // Π x over relations strictly between
        for a in &ancestors {
            inflow += occupied(*a) * between;
            between *= x[a];
        }
        if !ancestors.is_empty() {
            total += inflow * ctx.params.c1;
        }
        if cfg.is_query(r) {
            total += (occupied(r) + x[&r] * inflow) * ctx.params.c2;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use msa_collision::LinearModel;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    fn stats_abc() -> DatasetStats {
        DatasetStats::from_group_counts(
            [
                (s("A"), 100),
                (s("B"), 100),
                (s("C"), 100),
                (s("ABC"), 1000),
            ],
            100_000,
        )
    }

    #[test]
    fn flat_cost_matches_e1_formula() {
        // §2.5, Eq. 1: E1/n = 3c1 + 3·x1·c2 with equal tables.
        let stats = stats_abc();
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let cfg = Configuration::from_queries(&[s("A"), s("B"), s("C")]);
        let mut alloc = Allocation::default();
        for q in ["A", "B", "C"] {
            alloc.set(s(q), 500.0);
        }
        let x1 = model.rate(100.0, 500.0);
        let expect = 3.0 * 1.0 + 3.0 * x1 * 50.0;
        let got = per_record_cost(&cfg, &alloc, &ctx);
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn phantom_cost_matches_e2_formula() {
        // §2.5, Eq. 2: E2/n = c1 + 3·x2·c1 + 3·x1'·x2·c2.
        let stats = stats_abc();
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B"), s("C")], &[s("ABC")]);
        let mut alloc = Allocation::default();
        alloc.set(s("ABC"), 2000.0);
        for q in ["A", "B", "C"] {
            alloc.set(s(q), 300.0);
        }
        let x2 = model.rate(1000.0, 2000.0);
        let x1 = model.rate(100.0, 300.0);
        let expect = 1.0 + 3.0 * x2 * 1.0 + 3.0 * x1 * x2 * 50.0;
        let got = per_record_cost(&cfg, &alloc, &ctx);
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn beneficial_phantom_reduces_cost() {
        // With a low phantom collision rate, E2 < E1 (Eq. 3 discussion).
        let stats = stats_abc();
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let m = 40_000.0; // words — large enough for a low phantom rate

        let flat = Configuration::from_queries(&[s("A"), s("B"), s("C")]);
        let mut flat_alloc = Allocation::default();
        for q in ["A", "B", "C"] {
            // 3 tables, h = 2 words → b = M/(3·2).
            flat_alloc.set(s(q), m / 6.0);
        }

        let ph = Configuration::with_phantoms(&[s("A"), s("B"), s("C")], &[s("ABC")]);
        let mut ph_alloc = Allocation::default();
        // Give the phantom (h = 4) half the space, queries the rest.
        ph_alloc.set(s("ABC"), m / 2.0 / 4.0);
        for q in ["A", "B", "C"] {
            ph_alloc.set(s(q), m / 2.0 / 3.0 / 2.0);
        }
        let e1 = per_record_cost(&flat, &flat_alloc, &ctx);
        let e2 = per_record_cost(&ph, &ph_alloc, &ctx);
        assert!(e2 < e1, "e2 = {e2} should beat e1 = {e1}");
    }

    #[test]
    fn clustering_reduces_raw_rates_only() {
        let mut stats = stats_abc();
        stats.set_flow_length(s("ABC"), 10.0);
        stats.set_flow_length(s("A"), 20.0);
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B"), s("C")], &[s("ABC")]);
        // Raw phantom: divided by its flow length.
        let raw_rate = ctx.rate(s("ABC"), 1000.0, true);
        assert!((raw_rate - model.rate(1000.0, 1000.0) / 10.0).abs() < 1e-12);
        // Fed query: l = 1 under RawOnly.
        let fed_rate = ctx.rate(s("A"), 100.0, false);
        assert!((fed_rate - model.rate(100.0, 100.0)).abs() < 1e-12);
        let _ = cfg;
    }

    #[test]
    fn end_of_epoch_two_level() {
        // Phantom AB (b0) feeding A and B (b1, b2):
        // E_u = [b0 + b0]·c1 (feeds into A and B)
        //     + [(b1 + x_A·b0) + (b2 + x_B·b0)]·c2.
        let stats =
            DatasetStats::from_group_counts([(s("A"), 50), (s("B"), 50), (s("AB"), 400)], 10_000);
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[s("AB")]);
        let mut alloc = Allocation::default();
        alloc.set(s("AB"), 800.0);
        alloc.set(s("A"), 100.0);
        alloc.set(s("B"), 100.0);
        let x_leaf = model.rate(50.0, 100.0);
        let m_ab = expected_occupied(400.0, 800.0);
        let m_leaf = expected_occupied(50.0, 100.0);
        let expect = (m_ab + m_ab) * 1.0 + 2.0 * (m_leaf + x_leaf * m_ab) * 50.0;
        let got = end_of_epoch_cost(&cfg, &alloc, &ctx);
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn end_of_epoch_three_level_uses_between_products() {
        // ABC → AB → A: inflow(A) = b_AB + b_ABC·x_AB.
        let stats = DatasetStats::from_group_counts(
            [(s("A"), 10), (s("AB"), 100), (s("ABC"), 1000), (s("B"), 10)],
            10_000,
        );
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[s("AB"), s("ABC")]);
        // Tree: ABC(AB(A) B)? B ⊂ AB, so B's parent is AB. Check.
        assert_eq!(cfg.parent(s("B")), Some(s("AB")));
        let mut alloc = Allocation::default();
        alloc.set(s("ABC"), 1000.0);
        alloc.set(s("AB"), 200.0);
        alloc.set(s("A"), 50.0);
        alloc.set(s("B"), 50.0);
        let x_ab = model.rate(100.0, 200.0);
        let x_a = model.rate(10.0, 50.0);
        let x_b = model.rate(10.0, 50.0);
        let m_abc = expected_occupied(1000.0, 1000.0);
        let m_ab = expected_occupied(100.0, 200.0);
        let m_leaf = expected_occupied(10.0, 50.0);
        let inflow_ab = m_abc;
        let inflow_leaf = m_ab + m_abc * x_ab;
        let expect_c1 = inflow_ab + 2.0 * inflow_leaf; // AB, A, B feeds
        let expect_c2 = (m_leaf + x_a * inflow_leaf) + (m_leaf + x_b * inflow_leaf);
        let got = end_of_epoch_cost(&cfg, &alloc, &ctx);
        let expect = expect_c1 * 1.0 + expect_c2 * 50.0;
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn expected_occupied_limits() {
        // g >> b: table is full.
        assert!((expected_occupied(1e6, 100.0) - 100.0).abs() < 1e-6);
        // g << b: roughly g entries.
        let occ = expected_occupied(10.0, 100_000.0);
        assert!((occ - 10.0).abs() < 0.01, "occ = {occ}");
        // Degenerate cases.
        assert_eq!(expected_occupied(0.0, 100.0), 0.0);
        assert_eq!(expected_occupied(5.0, 1.0), 1.0);
        // Matches the measured value from the integration scenario:
        // 400 groups into 1000 buckets -> ~330 occupied.
        let occ = expected_occupied(400.0, 1000.0);
        assert!((occ - 330.0).abs() < 2.0, "occ = {occ}");
    }

    #[test]
    fn weight_accounts_entry_size_and_flow() {
        let mut stats = stats_abc();
        stats.set_flow_length(s("ABC"), 4.0);
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        // ABC: g = 1000, h = 4, l = 4 (raw) → weight 1000.
        assert!((ctx.weight(s("ABC"), true) - 1000.0).abs() < 1e-12);
        // Non-raw: l = 1 → weight 4000.
        assert!((ctx.weight(s("ABC"), false) - 4000.0).abs() < 1e-12);
    }
}
