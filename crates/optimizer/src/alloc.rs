//! Space allocation (paper Section 5).
//!
//! Given a configuration and the LFTA memory budget `M` (in 4-byte
//! words), decide each table's size. Collision rates follow the linear
//! model `x = µ·g̃/s` where `s` is the table's space in words and
//! `g̃ = g·h/l` its allocation weight (§5.3). The paper derives:
//!
//! * **flat (no phantom)** — optimal space is proportional to `√g̃`;
//! * **one phantom feeding all queries** — the closed-form optimum of
//!   Eqs. 19–21: children get `s_i = √g̃_i/λ`, the phantom keeps the
//!   rest (always more than half of `M`);
//! * **deeper trees** — the optimality equations reach order ≥ 8 and are
//!   algebraically unsolvable (Abel), hence the heuristics SL, SR, PL,
//!   PR, benchmarked against exhaustive search.
//!
//! Exhaustive search (`ES`) appears in two forms: a literal grid
//! enumeration ([`allocate_grid`], exponential, small configurations
//! only) and a numeric optimum ([`allocate_numeric`]) exploiting that the
//! cost is a posynomial in the table sizes — convex in log-space — so a
//! softmax-parameterised gradient descent finds the global optimum.

use crate::config::Configuration;
use crate::cost::{per_record_cost, CostContext};
use msa_collision::PAPER_MU;
use msa_stream::AttrSet;
use std::collections::BTreeMap;

/// A space allocation: hash-table *buckets* per relation (fractional
/// during optimization; the planner rounds when emitting a physical
/// plan).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Allocation {
    buckets: BTreeMap<AttrSet, f64>,
}

impl Allocation {
    /// Bucket count of `r` (0 if absent).
    pub fn buckets(&self, r: AttrSet) -> f64 {
        self.buckets.get(&r).copied().unwrap_or(0.0)
    }

    /// Sets the bucket count of `r`.
    pub fn set(&mut self, r: AttrSet, b: f64) {
        assert!(b.is_finite() && b >= 0.0, "invalid bucket count {b}");
        self.buckets.insert(r, b);
    }

    /// Space of `r`'s table in words (`buckets · (arity + 1)`).
    pub fn space_words_of(&self, r: AttrSet) -> f64 {
        self.buckets(r) * r.entry_words() as f64
    }

    /// Total space in words.
    pub fn space_words(&self) -> f64 {
        self.buckets
            .iter()
            .map(|(r, b)| b * r.entry_words() as f64)
            .sum()
    }

    /// Iterates `(relation, buckets)`.
    pub fn iter(&self) -> impl Iterator<Item = (AttrSet, f64)> + '_ {
        self.buckets.iter().map(|(r, b)| (*r, *b))
    }

    /// Builds an allocation from per-relation *space* (words), converting
    /// to buckets and flooring at one bucket per table.
    pub fn from_spaces<I: IntoIterator<Item = (AttrSet, f64)>>(spaces: I) -> Allocation {
        let mut a = Allocation::default();
        for (r, s) in spaces {
            a.set(r, (s / r.entry_words() as f64).max(1.0));
        }
        a
    }

    /// Returns a copy with every table scaled by `t`.
    pub fn scaled(&self, t: f64) -> Allocation {
        assert!(t.is_finite() && t > 0.0);
        let mut out = self.clone();
        for b in out.buckets.values_mut() {
            *b = (*b * t).max(1.0);
        }
        out
    }
}

/// The space-allocation strategies of §5.2 plus the numeric optimum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocStrategy {
    /// Supernode with linear combination (SL): supernode weight = sum of
    /// member weights. The paper's best heuristic.
    SupernodeLinear,
    /// Supernode with square-root combination (SR): `√w_super = Σ √w_i`.
    SupernodeSqrt,
    /// Space proportional to the weight (PL).
    ProportionalLinear,
    /// Space proportional to the square root of the weight (PR).
    ProportionalSqrt,
    /// Numeric global optimum (stands in for the paper's exhaustive ES).
    NumericOptimal,
}

impl AllocStrategy {
    /// All four §5.2 heuristics, in paper order.
    pub const HEURISTICS: [AllocStrategy; 4] = [
        AllocStrategy::SupernodeLinear,
        AllocStrategy::SupernodeSqrt,
        AllocStrategy::ProportionalLinear,
        AllocStrategy::ProportionalSqrt,
    ];

    /// The paper's abbreviation (SL/SR/PL/PR/ES).
    pub fn name(&self) -> &'static str {
        match self {
            AllocStrategy::SupernodeLinear => "SL",
            AllocStrategy::SupernodeSqrt => "SR",
            AllocStrategy::ProportionalLinear => "PL",
            AllocStrategy::ProportionalSqrt => "PR",
            AllocStrategy::NumericOptimal => "ES",
        }
    }

    /// Allocates `m_words` of LFTA space across the configuration.
    pub fn allocate(&self, cfg: &Configuration, m_words: f64, ctx: &CostContext<'_>) -> Allocation {
        match self {
            AllocStrategy::SupernodeLinear => {
                allocate_supernode(cfg, m_words, ctx, Combine::Linear)
            }
            AllocStrategy::SupernodeSqrt => allocate_supernode(cfg, m_words, ctx, Combine::Sqrt),
            AllocStrategy::ProportionalLinear => allocate_proportional(cfg, m_words, ctx, false),
            AllocStrategy::ProportionalSqrt => allocate_proportional(cfg, m_words, ctx, true),
            AllocStrategy::NumericOptimal => allocate_numeric(cfg, m_words, ctx, 300),
        }
    }
}

/// Allocation weight of `r` inside `cfg` (`g·h/l`, §5.3).
fn weight(cfg: &Configuration, r: AttrSet, ctx: &CostContext<'_>) -> f64 {
    ctx.weight(r, cfg.parent(r).is_none())
}

/// PL / PR: space proportional to weight (or its square root).
pub fn allocate_proportional(
    cfg: &Configuration,
    m_words: f64,
    ctx: &CostContext<'_>,
    sqrt: bool,
) -> Allocation {
    let shares: Vec<(AttrSet, f64)> = cfg
        .relations()
        .map(|r| {
            let w = weight(cfg, r, ctx).max(0.0);
            (r, if sqrt { w.sqrt() } else { w })
        })
        .collect();
    let total: f64 = shares.iter().map(|(_, v)| v).sum();
    let n = shares.len() as f64;
    Allocation::from_spaces(shares.into_iter().map(|(r, v)| {
        let frac = if total > 0.0 { v / total } else { 1.0 / n };
        (r, m_words * frac)
    }))
}

/// How supernode weights combine (SL vs SR).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Combine {
    /// `w_super = w_own + Σ w_child` (SL).
    Linear,
    /// `√w_super = √w_own + Σ √w_child` (SR).
    Sqrt,
}

impl Combine {
    fn fold(&self, own: f64, children: &[f64]) -> f64 {
        match self {
            Combine::Linear => own + children.iter().sum::<f64>(),
            Combine::Sqrt => {
                let s =
                    own.max(0.0).sqrt() + children.iter().map(|w| w.max(0.0).sqrt()).sum::<f64>();
                s * s
            }
        }
    }
}

/// SL / SR (§5.2, Heuristics 1–2): collapse each phantom with its
/// subtree into a supernode bottom-up; allocate across the resulting
/// "all-query" top level optimally (space ∝ `√w`); then decompose each
/// supernode with the exact two-level split (Eqs. 19–21), recursively.
pub fn allocate_supernode(
    cfg: &Configuration,
    m_words: f64,
    ctx: &CostContext<'_>,
    combine: Combine,
) -> Allocation {
    // Subtree (supernode) weights, bottom-up.
    fn subtree_weight(
        cfg: &Configuration,
        ctx: &CostContext<'_>,
        combine: Combine,
        r: AttrSet,
        memo: &mut BTreeMap<AttrSet, f64>,
    ) -> f64 {
        if let Some(&w) = memo.get(&r) {
            return w;
        }
        let kids: Vec<f64> = cfg
            .children(r)
            .map(|c| subtree_weight(cfg, ctx, combine, c, memo))
            .collect();
        let w = combine.fold(weight(cfg, r, ctx), &kids);
        memo.insert(r, w);
        w
    }

    let mut memo = BTreeMap::new();
    let roots: Vec<AttrSet> = cfg.raw_relations().collect();
    let root_w: Vec<f64> = roots
        .iter()
        .map(|&r| subtree_weight(cfg, ctx, combine, r, &mut memo))
        .collect();

    // Top level: optimal flat allocation, space ∝ √w.
    let total_sqrt: f64 = root_w.iter().map(|w| w.max(0.0).sqrt()).sum();
    let mut spaces: BTreeMap<AttrSet, f64> = BTreeMap::new();
    let mut stack: Vec<(AttrSet, f64)> = roots
        .iter()
        .zip(&root_w)
        .map(|(&r, &w)| {
            let frac = if total_sqrt > 0.0 {
                w.max(0.0).sqrt() / total_sqrt
            } else {
                1.0 / roots.len() as f64
            };
            (r, m_words * frac)
        })
        .collect();

    // Decompose supernodes top-down with the exact two-level split.
    while let Some((r, space)) = stack.pop() {
        let kids: Vec<AttrSet> = cfg.children(r).collect();
        if kids.is_empty() {
            spaces.insert(r, space);
            continue;
        }
        let kid_w: Vec<f64> = kids.iter().map(|&k| memo[&k]).collect();
        let (own, kid_spaces) =
            two_level_split(&kid_w, space, ctx.params.c1, ctx.params.c2, PAPER_MU);
        spaces.insert(r, own);
        for (k, s) in kids.into_iter().zip(kid_spaces) {
            stack.push((k, s));
        }
    }
    Allocation::from_spaces(spaces)
}

/// The exact two-level optimum (Eqs. 19–21) in space units.
///
/// Splits `m` words between a feeding table and its `f` children with
/// weights `child_w`: children get `s_i = √w_i/λ` with `λ` the positive
/// root of `µc₂mλ² − 2µc₂(Σ√w)λ − f·c₁ = 0`; the feeder keeps the
/// remainder (provably more than `m/2`). The feeder's own weight cancels
/// out of the optimality conditions and is not needed.
pub fn two_level_split(child_w: &[f64], m: f64, c1: f64, c2: f64, mu: f64) -> (f64, Vec<f64>) {
    assert!(!child_w.is_empty(), "feeder must have children");
    assert!(m > 0.0 && c1 > 0.0 && c2 > 0.0 && mu > 0.0);
    let f = child_w.len() as f64;
    let sum_sqrt: f64 = child_w.iter().map(|w| w.max(0.0).sqrt()).sum();
    if sum_sqrt <= 0.0 {
        // Degenerate children: give them a token share each.
        let share = m * 0.01 / f;
        return (m - share * f, vec![share; child_w.len()]);
    }
    let a = mu * c2;
    let lambda =
        (a * sum_sqrt + (a * a * sum_sqrt * sum_sqrt + f * mu * c1 * c2 * m).sqrt()) / (a * m);
    let kid_spaces: Vec<f64> = child_w.iter().map(|w| w.max(0.0).sqrt() / lambda).collect();
    let used: f64 = kid_spaces.iter().sum();
    ((m - used).max(0.0), kid_spaces)
}

/// Numeric global optimum via softmax-parameterised gradient descent in
/// log-space (the cost is a posynomial, hence convex there). Stands in
/// for the paper's exhaustive ES; [`allocate_grid`] cross-validates it
/// on small configurations.
pub fn allocate_numeric(
    cfg: &Configuration,
    m_words: f64,
    ctx: &CostContext<'_>,
    iters: usize,
) -> Allocation {
    let relations: Vec<AttrSet> = cfg.relations().collect();
    let n = relations.len();
    if n == 1 {
        return Allocation::from_spaces([(relations[0], m_words)]);
    }

    let eval_spaces = |spaces: &[f64]| -> f64 {
        let alloc = Allocation::from_spaces(relations.iter().copied().zip(spaces.iter().copied()));
        per_record_cost(cfg, &alloc, ctx)
    };
    let softmax_spaces = |theta: &[f64]| -> Vec<f64> {
        let mx = theta.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = theta.iter().map(|t| (t - mx).exp()).collect();
        let z: f64 = exps.iter().sum();
        exps.iter().map(|e| m_words * e / z).collect()
    };

    // Warm starts: SL, falling back to PR when it scores better.
    let mut best_alloc = AllocStrategy::SupernodeLinear.allocate(cfg, m_words, ctx);
    let mut best_cost = per_record_cost(cfg, &best_alloc, ctx);
    {
        let a = AllocStrategy::ProportionalSqrt.allocate(cfg, m_words, ctx);
        let c = per_record_cost(cfg, &a, ctx);
        if c < best_cost {
            best_cost = c;
            best_alloc = a;
        }
    }

    // θ initialised from the warm start's spaces.
    let mut theta: Vec<f64> = relations
        .iter()
        .map(|&r| best_alloc.space_words_of(r).max(1e-6).ln())
        .collect();
    let (mut m1, mut m2) = (vec![0.0; n], vec![0.0; n]);
    let (beta1, beta2, lr, eps) = (0.9, 0.999, 0.08, 1e-9);
    let h = 1e-5;
    for t in 1..=iters {
        let mut grad = vec![0.0; n];
        for i in 0..n {
            let saved = theta[i];
            theta[i] = saved + h;
            let up = eval_spaces(&softmax_spaces(&theta));
            theta[i] = saved - h;
            let dn = eval_spaces(&softmax_spaces(&theta));
            theta[i] = saved;
            grad[i] = (up - dn) / (2.0 * h);
        }
        for i in 0..n {
            m1[i] = beta1 * m1[i] + (1.0 - beta1) * grad[i];
            m2[i] = beta2 * m2[i] + (1.0 - beta2) * grad[i] * grad[i];
            let mh = m1[i] / (1.0 - beta1.powi(t as i32));
            let vh = m2[i] / (1.0 - beta2.powi(t as i32));
            theta[i] -= lr * mh / (vh.sqrt() + eps);
        }
    }
    let final_spaces = softmax_spaces(&theta);
    let final_cost = eval_spaces(&final_spaces);
    if final_cost < best_cost {
        Allocation::from_spaces(relations.into_iter().zip(final_spaces))
    } else {
        best_alloc
    }
}

/// Literal exhaustive grid search at `granules` resolution (the paper's
/// ES procedure, §5.2: granularity 1 % of `M` ⇒ `granules = 100`).
///
/// # Panics
/// Panics on configurations with more than 5 relations — the
/// enumeration is `C(granules−1, n−1)`; use [`allocate_numeric`] beyond.
pub fn allocate_grid(
    cfg: &Configuration,
    m_words: f64,
    ctx: &CostContext<'_>,
    granules: usize,
) -> Allocation {
    let relations: Vec<AttrSet> = cfg.relations().collect();
    let n = relations.len();
    assert!(n <= 5, "grid ES limited to 5 relations, got {n}");
    assert!(granules >= n, "need at least one granule per relation");
    let unit = m_words / granules as f64;

    // Seed with the first assignment the enumeration below would
    // visit — one granule per table, the remainder on the last — so
    // `best` always holds a valid split and the strict-improvement
    // comparison leaves the search order's tie-breaking unchanged.
    let mut seed_grains = vec![1usize; n];
    if let Some(last) = seed_grains.last_mut() {
        *last = granules - (n - 1);
    }
    let seed_alloc = Allocation::from_spaces(
        relations
            .iter()
            .copied()
            .zip(seed_grains.iter().map(|&g| g as f64 * unit)),
    );
    let mut best = (per_record_cost(cfg, &seed_alloc, ctx), seed_grains);
    let mut current = vec![0usize; n];

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        idx: usize,
        remaining: usize,
        current: &mut Vec<usize>,
        best: &mut (f64, Vec<usize>),
        relations: &[AttrSet],
        unit: f64,
        cfg: &Configuration,
        ctx: &CostContext<'_>,
    ) {
        let n = relations.len();
        if idx == n - 1 {
            current[idx] = remaining;
            let alloc = Allocation::from_spaces(
                relations
                    .iter()
                    .copied()
                    .zip(current.iter().map(|&g| g as f64 * unit)),
            );
            let cost = per_record_cost(cfg, &alloc, ctx);
            if cost < best.0 {
                *best = (cost, current.clone());
            }
            return;
        }
        // Leave at least one granule per remaining table.
        for g in 1..=(remaining - (n - idx - 1)) {
            current[idx] = g;
            recurse(
                idx + 1,
                remaining - g,
                current,
                best,
                relations,
                unit,
                cfg,
                ctx,
            );
        }
    }
    recurse(
        0,
        granules,
        &mut current,
        &mut best,
        &relations,
        unit,
        cfg,
        ctx,
    );
    let (_, grains) = best;
    Allocation::from_spaces(
        relations
            .into_iter()
            .zip(grains.into_iter().map(|g| g as f64 * unit)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use msa_collision::LinearModel;
    use msa_stream::DatasetStats;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    fn stats4() -> DatasetStats {
        DatasetStats::from_group_counts(
            [
                (s("A"), 552),
                (s("B"), 400),
                (s("C"), 600),
                (s("D"), 120),
                (s("AB"), 1846),
                (s("AC"), 1700),
                (s("BC"), 1500),
                (s("BD"), 900),
                (s("CD"), 800),
                (s("ABC"), 2117),
                (s("ABD"), 2000),
                (s("ACD"), 1900),
                (s("BCD"), 1800),
                (s("ABCD"), 2837),
            ],
            860_000,
        )
    }

    #[test]
    fn two_level_split_phantom_gets_majority() {
        let (own, kids) = two_level_split(&[1000.0, 1000.0, 1000.0], 40_000.0, 1.0, 50.0, 0.354);
        let used: f64 = kids.iter().sum();
        assert!((own + used - 40_000.0).abs() < 1e-6);
        assert!(own > 20_000.0, "phantom space {own} should exceed half");
    }

    #[test]
    fn two_level_split_children_proportional_to_sqrt() {
        let (_, kids) = two_level_split(&[100.0, 400.0], 10_000.0, 1.0, 50.0, 0.354);
        // √400/√100 = 2.
        assert!((kids[1] / kids[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_level_split_matches_grid_optimum() {
        // Exact closed form vs exhaustive grid on AB(A B).
        let stats = stats4();
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[s("AB")]);
        let m = 20_000.0;
        let sl = allocate_supernode(&cfg, m, &ctx, Combine::Linear);
        let grid = allocate_grid(&cfg, m, &ctx, 200);
        let c_sl = per_record_cost(&cfg, &sl, &ctx);
        let c_grid = per_record_cost(&cfg, &grid, &ctx);
        assert!(c_sl <= c_grid * 1.01, "closed form {c_sl} vs grid {c_grid}");
    }

    #[test]
    fn proportional_allocations_exhaust_budget() {
        let stats = stats4();
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B"), s("C")], &[s("ABC")]);
        for sqrt in [false, true] {
            let alloc = allocate_proportional(&cfg, 40_000.0, &ctx, sqrt);
            assert!((alloc.space_words() - 40_000.0).abs() / 40_000.0 < 0.01);
            for (r, b) in alloc.iter() {
                assert!(b >= 1.0, "{r} has {b} buckets");
            }
        }
    }

    #[test]
    fn supernode_allocations_exhaust_budget() {
        let stats = stats4();
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let queries = [s("AB"), s("BC"), s("BD"), s("CD")];
        let cfg = Configuration::with_phantoms(&queries, &[s("ABCD"), s("BCD")]);
        for combine in [Combine::Linear, Combine::Sqrt] {
            let alloc = allocate_supernode(&cfg, 60_000.0, &ctx, combine);
            assert!(
                (alloc.space_words() - 60_000.0).abs() / 60_000.0 < 0.01,
                "space {}",
                alloc.space_words()
            );
        }
    }

    #[test]
    fn flat_configuration_sl_equals_pr() {
        // With no phantoms both SL and PR reduce to space ∝ √(g·h).
        let stats = stats4();
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let cfg = Configuration::from_queries(&[s("A"), s("B"), s("C"), s("D")]);
        let sl = AllocStrategy::SupernodeLinear.allocate(&cfg, 30_000.0, &ctx);
        let pr = AllocStrategy::ProportionalSqrt.allocate(&cfg, 30_000.0, &ctx);
        for r in cfg.relations() {
            assert!(
                (sl.buckets(r) - pr.buckets(r)).abs() < 1e-6,
                "{r}: SL {} vs PR {}",
                sl.buckets(r),
                pr.buckets(r)
            );
        }
    }

    #[test]
    fn numeric_beats_or_matches_heuristics() {
        let stats = stats4();
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let queries = [s("AB"), s("BC"), s("BD"), s("CD")];
        let cfg = Configuration::with_phantoms(&queries, &[s("ABCD"), s("BCD")]);
        let m = 40_000.0;
        let numeric = allocate_numeric(&cfg, m, &ctx, 300);
        let c_numeric = per_record_cost(&cfg, &numeric, &ctx);
        for strat in AllocStrategy::HEURISTICS {
            let a = strat.allocate(&cfg, m, &ctx);
            let c = per_record_cost(&cfg, &a, &ctx);
            assert!(
                c_numeric <= c * 1.005,
                "{}: numeric {c_numeric} vs {c}",
                strat.name()
            );
        }
    }

    #[test]
    fn numeric_matches_grid_on_small_config() {
        let stats = stats4();
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("C")], &[s("AC")]);
        let m = 20_000.0;
        let numeric = allocate_numeric(&cfg, m, &ctx, 400);
        let grid = allocate_grid(&cfg, m, &ctx, 100);
        let cn = per_record_cost(&cfg, &numeric, &ctx);
        let cg = per_record_cost(&cfg, &grid, &ctx);
        assert!(cn <= cg * 1.01, "numeric {cn} vs grid {cg}");
    }

    #[test]
    fn sl_is_optimal_for_one_phantom_feeding_all() {
        // §5.2: "both SL and SR give the optimal result for the case of
        // one phantom feeding all queries."
        let stats = stats4();
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B"), s("C"), s("D")], &[s("ABCD")]);
        let m = 40_000.0;
        let numeric = allocate_numeric(&cfg, m, &ctx, 500);
        let cn = per_record_cost(&cfg, &numeric, &ctx);
        for combine in [Combine::Linear, Combine::Sqrt] {
            let a = allocate_supernode(&cfg, m, &ctx, combine);
            let c = per_record_cost(&cfg, &a, &ctx);
            assert!(
                (c - cn).abs() / cn < 0.02,
                "{combine:?}: {c} vs optimal {cn}"
            );
        }
    }

    #[test]
    fn allocation_scaling_and_floors() {
        let mut a = Allocation::default();
        a.set(s("A"), 10.0);
        a.set(s("ABCD"), 100.0);
        let half = a.scaled(0.5);
        assert_eq!(half.buckets(s("A")), 5.0);
        // Space: 5·2 + 50·5 = 260.
        assert!((half.space_words() - 260.0).abs() < 1e-9);
        let tiny = a.scaled(1e-9);
        assert!(tiny.buckets(s("A")) >= 1.0, "floor at one bucket");
    }

    #[test]
    #[should_panic(expected = "grid ES limited")]
    fn grid_rejects_large_configs() {
        let stats = stats4();
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let cfg = Configuration::with_phantoms(
            &[s("AB"), s("BC"), s("BD"), s("CD")],
            &[s("ABCD"), s("BCD")],
        );
        let _ = allocate_grid(&cfg, 10_000.0, &ctx, 50);
    }
}
