//! Background re-planning against observed statistics.
//!
//! The adaptive runtime (see `msa-core`) watches live per-table
//! collision telemetry, and when the deployed plan's predicted rates
//! drift past a margin it asks this module for a *proposal*: re-run the
//! full phantom-choice + allocation pipeline against the refreshed
//! [`DatasetStats`], then cost **both** plans under the *same* refreshed
//! statistics so the comparison is apples-to-apples. The runtime only
//! pays the hot-swap pause when the predicted improvement clears its
//! margin — a proposal is advice, not a commitment.

use crate::cost::{end_of_epoch_cost, per_record_cost, CostContext};
use crate::planner::{Plan, Planner, PlannerOptions};
use msa_collision::CollisionModel;
use msa_stream::{AttrSet, DatasetStats};

/// A candidate replacement plan, costed side-by-side with the deployed
/// plan under the same (observed) statistics.
#[derive(Clone, Debug)]
pub struct ReplanProposal {
    /// The freshly planned candidate.
    pub plan: Plan,
    /// The deployed plan's predicted per-record cost under the
    /// refreshed statistics (NOT its original prediction — drift is
    /// exactly the gap between the two).
    pub old_cost: f64,
    /// The candidate's predicted per-record cost under the same
    /// statistics.
    pub new_cost: f64,
    /// Relative improvement `(old - new) / old`; negative when the
    /// candidate is predicted *worse* (re-planning noise — do not
    /// swap).
    pub improvement: f64,
}

impl ReplanProposal {
    /// True when the candidate's predicted gain clears `margin`
    /// (e.g. `0.05` = swap only for a ≥5 % predicted cost reduction).
    pub fn clears(&self, margin: f64) -> bool {
        self.improvement > margin
    }
}

/// Re-plans `queries` against `stats` (refreshed from observation) and
/// costs the result against the deployed `old_plan` under those same
/// statistics.
pub fn propose_replan(
    queries: &[AttrSet],
    stats: &DatasetStats,
    model: &dyn CollisionModel,
    options: &PlannerOptions,
    old_plan: &Plan,
) -> ReplanProposal {
    let plan = Planner::new(queries, stats, model, options).plan(options);
    let ctx = CostContext {
        stats,
        model,
        params: options.params,
        clustering: options.clustering,
    };
    let old_cost = per_record_cost(&old_plan.configuration, &old_plan.allocation, &ctx)
        + end_of_epoch_cost(&old_plan.configuration, &old_plan.allocation, &ctx);
    let new_cost = per_record_cost(&plan.configuration, &plan.allocation, &ctx)
        + end_of_epoch_cost(&plan.configuration, &plan.allocation, &ctx);
    let improvement = if old_cost > 0.0 {
        (old_cost - new_cost) / old_cost
    } else {
        0.0
    };
    ReplanProposal {
        plan,
        old_cost,
        new_cost,
        improvement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan_gcsl;
    use msa_collision::LinearModel;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    fn queries() -> Vec<AttrSet> {
        vec![s("A"), s("B"), s("AB")]
    }

    fn stats_with(groups: &[(AttrSet, usize)]) -> DatasetStats {
        DatasetStats::from_group_counts(groups.iter().copied(), 1_000_000)
    }

    #[test]
    fn unchanged_stats_propose_no_gain() {
        let qs = queries();
        let stats = stats_with(&[(s("A"), 100), (s("B"), 100), (s("AB"), 5000)]);
        let old = plan_gcsl(&qs, &stats, 20_000.0);
        let model = LinearModel::paper_no_intercept();
        let options = PlannerOptions::new(20_000.0);
        let p = propose_replan(&qs, &stats, &model, &options, &old);
        // Same statistics → the planner reproduces the same plan, so the
        // predicted improvement is (numerically) zero.
        assert!(
            p.improvement.abs() < 1e-9,
            "improvement = {}",
            p.improvement
        );
        assert!(!p.clears(0.05));
    }

    #[test]
    fn drifted_stats_propose_a_gain() {
        let qs = queries();
        let planned = stats_with(&[(s("A"), 100), (s("B"), 100), (s("AB"), 5000)]);
        let old = plan_gcsl(&qs, &planned, 20_000.0);
        // The world shifted: the pair relation exploded, the others
        // skewed. The old allocation is now badly proportioned.
        let observed = stats_with(&[(s("A"), 4000), (s("B"), 50), (s("AB"), 60_000)]);
        let model = LinearModel::paper_no_intercept();
        let options = PlannerOptions::new(20_000.0);
        let p = propose_replan(&qs, &observed, &model, &options, &old);
        assert!(
            p.new_cost <= p.old_cost,
            "replanning can never predict worse"
        );
        assert!(p.improvement > 0.0, "improvement = {}", p.improvement);
    }
}
