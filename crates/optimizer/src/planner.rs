//! The planner facade: one call from query set to executable plan.
//!
//! Wires together the feeding graph, phantom choice, space allocation
//! and the peak-load constraint, and lowers the result to an executable
//! [`msa_gigascope::PhysicalPlan`].

use crate::alloc::{AllocStrategy, Allocation};
use crate::config::Configuration;
use crate::cost::{end_of_epoch_cost, per_record_cost, ClusterHandling, CostContext};
use crate::graph::FeedingGraph;
use crate::greedy::{epes, greedy_collision, greedy_space};
use crate::peakload::{enforce_peak_load, PeakLoadMethod};
use msa_collision::{CollisionModel, LinearModel};
use msa_gigascope::{CostParams, PhysicalPlan, PlanNode};
use msa_stream::{AttrSet, DatasetStats};

/// Phantom-choice algorithm selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algorithm {
    /// GC with a pluggable allocation strategy. `GreedyCollision
    /// (SupernodeLinear)` is the paper's GCSL and the default.
    GreedyCollision(AllocStrategy),
    /// GS with parameter φ (buckets per group).
    GreedySpace {
        /// Buckets per group for every instantiated table.
        phi: f64,
    },
    /// Exhaustive optimal (exponential; small query sets only).
    Exhaustive,
    /// No phantoms: queries only, allocated with the given strategy.
    NoPhantoms(AllocStrategy),
}

impl Default for Algorithm {
    fn default() -> Algorithm {
        Algorithm::GreedyCollision(AllocStrategy::SupernodeLinear)
    }
}

/// Planner options.
#[derive(Clone, Debug)]
pub struct PlannerOptions {
    /// LFTA memory budget in 4-byte words (paper: 20,000–100,000).
    pub m_words: f64,
    /// Phantom-choice algorithm.
    pub algorithm: Algorithm,
    /// Probe/eviction costs.
    pub params: CostParams,
    /// Flow-length handling.
    pub clustering: ClusterHandling,
    /// Peak-load constraint: `(E_p, repair method)`.
    pub peak_load: Option<(f64, PeakLoadMethod)>,
}

impl PlannerOptions {
    /// Defaults: GCSL, paper costs, raw-only clustering, no peak-load
    /// constraint.
    pub fn new(m_words: f64) -> PlannerOptions {
        PlannerOptions {
            m_words,
            algorithm: Algorithm::default(),
            params: CostParams::paper(),
            clustering: ClusterHandling::default(),
            peak_load: None,
        }
    }
}

/// A chosen configuration with its allocation and predicted costs.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The chosen configuration.
    pub configuration: Configuration,
    /// Fractional bucket allocation.
    pub allocation: Allocation,
    /// Predicted per-record maintenance cost (Eq. 7).
    pub predicted_cost: f64,
    /// Predicted end-of-epoch cost (Eq. 8).
    pub predicted_update_cost: f64,
}

impl Plan {
    /// Lowers the plan to an executable [`PhysicalPlan`], rounding
    /// bucket counts (minimum one bucket per table).
    pub fn to_physical(&self) -> PhysicalPlan {
        // Topological order: parents have strictly more attributes than
        // children, so sorting by descending arity (then bitmask for
        // determinism) places parents first.
        let mut relations: Vec<AttrSet> = self.configuration.relations().collect();
        relations.sort_by_key(|r| (std::cmp::Reverse(r.len()), r.bits()));
        // A parent is a strict superset of its child, so it sorts
        // strictly earlier and `index_of` finds it for every relation
        // of a well-formed configuration.
        let index_of = |r: AttrSet| relations.iter().position(|&x| x == r);
        let nodes: Vec<PlanNode> = relations
            .iter()
            .map(|&r| PlanNode {
                attrs: r,
                parent: self.configuration.parent(r).and_then(index_of),
                buckets: (self.allocation.buckets(r).round() as usize).max(1),
                is_query: self.configuration.is_query(r),
            })
            .collect();
        // Validation cannot fail on a well-formed configuration (the
        // sort gives parent-before-child order and `Configuration`
        // maintains subset nesting). Should a malformed one ever
        // arrive, degrade to the flat queries-only plan instead of
        // panicking mid-stream: still-correct answers, phantom-free
        // cost.
        PhysicalPlan::new(nodes).unwrap_or_else(|_| {
            PhysicalPlan::flat(
                self.configuration
                    .relations()
                    .filter(|&r| self.configuration.is_query(r))
                    .map(|r| (r, (self.allocation.buckets(r).round() as usize).max(1))),
            )
        })
    }
}

/// The planner: owns the statistics and model references.
pub struct Planner<'a> {
    graph: FeedingGraph,
    ctx: CostContext<'a>,
}

impl<'a> Planner<'a> {
    /// Creates a planner for `queries` against `stats`, using `model`
    /// for collision rates.
    pub fn new(
        queries: &[AttrSet],
        stats: &'a DatasetStats,
        model: &'a dyn CollisionModel,
        options: &PlannerOptions,
    ) -> Planner<'a> {
        let ctx = CostContext {
            stats,
            model,
            params: options.params,
            clustering: options.clustering,
        };
        Planner {
            graph: FeedingGraph::new(queries),
            ctx,
        }
    }

    /// The feeding graph in use.
    pub fn graph(&self) -> &FeedingGraph {
        &self.graph
    }

    /// Chooses a configuration and allocation per `options`.
    pub fn plan(&self, options: &PlannerOptions) -> Plan {
        let m = options.m_words;
        let (configuration, allocation) = match options.algorithm {
            Algorithm::GreedyCollision(strategy) => {
                let t = greedy_collision(&self.graph, m, &self.ctx, strategy);
                let f = t.final_step();
                (f.configuration.clone(), f.allocation.clone())
            }
            Algorithm::GreedySpace { phi } => {
                let t = greedy_space(&self.graph, m, phi, &self.ctx);
                let f = t.final_step();
                (f.configuration.clone(), f.allocation.clone())
            }
            Algorithm::Exhaustive => {
                let best = epes(&self.graph, m, &self.ctx);
                (best.configuration, best.allocation)
            }
            Algorithm::NoPhantoms(strategy) => {
                let cfg = Configuration::from_queries(self.graph.queries());
                let alloc = strategy.allocate(&cfg, m, &self.ctx);
                (cfg, alloc)
            }
        };
        let allocation = match options.peak_load {
            Some((e_p, method)) => {
                enforce_peak_load(&configuration, &allocation, &self.ctx, e_p, method).allocation
            }
            None => allocation,
        };
        Plan {
            predicted_cost: per_record_cost(&configuration, &allocation, &self.ctx),
            predicted_update_cost: end_of_epoch_cost(&configuration, &allocation, &self.ctx),
            configuration,
            allocation,
        }
    }
}

/// Convenience entry point: plan with the paper's defaults (GCSL, linear
/// collision model without intercept).
pub fn plan_gcsl(queries: &[AttrSet], stats: &DatasetStats, m_words: f64) -> Plan {
    let model = LinearModel::paper_no_intercept();
    let options = PlannerOptions::new(m_words);
    Planner::new(queries, stats, &model, &options).plan(&options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    fn stats() -> DatasetStats {
        DatasetStats::from_group_counts(
            [
                (s("A"), 500),
                (s("B"), 450),
                (s("C"), 550),
                (s("D"), 480),
                (s("AB"), 2000),
                (s("AC"), 2200),
                (s("AD"), 2100),
                (s("BC"), 1900),
                (s("BD"), 2050),
                (s("CD"), 2150),
                (s("ABC"), 2700),
                (s("ABD"), 2650),
                (s("ACD"), 2750),
                (s("BCD"), 2600),
                (s("ABCD"), 2837),
            ],
            1_000_000,
        )
    }

    #[test]
    fn gcsl_plan_beats_no_phantoms() {
        let stats = stats();
        let queries = [s("A"), s("B"), s("C"), s("D")];
        let plan = plan_gcsl(&queries, &stats, 40_000.0);

        let model = LinearModel::paper_no_intercept();
        let mut opts = PlannerOptions::new(40_000.0);
        opts.algorithm = Algorithm::NoPhantoms(AllocStrategy::SupernodeLinear);
        let flat = Planner::new(&queries, &stats, &model, &opts).plan(&opts);
        assert!(
            plan.predicted_cost < flat.predicted_cost,
            "gcsl {} vs flat {}",
            plan.predicted_cost,
            flat.predicted_cost
        );
    }

    #[test]
    fn physical_plan_roundtrip() {
        let stats = stats();
        let queries = [s("AB"), s("BC"), s("BD"), s("CD")];
        let plan = plan_gcsl(&queries, &stats, 40_000.0);
        let phys = plan.to_physical();
        assert_eq!(phys.query_nodes().count(), 4);
        // Physical space within rounding of the budget.
        let words = phys.space_words() as f64;
        assert!(
            (words - 40_000.0).abs() / 40_000.0 < 0.05,
            "physical space {words}"
        );
        // Parents precede children and are supersets (validated by
        // PhysicalPlan::new, which would have errored otherwise).
        assert!(phys.nodes().len() >= 4);
    }

    #[test]
    fn peak_load_option_reduces_update_cost() {
        let stats = stats();
        let queries = [s("A"), s("B"), s("C"), s("D")];
        let model = LinearModel::paper_no_intercept();
        let base_opts = PlannerOptions::new(40_000.0);
        let base = Planner::new(&queries, &stats, &model, &base_opts).plan(&base_opts);

        let mut capped = PlannerOptions::new(40_000.0);
        capped.peak_load = Some((base.predicted_update_cost * 0.9, PeakLoadMethod::Shrink));
        let plan = Planner::new(&queries, &stats, &model, &capped).plan(&capped);
        assert!(plan.predicted_update_cost <= base.predicted_update_cost * 0.9 * 1.001);
    }

    #[test]
    fn exhaustive_at_least_matches_gcsl() {
        let stats = stats();
        // Small query set so EPES stays fast.
        let queries = [s("AB"), s("BC")];
        let model = LinearModel::paper_no_intercept();
        let mut opts = PlannerOptions::new(20_000.0);
        opts.algorithm = Algorithm::Exhaustive;
        let best = Planner::new(&queries, &stats, &model, &opts).plan(&opts);
        let gcsl = plan_gcsl(&queries, &stats, 20_000.0);
        assert!(best.predicted_cost <= gcsl.predicted_cost * 1.005);
    }

    #[test]
    fn gs_algorithm_runs() {
        let stats = stats();
        let queries = [s("A"), s("B"), s("C"), s("D")];
        let model = LinearModel::paper_no_intercept();
        let mut opts = PlannerOptions::new(40_000.0);
        opts.algorithm = Algorithm::GreedySpace { phi: 1.0 };
        let plan = Planner::new(&queries, &stats, &model, &opts).plan(&opts);
        assert!(plan.predicted_cost.is_finite());
        let phys = plan.to_physical();
        assert_eq!(phys.query_nodes().count(), 4);
    }
}
