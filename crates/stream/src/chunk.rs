//! Columnar record chunks: the unit of vectorized ingestion.
//!
//! A [`RecordChunk`] stores up to a few thousand records in
//! structure-of-arrays layout — one `Vec<u32>` column per attribute
//! position plus a timestamp column — so the LFTA probe can project
//! group keys and precompute hash slots in tight per-column loops
//! instead of striding across row-major [`Record`]s.
//!
//! Chunking is purely a batching concern: a chunk carries no epoch or
//! ordering semantics of its own. The executor re-derives epoch
//! boundaries from the timestamp column, so splitting a record
//! sequence into chunks at *any* boundary — including mid-epoch — must
//! be observationally identical to per-record ingestion. The
//! differential battery in `tests/vectorized.rs` holds that line.

use crate::attr::{AttrSet, MAX_ATTRS};
use crate::record::{GroupKey, Record};

/// Default number of records per chunk.
///
/// 1024 rows × (8 attribute columns + 1 timestamp column) ≈ 40 KiB —
/// comfortably inside L2, large enough to amortize per-chunk
/// bookkeeping, and matching the processing-window idiom of columnar
/// stream engines.
pub const PROCESSING_WINDOW_SIZE: usize = 1024;

/// A fixed-arity batch of records in columnar (SoA) layout.
///
/// Column `a` holds attribute `a` of every record in order; unused
/// attribute positions are zero, exactly as in [`Record::attrs`]. All
/// accessors are panic-free: out-of-range lane or column indices yield
/// `None` or empty slices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecordChunk {
    cols: [Vec<u32>; MAX_ATTRS],
    ts: Vec<u64>,
}

impl RecordChunk {
    /// Creates an empty chunk.
    pub fn new() -> RecordChunk {
        RecordChunk::default()
    }

    /// Creates an empty chunk with room for `capacity` records.
    pub fn with_capacity(capacity: usize) -> RecordChunk {
        RecordChunk {
            cols: std::array::from_fn(|_| Vec::with_capacity(capacity)),
            ts: Vec::with_capacity(capacity),
        }
    }

    /// Number of records in the chunk.
    #[inline]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when the chunk holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Appends one record.
    pub fn push(&mut self, record: &Record) {
        for (col, &v) in self.cols.iter_mut().zip(record.attrs.iter()) {
            col.push(v);
        }
        self.ts.push(record.ts_micros);
    }

    /// Clears the chunk, keeping allocations.
    pub fn clear(&mut self) {
        for col in self.cols.iter_mut() {
            col.clear();
        }
        self.ts.clear();
    }

    /// Builds a chunk from a record slice.
    pub fn from_records(records: &[Record]) -> RecordChunk {
        let mut chunk = RecordChunk::with_capacity(records.len());
        for r in records {
            chunk.push(r);
        }
        chunk
    }

    /// Materializes the chunk back into row-major records.
    pub fn to_records(&self) -> Vec<Record> {
        (0..self.len()).filter_map(|i| self.get(i)).collect()
    }

    /// The record at lane `i`, if in range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Record> {
        let &ts_micros = self.ts.get(i)?;
        let mut attrs = [0u32; MAX_ATTRS];
        for (dst, col) in attrs.iter_mut().zip(self.cols.iter()) {
            *dst = col.get(i).copied().unwrap_or(0);
        }
        Some(Record { attrs, ts_micros })
    }

    /// The values of attribute column `a` (empty when out of range).
    #[inline]
    pub fn column(&self, a: usize) -> &[u32] {
        self.cols.get(a).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The timestamp column.
    #[inline]
    pub fn timestamps(&self) -> &[u64] {
        &self.ts
    }

    /// Iterates the chunk's records in lane order.
    pub fn iter(&self) -> impl Iterator<Item = Record> + '_ {
        (0..self.len()).filter_map(|i| self.get(i))
    }

    /// Projects lanes `[from, to)` onto `set` in columnar order,
    /// appending one [`GroupKey`] per lane to `out`. Each key is
    /// bit-identical to `self.get(lane).project(set)`, but values are
    /// gathered column-by-column — a tight loop per attribute over a
    /// contiguous slice — instead of striding across rows.
    pub fn project_range(&self, set: AttrSet, from: usize, to: usize, out: &mut Vec<GroupKey>) {
        let from = from.min(self.len());
        let to = to.clamp(from, self.len());
        let start = out.len();
        out.resize(start + (to - from), GroupKey::zeroed(set.len() as u8));
        let Some(dst) = out.get_mut(start..) else {
            return;
        };
        for (pos, a) in set.iter().enumerate() {
            let col = self.column(a as usize);
            let lanes = col.get(from..to).unwrap_or(&[]);
            for (key, &v) in dst.iter_mut().zip(lanes.iter()) {
                key.set_val(pos, v);
            }
        }
    }

    /// Splits the chunk at lane `mid`: `self` keeps `[0, mid)` and the
    /// returned chunk holds `[mid, len)`. A `mid` past the end yields
    /// an empty tail.
    pub fn split_off(&mut self, mid: usize) -> RecordChunk {
        let mid = mid.min(self.len());
        RecordChunk {
            cols: std::array::from_fn(|a| {
                self.cols
                    .get_mut(a)
                    .map(|c| c.split_off(mid))
                    .unwrap_or_default()
            }),
            ts: self.ts.split_off(mid),
        }
    }

    /// Appends every record of `other` to `self` (columnar
    /// concatenation; `other` is left empty).
    pub fn append(&mut self, other: &mut RecordChunk) {
        for (dst, src) in self.cols.iter_mut().zip(other.cols.iter_mut()) {
            dst.append(src);
        }
        self.ts.append(&mut other.ts);
    }
}

impl FromIterator<Record> for RecordChunk {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> RecordChunk {
        let mut chunk = RecordChunk::new();
        for r in iter {
            chunk.push(&r);
        }
        chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vals: &[u32], ts: u64) -> Record {
        Record::new(vals, ts)
    }

    fn sample(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| rec(&[i as u32, (i * 7) as u32 & 0xff, 3, 4], i as u64 * 100))
            .collect()
    }

    #[test]
    fn round_trips_records() {
        let records = sample(37);
        let chunk = RecordChunk::from_records(&records);
        assert_eq!(chunk.len(), 37);
        assert_eq!(chunk.to_records(), records);
        assert_eq!(chunk.iter().collect::<Vec<_>>(), records);
    }

    #[test]
    fn columns_are_soa_views() {
        let records = sample(5);
        let chunk = RecordChunk::from_records(&records);
        for a in 0..MAX_ATTRS {
            let want: Vec<u32> = records.iter().map(|r| r.attrs[a]).collect();
            assert_eq!(chunk.column(a), &want[..], "column {a}");
        }
        let want_ts: Vec<u64> = records.iter().map(|r| r.ts_micros).collect();
        assert_eq!(chunk.timestamps(), &want_ts[..]);
        assert!(chunk.column(MAX_ATTRS).is_empty());
    }

    #[test]
    fn get_out_of_range_is_none() {
        let chunk = RecordChunk::from_records(&sample(3));
        assert!(chunk.get(3).is_none());
        assert!(chunk.get(usize::MAX).is_none());
    }

    #[test]
    fn split_and_append_round_trip() {
        let records = sample(23);
        for mid in [0, 1, 11, 22, 23, 99] {
            let mut head = RecordChunk::from_records(&records);
            let mut tail = head.split_off(mid);
            let cut = mid.min(records.len());
            assert_eq!(head.to_records(), &records[..cut]);
            assert_eq!(tail.to_records(), &records[cut..]);
            head.append(&mut tail);
            assert!(tail.is_empty());
            assert_eq!(head.to_records(), records, "mid {mid}");
        }
    }

    #[test]
    fn clear_keeps_nothing() {
        let mut chunk = RecordChunk::from_records(&sample(8));
        chunk.clear();
        assert!(chunk.is_empty());
        assert_eq!(chunk.len(), 0);
        assert!(chunk.to_records().is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let records = sample(12);
        let chunk: RecordChunk = records.iter().copied().collect();
        assert_eq!(chunk.to_records(), records);
    }
}
