//! A small, seeded, dependency-free PRNG for workload generation.
//!
//! The workspace must build and test with **no external crates** (the
//! LFTA target environments are air-gapped), so instead of `rand` the
//! generators use this SplitMix64-based generator: 64 bits of state,
//! full-period, passes the avalanche tests that back [`crate::hash`],
//! and — critically — **stable across releases**, so every stream a
//! seed produced yesterday is reproducible byte-for-byte tomorrow.
//! It is *not* cryptographically secure and must never be used for
//! anything security-sensitive.

/// Deterministic SplitMix64 generator.
///
/// ```
/// use msa_stream::prng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The current internal state — a cursor into the stream.
    ///
    /// Together with [`SplitMix64::from_state`] this lets checkpointing
    /// code freeze a generator mid-stream and resume it bit-exactly:
    /// every draw after restoration equals the draw the original would
    /// have produced.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at an exported [`SplitMix64::state`] cursor.
    #[inline]
    pub fn from_state(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        // Lemire's multiply-shift rejection-free reduction is biased by
        // at most 2^-64 per draw for the bounds used here (≪ 2^32),
        // which is far below experimental noise.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform `u32` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_u32_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "gen_u32_below bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u32
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }

    /// Uniform `f64` in `(0, 1]` — safe as a denominator or `ln` input.
    #[inline]
    pub fn gen_f64_open(&mut self) -> f64 {
        1.0 - self.gen_f64()
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(1);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(1);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(2);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn state_export_resumes_bit_exactly() {
        let mut a = SplitMix64::new(11);
        for _ in 0..100 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        let rest_a: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let rest_b: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(rest_a, rest_b);
    }

    #[test]
    fn index_and_bound_draws_stay_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.gen_index(7) < 7);
            assert!(r.gen_u32_below(100) < 100);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let o = r.gen_f64_open();
            assert!(o > 0.0 && o <= 1.0);
        }
    }

    #[test]
    fn gen_index_is_roughly_uniform() {
        let mut r = SplitMix64::new(4);
        let mut counts = [0usize; 10];
        const N: usize = 100_000;
        for _ in 0..N {
            counts[r.gen_index(10)] += 1;
        }
        let expected = N as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i}: {c} (dev {dev:.3})");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        // And actually permutes with overwhelming probability.
        assert_ne!(v, sorted);
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut r = SplitMix64::new(6);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.1)).count();
        assert!((hits as f64 - 10_000.0).abs() < 400.0, "hits {hits}");
    }
}
