//! A fast, allocation-free hasher for group keys.
//!
//! The paper assumes the LFTA uses a hash function that "randomly hashes
//! the data, so each hash value is equally possible for every record".
//! SipHash (the `std` default) satisfies that but is needlessly slow for
//! 4-byte integer attributes, and the approved dependency list contains no
//! third-party hasher, so we implement a small multiply-xor mixer in the
//! spirit of `wyhash`/`splitmix64`. Empirical bucket-occupancy tests (see
//! the collision-model validation experiments) show it matches the
//! paper's random-hash assumption on both uniform and clustered data.

use std::hash::{BuildHasher, Hasher};

/// 64-bit finalizer from `splitmix64`; full avalanche on all input bits.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Streaming hasher combining 8-byte lanes with multiply-xor mixing.
///
/// `FastHasher` implements [`Hasher`] so it can back `HashMap`s used by
/// the statistics and HFTA layers, and it exposes
/// [`FastHasher::hash_words`] for the hot LFTA probe path.
#[derive(Clone, Debug)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    /// Creates a hasher with the given seed.
    #[inline]
    pub fn with_seed(seed: u64) -> FastHasher {
        FastHasher {
            state: mix64(seed ^ 0x5B4C_F5A1_36D5_A421),
        }
    }

    /// Hashes a slice of 4-byte attribute values in one shot.
    ///
    /// This is the LFTA probe path: group keys are at most
    /// [`crate::MAX_ATTRS`] words, so the loop fully unrolls.
    #[inline]
    pub fn hash_words(seed: u64, words: &[u32]) -> u64 {
        let mut h = mix64(seed ^ (words.len() as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        for &w in words {
            h = mix64(h ^ u64::from(w));
        }
        h
    }
}

impl Default for FastHasher {
    fn default() -> FastHasher {
        FastHasher::with_seed(0)
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume full 8-byte lanes, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(chunk); // chunks_exact(8) guarantees the length
            self.state = mix64(self.state ^ u64::from_le_bytes(lane));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut lane = [0u8; 8];
            lane[..rem.len()].copy_from_slice(rem);
            self.state = mix64(self.state ^ u64::from_le_bytes(lane) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.state = mix64(self.state ^ u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state ^ i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// [`BuildHasher`] producing [`FastHasher`]s; deterministic for
/// reproducible experiments (seedable for independence tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct FastState {
    seed: u64,
}

impl FastState {
    /// Creates a builder whose hashers start from `seed`.
    pub fn with_seed(seed: u64) -> FastState {
        FastState { seed }
    }
}

impl BuildHasher for FastState {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::with_seed(self.seed)
    }
}

/// A `HashMap` keyed with the workspace hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastState>;
/// A `HashSet` keyed with the workspace hasher.
pub type FastSet<K> = std::collections::HashSet<K, FastState>;

/// A [`FastMap`] with room for `capacity` entries — the deterministic
/// replacement for `HashMap::with_capacity` (msa-lint D002).
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(capacity, FastState::default())
}

/// A [`FastSet`] with room for `capacity` entries — the deterministic
/// replacement for `HashSet::with_capacity` (msa-lint D002).
pub fn fast_set_with_capacity<K>(capacity: usize) -> FastSet<K> {
    FastSet::with_capacity_and_hasher(capacity, FastState::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_bijective_on_samples() {
        // Distinct inputs must produce distinct outputs (bijectivity spot
        // check — mix64 is invertible by construction).
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn hash_words_depends_on_every_word() {
        let base = FastHasher::hash_words(1, &[10, 20, 30]);
        assert_ne!(base, FastHasher::hash_words(1, &[11, 20, 30]));
        assert_ne!(base, FastHasher::hash_words(1, &[10, 21, 30]));
        assert_ne!(base, FastHasher::hash_words(1, &[10, 20, 31]));
        assert_ne!(base, FastHasher::hash_words(1, &[10, 20]));
        assert_ne!(base, FastHasher::hash_words(2, &[10, 20, 30]));
    }

    #[test]
    fn hasher_trait_matches_incremental_use() {
        use std::hash::Hasher;
        let mut h1 = FastHasher::with_seed(7);
        h1.write_u32(42);
        h1.write_u32(43);
        let mut h2 = FastHasher::with_seed(7);
        h2.write_u32(42);
        h2.write_u32(43);
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FastHasher::with_seed(7);
        h3.write_u32(43);
        h3.write_u32(42);
        assert_ne!(h1.finish(), h3.finish(), "order must matter");
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        // Chi-squared sanity check: hash 100k sequential keys into 128
        // buckets; expect each bucket near 781 with modest deviation.
        const BUCKETS: usize = 128;
        const N: usize = 100_000;
        let mut counts = [0usize; BUCKETS];
        for i in 0..N {
            let h = FastHasher::hash_words(0, &[i as u32, (i / 3) as u32]);
            counts[(h % BUCKETS as u64) as usize] += 1;
        }
        let expected = N as f64 / BUCKETS as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 127 degrees of freedom; p=0.001 critical value ≈ 181.
        assert!(chi2 < 181.0, "chi2 = {chi2}");
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut a = FastHasher::default();
        a.write(b"hello world"); // 11 bytes: one full lane + 3-byte tail
        let mut b = FastHasher::default();
        b.write(b"hello worl!");
        assert_ne!(a.finish(), b.finish());
    }
}
