//! Records, schemas and group keys.
//!
//! A [`Record`] models one IP packet header: up to [`MAX_ATTRS`] 4-byte
//! attribute values (source IP, source port, ...) plus a timestamp used
//! for epoch assignment. A [`GroupKey`] is the projection of a record onto
//! an [`AttrSet`] — the unit stored in LFTA hash-table buckets.

use crate::attr::{AttrSet, MAX_ATTRS};
use crate::hash::FastHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Stream schema: names the attributes of the stream relation.
///
/// Purely descriptive — the execution path works with positional
/// attribute ids — but examples and reports use it to print meaningful
/// labels ("srcIP" instead of "A").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    names: Vec<String>,
}

impl Schema {
    /// Creates a schema from attribute names, positionally mapped to
    /// `A, B, C, ...`.
    ///
    /// # Panics
    /// Panics if more than [`MAX_ATTRS`] names are given.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Schema {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(
            names.len() <= MAX_ATTRS,
            "at most {MAX_ATTRS} attributes supported"
        );
        Schema { names }
    }

    /// The canonical four-attribute packet-header schema from the paper.
    pub fn packet_headers() -> Schema {
        Schema::new(["srcIP", "srcPort", "dstIP", "dstPort"])
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// Name of attribute `id`, if present.
    pub fn name(&self, id: u8) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// The full attribute set of this schema.
    pub fn all_attrs(&self) -> AttrSet {
        AttrSet::from_attrs(0..self.arity() as u8)
    }

    /// Renders an attribute set with schema names: `AB` → `srcIP,srcPort`.
    pub fn describe(&self, set: AttrSet) -> String {
        let mut out = String::new();
        for (i, a) in set.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match self.name(a) {
                Some(n) => out.push_str(n),
                None => out.push((b'A' + a) as char),
            }
        }
        out
    }
}

/// One stream tuple: attribute values plus a timestamp in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Record {
    /// Attribute values, positionally `A, B, C, ...`. Unused positions
    /// are zero.
    pub attrs: [u32; MAX_ATTRS],
    /// Arrival timestamp in microseconds since stream start.
    pub ts_micros: u64,
}

impl Record {
    /// Creates a record from a value slice (remaining attributes zeroed).
    ///
    /// # Panics
    /// Panics if more than [`MAX_ATTRS`] values are given.
    pub fn new(values: &[u32], ts_micros: u64) -> Record {
        assert!(values.len() <= MAX_ATTRS);
        let mut attrs = [0u32; MAX_ATTRS];
        attrs[..values.len()].copy_from_slice(values);
        Record { attrs, ts_micros }
    }

    /// Projects the record onto `set`, yielding the group key.
    #[inline]
    pub fn project(&self, set: AttrSet) -> GroupKey {
        let mut vals = [0u32; MAX_ATTRS];
        let mut len = 0u8;
        for a in set.iter() {
            if let (Some(dst), Some(&src)) =
                (vals.get_mut(len as usize), self.attrs.get(a as usize))
            {
                *dst = src;
                len += 1;
            }
        }
        GroupKey { vals, len }
    }
}

/// The projection of a record onto an attribute set: the paper's *group*.
///
/// Values are stored in ascending attribute-id order, so two records in
/// the same group always produce identical keys. The type is `Copy` and
/// allocation-free; equality and hashing consider only the live prefix.
#[derive(Clone, Copy)]
pub struct GroupKey {
    vals: [u32; MAX_ATTRS],
    len: u8,
}

impl GroupKey {
    /// Builds a key directly from values (ascending attribute order).
    pub fn from_values(values: &[u32]) -> GroupKey {
        assert!(values.len() <= MAX_ATTRS);
        let mut vals = [0u32; MAX_ATTRS];
        vals[..values.len()].copy_from_slice(values);
        GroupKey {
            vals,
            len: values.len() as u8,
        }
    }

    /// A key of `len` zeroed values, to be filled in place by the
    /// columnar projection in [`crate::chunk`].
    #[inline]
    pub(crate) fn zeroed(len: u8) -> GroupKey {
        GroupKey {
            vals: [0u32; MAX_ATTRS],
            len: len.min(MAX_ATTRS as u8),
        }
    }

    /// Writes value position `pos` (no-op out of range).
    #[inline]
    pub(crate) fn set_val(&mut self, pos: usize, v: u32) {
        if let Some(dst) = self.vals.get_mut(pos) {
            *dst = v;
        }
    }

    /// The live attribute values.
    #[inline]
    pub fn values(&self) -> &[u32] {
        &self.vals[..self.len as usize]
    }

    /// Number of attributes in the key.
    #[inline]
    pub fn arity(&self) -> usize {
        self.len as usize
    }

    /// Re-projects this key onto a *subset* of the attributes of the
    /// relation it was built for.
    ///
    /// `own` must be the attribute set this key was projected on and
    /// `target ⊆ own`; this is the feed path from a phantom table entry to
    /// a child table.
    #[inline]
    pub fn reproject(&self, own: AttrSet, target: AttrSet) -> GroupKey {
        debug_assert!(target.is_subset_of(own));
        debug_assert_eq!(own.len(), self.arity());
        let mut vals = [0u32; MAX_ATTRS];
        let mut out = 0u8;
        for (slot, a) in own.iter().enumerate() {
            if target.contains(a) {
                if let (Some(dst), Some(&src)) = (vals.get_mut(out as usize), self.vals.get(slot)) {
                    *dst = src;
                    out += 1;
                }
            }
        }
        GroupKey { vals, len: out }
    }

    /// Hashes the key with an explicit seed (used by LFTA tables so that
    /// different tables use independent hash functions).
    #[inline]
    pub fn hash_with_seed(&self, seed: u64) -> u64 {
        FastHasher::hash_words(seed, self.values())
    }
}

impl PartialEq for GroupKey {
    #[inline]
    fn eq(&self, other: &GroupKey) -> bool {
        self.values() == other.values()
    }
}

impl Eq for GroupKey {}

impl Hash for GroupKey {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.len);
        for &v in self.values() {
            state.write_u32(v);
        }
    }
}

impl fmt::Debug for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GroupKey{:?}", self.values())
    }
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vals: &[u32]) -> Record {
        Record::new(vals, 0)
    }

    #[test]
    fn projection_orders_by_attr_id() {
        let r = rec(&[10, 20, 30, 40]);
        let bd = AttrSet::parse("BD").unwrap();
        assert_eq!(r.project(bd).values(), &[20, 40]);
        let da = AttrSet::parse("AD").unwrap();
        assert_eq!(r.project(da).values(), &[10, 40]);
    }

    #[test]
    fn equal_groups_have_equal_keys() {
        let a = rec(&[1, 2, 3, 4]).project(AttrSet::parse("AC").unwrap());
        let b = rec(&[1, 9, 3, 7]).project(AttrSet::parse("AC").unwrap());
        assert_eq!(a, b);
        assert_eq!(a.hash_with_seed(5), b.hash_with_seed(5));
    }

    #[test]
    fn different_groups_differ() {
        let a = rec(&[1, 2, 3, 4]).project(AttrSet::parse("AB").unwrap());
        let b = rec(&[1, 3, 3, 4]).project(AttrSet::parse("AB").unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn reproject_matches_direct_projection() {
        let r = rec(&[11, 22, 33, 44]);
        let abcd = AttrSet::parse("ABCD").unwrap();
        let full = r.project(abcd);
        for target in ["A", "B", "BD", "ACD", "ABCD"] {
            let t = AttrSet::parse(target).unwrap();
            assert_eq!(full.reproject(abcd, t), r.project(t), "target {target}");
        }
    }

    #[test]
    fn reproject_from_partial_parent() {
        let r = rec(&[11, 22, 33, 44]);
        let bcd = AttrSet::parse("BCD").unwrap();
        let k = r.project(bcd);
        let bd = AttrSet::parse("BD").unwrap();
        assert_eq!(k.reproject(bcd, bd), r.project(bd));
    }

    #[test]
    fn arity_zero_key_is_consistent() {
        let k = GroupKey::from_values(&[]);
        assert_eq!(k.arity(), 0);
        assert_eq!(k, GroupKey::from_values(&[]));
    }

    #[test]
    fn schema_describe() {
        let s = Schema::packet_headers();
        assert_eq!(s.arity(), 4);
        assert_eq!(
            s.describe(AttrSet::parse("AC").unwrap()),
            "srcIP,dstIP".to_string()
        );
        assert_eq!(s.all_attrs(), AttrSet::parse("ABCD").unwrap());
    }

    #[test]
    fn display_forms() {
        let k = GroupKey::from_values(&[7, 8]);
        assert_eq!(k.to_string(), "(7,8)");
    }
}
