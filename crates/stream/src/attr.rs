//! Attribute identifiers and attribute-set bitmasks.
//!
//! The paper works with a stream relation `R(A, B, C, D, ...)` and names
//! every grouping-attribute subset by juxtaposition (`AB`, `BCD`, ...).
//! [`AttrSet`] encodes such a subset as a bitmask over at most
//! [`MAX_ATTRS`] attributes, which keeps subset/superset tests, unions and
//! iteration branch-free on the hot path.

use std::fmt;

/// Maximum number of grouping attributes supported by the workspace.
///
/// Eight is comfortably above the four attributes (source/destination
/// IP/port) used throughout the paper while keeping [`crate::GroupKey`]s
/// inside a single cache line.
pub const MAX_ATTRS: usize = 8;

/// Index of a single grouping attribute (0 = `A`, 1 = `B`, ...).
pub type AttrId = u8;

/// A set of grouping attributes — the paper's notion of a *relation*.
///
/// The bitmask representation makes the feeding-graph operations cheap:
/// `X` can feed `Y` iff `Y.is_subset_of(X)`.
///
/// ```
/// use msa_stream::AttrSet;
/// let ab = AttrSet::parse("AB").unwrap();
/// let abc = AttrSet::parse("ABC").unwrap();
/// assert!(ab.is_subset_of(abc));
/// assert_eq!(ab.union(AttrSet::parse("C").unwrap()), abc);
/// assert_eq!(abc.to_string(), "ABC");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrSet(u16);

/// Failure to parse an attribute-set name (see [`AttrSet::parse_checked`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrParseError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for AttrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid attribute set {:?}: expected one or more letters A..={}",
            self.input,
            (b'A' + MAX_ATTRS as u8 - 1) as char
        )
    }
}

impl std::error::Error for AttrParseError {}

impl AttrSet {
    /// The empty attribute set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// Creates a set from a raw bitmask.
    ///
    /// Bits above [`MAX_ATTRS`] are rejected.
    pub fn from_bits(bits: u16) -> Option<AttrSet> {
        if bits < (1 << MAX_ATTRS) {
            Some(AttrSet(bits))
        } else {
            None
        }
    }

    /// Returns the raw bitmask.
    #[inline]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Creates a singleton set containing only `attr`.
    #[inline]
    pub fn single(attr: AttrId) -> AttrSet {
        assert!(
            (attr as usize) < MAX_ATTRS,
            "attribute id {attr} out of range"
        );
        AttrSet(1 << attr)
    }

    /// Creates a set from an iterator of attribute ids.
    pub fn from_attrs<I: IntoIterator<Item = AttrId>>(attrs: I) -> AttrSet {
        attrs
            .into_iter()
            .fold(AttrSet::EMPTY, |s, a| s.union(AttrSet::single(a)))
    }

    /// Parses the paper's juxtaposition notation: `"ABD"` → `{A, B, D}`.
    ///
    /// Accepts upper-case letters `A..=H`; returns `None` on anything else
    /// or on an empty string.
    pub fn parse(s: &str) -> Option<AttrSet> {
        if s.is_empty() {
            return None;
        }
        let mut set = AttrSet::EMPTY;
        for ch in s.chars() {
            let idx = (ch as u32).checked_sub('A' as u32)?;
            if idx as usize >= MAX_ATTRS {
                return None;
            }
            set = set.union(AttrSet::single(idx as AttrId));
        }
        Some(set)
    }

    /// Like [`AttrSet::parse`] but returns a typed error naming the
    /// rejected input — for user-facing paths where `?` should propagate
    /// a useful message instead of panicking on `None`.
    pub fn parse_checked(s: &str) -> Result<AttrSet, AttrParseError> {
        AttrSet::parse(s).ok_or_else(|| AttrParseError {
            input: s.to_string(),
        })
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True iff the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True iff `attr` is a member.
    #[inline]
    pub fn contains(self, attr: AttrId) -> bool {
        (attr as usize) < MAX_ATTRS && self.0 & (1 << attr) != 0
    }

    /// Set union (the paper combines queries into phantom candidates by
    /// union).
    #[inline]
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// True iff `self ⊆ other`, i.e. a table on `other` can feed a table
    /// on `self`.
    #[inline]
    pub fn is_subset_of(self, other: AttrSet) -> bool {
        self.0 & other.0 == self.0
    }

    /// True iff `self ⊂ other` strictly.
    #[inline]
    pub fn is_proper_subset_of(self, other: AttrSet) -> bool {
        self.is_subset_of(other) && self != other
    }

    /// Iterates member attribute ids in ascending order.
    #[inline]
    pub fn iter(self) -> AttrIter {
        AttrIter(self.0)
    }

    /// The size of one hash-table bucket entry for this relation, in
    /// 4-byte space units: one word per attribute plus one counter word
    /// (paper §5.3: "a bucket for relation A takes 8 bytes and a bucket
    /// for ABCD takes 20 bytes").
    #[inline]
    pub fn entry_words(self) -> usize {
        self.len() + 1
    }
}

/// Iterator over the attribute ids of an [`AttrSet`].
#[derive(Clone, Debug)]
pub struct AttrIter(u16);

impl Iterator for AttrIter {
    type Item = AttrId;

    #[inline]
    fn next(&mut self) -> Option<AttrId> {
        if self.0 == 0 {
            None
        } else {
            let id = self.0.trailing_zeros() as AttrId;
            self.0 &= self.0 - 1;
            Some(id)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrIter {}

impl IntoIterator for AttrSet {
    type Item = AttrId;
    type IntoIter = AttrIter;

    fn into_iter(self) -> AttrIter {
        self.iter()
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        for a in self.iter() {
            write!(f, "{}", (b'A' + a) as char)?;
        }
        Ok(())
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttrSet({self})")
    }
}

/// Enumerates all non-empty subsets of `universe` (used when enumerating
/// feeding-graph nodes).
pub fn subsets_of(universe: AttrSet) -> impl Iterator<Item = AttrSet> {
    let full = universe.bits();
    // Standard sub-mask enumeration: walk `sub = (sub - 1) & full`.
    let mut sub = full;
    let mut done = false;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let cur = sub;
        if sub == 0 {
            done = true;
        } else {
            sub = (sub - 1) & full;
        }
        if cur == 0 {
            None
        } else {
            Some(AttrSet(cur))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["A", "AB", "ABCD", "BD", "ACDH"] {
            let set = AttrSet::parse(s).unwrap();
            assert_eq!(set.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_invalid() {
        assert!(AttrSet::parse("").is_none());
        assert!(AttrSet::parse("AZ").is_none());
        assert!(AttrSet::parse("ab").is_none());
        assert!(AttrSet::parse("A B").is_none());
    }

    #[test]
    fn parse_is_order_insensitive() {
        assert_eq!(AttrSet::parse("DBA"), AttrSet::parse("ABD"));
    }

    #[test]
    fn subset_relationships() {
        let ab = AttrSet::parse("AB").unwrap();
        let abc = AttrSet::parse("ABC").unwrap();
        let cd = AttrSet::parse("CD").unwrap();
        assert!(ab.is_subset_of(abc));
        assert!(ab.is_proper_subset_of(abc));
        assert!(!abc.is_subset_of(ab));
        assert!(abc.is_subset_of(abc));
        assert!(!abc.is_proper_subset_of(abc));
        assert!(!cd.is_subset_of(abc));
    }

    #[test]
    fn union_intersect_difference() {
        let ab = AttrSet::parse("AB").unwrap();
        let bc = AttrSet::parse("BC").unwrap();
        assert_eq!(ab.union(bc), AttrSet::parse("ABC").unwrap());
        assert_eq!(ab.intersect(bc), AttrSet::parse("B").unwrap());
        assert_eq!(ab.difference(bc), AttrSet::parse("A").unwrap());
    }

    #[test]
    fn iteration_ascending() {
        let set = AttrSet::parse("ACD").unwrap();
        let ids: Vec<AttrId> = set.iter().collect();
        assert_eq!(ids, vec![0, 2, 3]);
        assert_eq!(set.iter().len(), 3);
    }

    #[test]
    fn entry_words_match_paper() {
        // Paper §5.3: A → 8 bytes (2 words), ABCD → 20 bytes (5 words).
        assert_eq!(AttrSet::parse("A").unwrap().entry_words(), 2);
        assert_eq!(AttrSet::parse("ABCD").unwrap().entry_words(), 5);
    }

    #[test]
    fn subsets_enumeration() {
        let abc = AttrSet::parse("ABC").unwrap();
        let subs: Vec<AttrSet> = subsets_of(abc).collect();
        assert_eq!(subs.len(), 7); // 2^3 - 1 non-empty subsets
        assert!(subs.contains(&AttrSet::parse("AC").unwrap()));
        assert!(subs.iter().all(|s| s.is_subset_of(abc)));
    }

    #[test]
    fn from_attrs_builds_set() {
        let set = AttrSet::from_attrs([0u8, 3u8]);
        assert_eq!(set, AttrSet::parse("AD").unwrap());
    }

    #[test]
    fn parse_checked_reports_input() {
        assert_eq!(
            AttrSet::parse_checked("AB"),
            Ok(AttrSet::parse("AB").unwrap())
        );
        let err = AttrSet::parse_checked("A Z").unwrap_err();
        assert!(err.to_string().contains("A Z"), "{err}");
    }

    #[test]
    fn from_bits_bounds() {
        assert!(AttrSet::from_bits(0b1111).is_some());
        assert!(AttrSet::from_bits(1 << MAX_ATTRS).is_none());
    }
}
