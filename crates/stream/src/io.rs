//! Binary trace persistence.
//!
//! Captured or synthesized packet traces are expensive to regenerate;
//! this module stores them in a compact length-prefixed binary format
//! (magic + version + arity + record count, then per record a `u64`
//! timestamp and `arity` `u32` attribute values, all little-endian).
//! Encoding targets a plain `Vec<u8>` and decoding consumes a `&[u8]`
//! cursor, so the same routines work against files, network buffers or
//! in-memory tests without any external buffer crate.

use crate::attr::MAX_ATTRS;
use crate::gen::GeneratedStream;
use crate::record::Record;
use crate::store::{atomic_write, StoreError};
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// Format magic: `MAG1` (Multiple AGgregations, version tag separate).
const MAGIC: [u8; 4] = *b"MAG1";
/// Current format version.
const VERSION: u16 = 1;

/// Encoding/decoding failures.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure (read path).
    Io(std::io::Error),
    /// Typed storage failure from the atomic-write discipline (save
    /// path): the trace on disk is either the previous one or the new
    /// one, never a torn mixture.
    Store(StoreError),
    /// Bad magic bytes — not a trace file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Arity outside `1..=MAX_ATTRS`.
    BadArity(u8),
    /// Fewer bytes than the header promised.
    Truncated,
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::Store(e) => write!(f, "trace save failed: {e}"),
            TraceIoError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::BadArity(a) => write!(f, "invalid arity {a}"),
            TraceIoError::Truncated => write!(f, "trace file truncated"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> TraceIoError {
        TraceIoError::Io(e)
    }
}

impl From<StoreError> for TraceIoError {
    fn from(e: StoreError) -> TraceIoError {
        TraceIoError::Store(e)
    }
}

/// Takes `N` bytes off the front of the cursor, or fails as truncated.
fn take<'a, const N: usize>(cursor: &mut &'a [u8]) -> Result<&'a [u8; N], TraceIoError> {
    if cursor.len() < N {
        return Err(TraceIoError::Truncated);
    }
    let (head, rest) = cursor.split_at(N);
    *cursor = rest;
    head.try_into().map_err(|_| TraceIoError::Truncated)
}

fn take_u16_le(cursor: &mut &[u8]) -> Result<u16, TraceIoError> {
    Ok(u16::from_le_bytes(*take::<2>(cursor)?))
}

fn take_u32_le(cursor: &mut &[u8]) -> Result<u32, TraceIoError> {
    Ok(u32::from_le_bytes(*take::<4>(cursor)?))
}

fn take_u64_le(cursor: &mut &[u8]) -> Result<u64, TraceIoError> {
    Ok(u64::from_le_bytes(*take::<8>(cursor)?))
}

/// Encodes records into `buf`.
///
/// # Panics
/// Panics if `arity` is outside `1..=MAX_ATTRS`.
pub fn encode_records(records: &[Record], arity: usize, buf: &mut Vec<u8>) {
    assert!((1..=MAX_ATTRS).contains(&arity), "arity out of range");
    buf.reserve(4 + 2 + 1 + 8 + records.len() * (8 + 4 * arity));
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(arity as u8);
    buf.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in records {
        buf.extend_from_slice(&r.ts_micros.to_le_bytes());
        for i in 0..arity {
            buf.extend_from_slice(&r.attrs[i].to_le_bytes());
        }
    }
}

/// Decodes records from a byte cursor; the inverse of [`encode_records`].
/// On success the cursor is advanced past the decoded trace.
pub fn decode_records(cursor: &mut &[u8]) -> Result<(Vec<Record>, usize), TraceIoError> {
    if cursor.len() < 4 + 2 + 1 + 8 {
        return Err(TraceIoError::Truncated);
    }
    let magic = take::<4>(cursor)?;
    if *magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let version = take_u16_le(cursor)?;
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    let arity = take::<1>(cursor)?[0];
    if arity == 0 || arity as usize > MAX_ATTRS {
        return Err(TraceIoError::BadArity(arity));
    }
    let count = take_u64_le(cursor)? as usize;
    let record_bytes = 8 + 4 * arity as usize;
    if cursor.len() < count.saturating_mul(record_bytes) {
        return Err(TraceIoError::Truncated);
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let ts_micros = take_u64_le(cursor)?;
        let mut attrs = [0u32; MAX_ATTRS];
        for slot in attrs.iter_mut().take(arity as usize) {
            *slot = take_u32_le(cursor)?;
        }
        records.push(Record { attrs, ts_micros });
    }
    Ok((records, arity as usize))
}

/// Writes a stream to `path` through the crash-safe atomic-write
/// discipline ([`crate::store::atomic_write`]): temp sibling + fsync +
/// atomic rename + directory fsync. A crash mid-save leaves the
/// previous trace (or nothing), never a torn file.
pub fn write_trace<P: AsRef<Path>>(stream: &GeneratedStream, path: P) -> Result<(), TraceIoError> {
    let mut bytes = Vec::with_capacity(32 + stream.len() * (8 + 4 * stream.arity));
    encode_records(&stream.records, stream.arity, &mut bytes);
    atomic_write(path.as_ref(), &bytes)?;
    Ok(())
}

/// Reads a stream from `path`. The universe size is unknown after a
/// round trip and reported as the number of *observed* full-arity
/// groups.
pub fn read_trace<P: AsRef<Path>>(path: P) -> Result<GeneratedStream, TraceIoError> {
    let mut data = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut data)?;
    let mut buf = &data[..];
    let (records, arity) = decode_records(&mut buf)?;
    let universe = {
        let set = crate::attr::AttrSet::from_attrs(0..arity as u8);
        let mut seen = std::collections::HashSet::with_capacity_and_hasher(
            1024,
            crate::hash::FastState::default(),
        );
        for r in &records {
            seen.insert(r.project(set));
        }
        seen.len()
    };
    Ok(GeneratedStream {
        records,
        universe_groups: universe,
        arity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform::UniformStreamBuilder;

    #[test]
    fn roundtrip_in_memory() {
        let stream = UniformStreamBuilder::new(4, 50)
            .records(500)
            .seed(1)
            .build();
        let mut buf = Vec::new();
        encode_records(&stream.records, 4, &mut buf);
        let mut cursor = &buf[..];
        let (records, arity) = decode_records(&mut cursor).unwrap();
        assert_eq!(arity, 4);
        assert_eq!(records, stream.records);
        assert_eq!(cursor.len(), 0, "decoder must consume everything");
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("msa_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.bin");
        let stream = UniformStreamBuilder::new(3, 20)
            .records(200)
            .seed(2)
            .build();
        write_trace(&stream, &path).unwrap();
        let loaded = read_trace(&path).unwrap();
        assert_eq!(loaded.records, stream.records);
        assert_eq!(loaded.arity, 3);
        assert_eq!(loaded.universe_groups, 20);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(matches!(
            decode_records(&mut &b"XXXX"[..]),
            Err(TraceIoError::Truncated)
        ));
        assert!(matches!(
            decode_records(&mut &b"XXXXXXXXXXXXXXXXXXXX"[..]),
            Err(TraceIoError::BadMagic)
        ));
        // Valid header, missing body.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MAG1");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.push(4);
        buf.extend_from_slice(&1000u64.to_le_bytes()); // promises 1000 records, provides none
        assert!(matches!(
            decode_records(&mut &buf[..]),
            Err(TraceIoError::Truncated)
        ));
        // Bad version.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MAG1");
        buf.extend_from_slice(&9u16.to_le_bytes());
        buf.push(4);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode_records(&mut &buf[..]),
            Err(TraceIoError::BadVersion(9))
        ));
        // Bad arity.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MAG1");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.push(0);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode_records(&mut &buf[..]),
            Err(TraceIoError::BadArity(0))
        ));
    }

    #[test]
    fn empty_stream_roundtrips() {
        let mut buf = Vec::new();
        encode_records(&[], 2, &mut buf);
        let (records, arity) = decode_records(&mut &buf[..]).unwrap();
        assert!(records.is_empty());
        assert_eq!(arity, 2);
    }
}
