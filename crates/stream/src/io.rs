//! Binary trace persistence.
//!
//! Captured or synthesized packet traces are expensive to regenerate;
//! this module stores them in a compact length-prefixed binary format
//! (magic + version + arity + record count, then per record a `u64`
//! timestamp and `arity` `u32` attribute values, all little-endian).
//! Encoding goes through [`bytes::BufMut`] so the same routines work
//! against files, network buffers or in-memory tests.

use crate::attr::MAX_ATTRS;
use crate::gen::GeneratedStream;
use crate::record::Record;
use bytes::{Buf, BufMut};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Format magic: `MAG1` (Multiple AGgregations, version tag separate).
const MAGIC: [u8; 4] = *b"MAG1";
/// Current format version.
const VERSION: u16 = 1;

/// Encoding/decoding failures.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Bad magic bytes — not a trace file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Arity outside `1..=MAX_ATTRS`.
    BadArity(u8),
    /// Fewer bytes than the header promised.
    Truncated,
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::BadArity(a) => write!(f, "invalid arity {a}"),
            TraceIoError::Truncated => write!(f, "trace file truncated"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> TraceIoError {
        TraceIoError::Io(e)
    }
}

/// Encodes records into any [`BufMut`].
///
/// # Panics
/// Panics if `arity` is outside `1..=MAX_ATTRS`.
pub fn encode_records<B: BufMut>(records: &[Record], arity: usize, buf: &mut B) {
    assert!((1..=MAX_ATTRS).contains(&arity), "arity out of range");
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(arity as u8);
    buf.put_u64_le(records.len() as u64);
    for r in records {
        buf.put_u64_le(r.ts_micros);
        for i in 0..arity {
            buf.put_u32_le(r.attrs[i]);
        }
    }
}

/// Decodes records from any [`Buf`]; the inverse of [`encode_records`].
pub fn decode_records<B: Buf>(buf: &mut B) -> Result<(Vec<Record>, usize), TraceIoError> {
    if buf.remaining() < 4 + 2 + 1 + 8 {
        return Err(TraceIoError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    let arity = buf.get_u8();
    if arity == 0 || arity as usize > MAX_ATTRS {
        return Err(TraceIoError::BadArity(arity));
    }
    let count = buf.get_u64_le() as usize;
    let record_bytes = 8 + 4 * arity as usize;
    if buf.remaining() < count.saturating_mul(record_bytes) {
        return Err(TraceIoError::Truncated);
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let ts_micros = buf.get_u64_le();
        let mut attrs = [0u32; MAX_ATTRS];
        for slot in attrs.iter_mut().take(arity as usize) {
            *slot = buf.get_u32_le();
        }
        records.push(Record { attrs, ts_micros });
    }
    Ok((records, arity as usize))
}

/// Writes a stream to `path`.
pub fn write_trace<P: AsRef<Path>>(stream: &GeneratedStream, path: P) -> Result<(), TraceIoError> {
    let mut bytes = bytes::BytesMut::with_capacity(32 + stream.len() * (8 + 4 * stream.arity));
    encode_records(&stream.records, stream.arity, &mut bytes);
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(&bytes)?;
    out.flush()?;
    Ok(())
}

/// Reads a stream from `path`. The universe size is unknown after a
/// round trip and reported as the number of *observed* full-arity
/// groups.
pub fn read_trace<P: AsRef<Path>>(path: P) -> Result<GeneratedStream, TraceIoError> {
    let mut data = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut data)?;
    let mut buf = &data[..];
    let (records, arity) = decode_records(&mut buf)?;
    let universe = {
        let set = crate::attr::AttrSet::from_attrs(0..arity as u8);
        let mut seen = std::collections::HashSet::with_capacity_and_hasher(
            1024,
            crate::hash::FastState::default(),
        );
        for r in &records {
            seen.insert(r.project(set));
        }
        seen.len()
    };
    Ok(GeneratedStream {
        records,
        universe_groups: universe,
        arity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform::UniformStreamBuilder;

    #[test]
    fn roundtrip_in_memory() {
        let stream = UniformStreamBuilder::new(4, 50).records(500).seed(1).build();
        let mut buf = bytes::BytesMut::new();
        encode_records(&stream.records, 4, &mut buf);
        let mut cursor = &buf[..];
        let (records, arity) = decode_records(&mut cursor).unwrap();
        assert_eq!(arity, 4);
        assert_eq!(records, stream.records);
        assert_eq!(cursor.len(), 0, "decoder must consume everything");
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("msa_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.bin");
        let stream = UniformStreamBuilder::new(3, 20).records(200).seed(2).build();
        write_trace(&stream, &path).unwrap();
        let loaded = read_trace(&path).unwrap();
        assert_eq!(loaded.records, stream.records);
        assert_eq!(loaded.arity, 3);
        assert_eq!(loaded.universe_groups, 20);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(matches!(
            decode_records(&mut &b"XXXX"[..]),
            Err(TraceIoError::Truncated)
        ));
        assert!(matches!(
            decode_records(&mut &b"XXXXXXXXXXXXXXXXXXXX"[..]),
            Err(TraceIoError::BadMagic)
        ));
        // Valid header, missing body.
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(b"MAG1");
        buf.put_u16_le(1);
        buf.put_u8(4);
        buf.put_u64_le(1000); // promises 1000 records, provides none
        assert!(matches!(
            decode_records(&mut &buf[..]),
            Err(TraceIoError::Truncated)
        ));
        // Bad version.
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(b"MAG1");
        buf.put_u16_le(9);
        buf.put_u8(4);
        buf.put_u64_le(0);
        assert!(matches!(
            decode_records(&mut &buf[..]),
            Err(TraceIoError::BadVersion(9))
        ));
        // Bad arity.
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(b"MAG1");
        buf.put_u16_le(1);
        buf.put_u8(0);
        buf.put_u64_le(0);
        assert!(matches!(
            decode_records(&mut &buf[..]),
            Err(TraceIoError::BadArity(0))
        ));
    }

    #[test]
    fn empty_stream_roundtrips() {
        let mut buf = bytes::BytesMut::new();
        encode_records(&[], 2, &mut buf);
        let (records, arity) = decode_records(&mut &buf[..]).unwrap();
        assert!(records.is_empty());
        assert_eq!(arity, 2);
    }
}
