//! Record selection — the "Filter" in LFTA ("Filter, Transform,
//! Aggregate").
//!
//! Gigascope's low-level nodes "perform simple operations such as
//! selection, projection and aggregation" (§1). The aggregation and
//! projection parts live in the executor; this module supplies the
//! selection: conjunctions of attribute comparisons evaluated per
//! record before any hash-table probe, so filtered-out records cost
//! nothing downstream.

use crate::attr::{AttrId, MAX_ATTRS};
use crate::record::Record;
use std::fmt;

/// A comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `attr == value`
    Eq,
    /// `attr != value`
    Ne,
    /// `attr < value`
    Lt,
    /// `attr <= value`
    Le,
    /// `attr > value`
    Gt,
    /// `attr >= value`
    Ge,
}

impl CmpOp {
    #[inline]
    fn eval(self, lhs: u32, rhs: u32) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One conjunct: `attr op value`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttrPredicate {
    /// Attribute slot to test.
    pub attr: AttrId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant to compare against.
    pub value: u32,
}

impl AttrPredicate {
    /// Evaluates the predicate.
    #[inline]
    pub fn matches(&self, record: &Record) -> bool {
        let attr = record.attrs.get(self.attr as usize).copied().unwrap_or(0);
        self.op.eval(attr, self.value)
    }
}

/// A conjunction of attribute predicates (empty = pass everything).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Filter {
    conjuncts: Vec<AttrPredicate>,
}

impl Filter {
    /// The pass-all filter.
    pub fn all() -> Filter {
        Filter::default()
    }

    /// Adds a conjunct (builder style).
    ///
    /// # Panics
    /// Panics if `attr` is out of range.
    pub fn and(mut self, attr: AttrId, op: CmpOp, value: u32) -> Filter {
        assert!((attr as usize) < MAX_ATTRS, "attribute {attr} out of range");
        self.conjuncts.push(AttrPredicate { attr, op, value });
        self
    }

    /// True iff every conjunct holds.
    #[inline]
    pub fn matches(&self, record: &Record) -> bool {
        self.conjuncts.iter().all(|p| p.matches(record))
    }

    /// True iff the filter passes everything.
    pub fn is_pass_all(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// The conjuncts.
    pub fn conjuncts(&self) -> &[AttrPredicate] {
        &self.conjuncts
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "true");
        }
        for (i, p) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(
                f,
                "{} {} {}",
                (b'A' + p.attr) as char,
                p.op.symbol(),
                p.value
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vals: &[u32]) -> Record {
        Record::new(vals, 0)
    }

    #[test]
    fn pass_all_matches_everything() {
        assert!(Filter::all().matches(&rec(&[1, 2, 3])));
        assert!(Filter::all().is_pass_all());
    }

    #[test]
    fn single_conjunct_semantics() {
        let r = rec(&[10, 20]);
        assert!(Filter::all().and(0, CmpOp::Eq, 10).matches(&r));
        assert!(!Filter::all().and(0, CmpOp::Ne, 10).matches(&r));
        assert!(Filter::all().and(1, CmpOp::Gt, 19).matches(&r));
        assert!(!Filter::all().and(1, CmpOp::Gt, 20).matches(&r));
        assert!(Filter::all().and(1, CmpOp::Ge, 20).matches(&r));
        assert!(Filter::all().and(0, CmpOp::Lt, 11).matches(&r));
        assert!(Filter::all().and(0, CmpOp::Le, 10).matches(&r));
    }

    #[test]
    fn conjunction_is_and() {
        let f = Filter::all().and(0, CmpOp::Eq, 10).and(1, CmpOp::Lt, 100);
        assert!(f.matches(&rec(&[10, 50])));
        assert!(!f.matches(&rec(&[10, 100])));
        assert!(!f.matches(&rec(&[11, 50])));
        assert_eq!(f.conjuncts().len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let f = Filter::all().and(3, CmpOp::Eq, 80).and(0, CmpOp::Ge, 5);
        assert_eq!(f.to_string(), "D = 80 AND A >= 5");
        assert_eq!(Filter::all().to_string(), "true");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_attribute() {
        let _ = Filter::all().and(99, CmpOp::Eq, 1);
    }
}
