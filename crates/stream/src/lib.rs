//! Stream substrate for the `multi-agg` workspace.
//!
//! This crate provides everything "below" the aggregation machinery of the
//! SIGMOD 2005 paper *Multiple Aggregations Over Data Streams*:
//!
//! * [`Record`]s — fixed-arity tuples of 4-byte attribute values with a
//!   timestamp, modelling IP packet headers;
//! * [`AttrSet`] bitmasks naming grouping-attribute subsets (the paper's
//!   *relations* such as `AB`, `BCD`);
//! * [`GroupKey`]s — allocation-free projections of a record onto an
//!   attribute set;
//! * workload generators ([`gen`]): uniform and Zipf-skewed random tuples,
//!   clustered flow streams, and a packet-trace synthesizer calibrated to
//!   the statistics the paper reports for its real tcpdump dataset;
//! * record selection ([`filter`]) — the "F" of LFTA — and binary trace
//!   persistence ([`io`]);
//! * durable storage primitives ([`store`]): the atomic-write discipline
//!   every real file write routes through, plus a deterministic
//!   fault-injecting simulation backend for crash drills;
//! * dataset statistics ([`stats`]): group counts and average flow lengths
//!   per attribute set, the inputs of the paper's cost model.

#![deny(unsafe_code)]

pub mod attr;
pub mod chunk;
pub mod filter;
pub mod gen;
pub mod hash;
pub mod io;
pub mod prng;
pub mod record;
pub mod stats;
pub mod store;

pub use attr::{AttrId, AttrParseError, AttrSet, MAX_ATTRS};
pub use chunk::{RecordChunk, PROCESSING_WINDOW_SIZE};
pub use filter::{AttrPredicate, CmpOp, Filter};
pub use gen::{
    clustered::{ClusteredStreamBuilder, FlowLengthDistribution},
    trace::{PacketTraceBuilder, TraceProfile},
    uniform::UniformStreamBuilder,
    zipf::ZipfStreamBuilder,
};
pub use hash::{FastHasher, FastState};
pub use prng::SplitMix64;
pub use record::{GroupKey, Record, Schema};
pub use stats::DatasetStats;
pub use store::{
    atomic_write, DiskBackend, SimBackend, StorageBackend, StorageFaultPlan, StoreError,
    StoreErrorKind,
};
