//! Uniform random tuple streams (the paper's synthetic datasets).
//!
//! §6.1: "we generated 1,000,000 3 and 4 dimensional tuples uniformly at
//! random with the same number of groups as those encountered in real
//! data". We first materialise a universe of `groups` distinct tuples and
//! then draw records uniformly from it, which controls the full-arity
//! group count exactly.

use super::{spread_timestamps, GeneratedStream};
use crate::hash::{fast_set_with_capacity, FastSet};
use crate::prng::SplitMix64;
use crate::record::Record;
use crate::MAX_ATTRS;

/// Builder for uniform random streams.
///
/// ```
/// use msa_stream::UniformStreamBuilder;
/// let stream = UniformStreamBuilder::new(4, 2837)
///     .records(10_000)
///     .seed(42)
///     .build();
/// assert_eq!(stream.len(), 10_000);
/// assert_eq!(stream.arity, 4);
/// ```
#[derive(Clone, Debug)]
pub struct UniformStreamBuilder {
    arity: usize,
    groups: usize,
    records: usize,
    duration_secs: f64,
    seed: u64,
    attr_domains: Option<Vec<u32>>,
}

impl UniformStreamBuilder {
    /// Creates a builder for an `arity`-attribute stream drawn from a
    /// universe of `groups` distinct tuples.
    ///
    /// # Panics
    /// Panics if `arity` is 0 or exceeds [`MAX_ATTRS`], or `groups` is 0.
    pub fn new(arity: usize, groups: usize) -> UniformStreamBuilder {
        assert!((1..=MAX_ATTRS).contains(&arity), "arity out of range");
        assert!(groups >= 1, "need at least one group");
        UniformStreamBuilder {
            arity,
            groups,
            records: 1_000_000,
            duration_secs: 62.0,
            seed: 0,
            attr_domains: None,
        }
    }

    /// Number of records to generate (default 1,000,000, as in the paper).
    pub fn records(mut self, n: usize) -> Self {
        self.records = n;
        self
    }

    /// Stream duration used for timestamp assignment (default 62 s).
    pub fn duration_secs(mut self, d: f64) -> Self {
        self.duration_secs = d;
        self
    }

    /// RNG seed (streams are fully deterministic given the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Restricts each attribute `i` to values in `[0, domains[i])`.
    ///
    /// This indirectly controls the group counts of *projections*: with a
    /// small domain on `B`, relation `B` has few groups even when the
    /// full-arity universe is large.
    ///
    /// # Panics
    /// Panics if `domains.len()` differs from the arity or the universe
    /// cannot fit (`groups > Π domains[i]`).
    pub fn attr_domains(mut self, domains: Vec<u32>) -> Self {
        assert_eq!(domains.len(), self.arity);
        let capacity: u128 = domains.iter().map(|&d| d as u128).product();
        assert!(
            (self.groups as u128) <= capacity,
            "universe of {} groups cannot fit in domain capacity {capacity}",
            self.groups
        );
        self.attr_domains = Some(domains);
        self
    }

    /// Generates the universe of distinct tuples.
    fn universe(&self, rng: &mut SplitMix64) -> Vec<[u32; MAX_ATTRS]> {
        let mut seen: FastSet<[u32; MAX_ATTRS]> = fast_set_with_capacity(self.groups * 2);
        let mut universe = Vec::with_capacity(self.groups);
        while universe.len() < self.groups {
            let mut tuple = [0u32; MAX_ATTRS];
            for (i, slot) in tuple.iter_mut().take(self.arity).enumerate() {
                *slot = match &self.attr_domains {
                    Some(domains) => rng.gen_u32_below(domains[i]),
                    None => rng.next_u32(),
                };
            }
            if seen.insert(tuple) {
                universe.push(tuple);
            }
        }
        universe
    }

    /// Generates the stream.
    pub fn build(&self) -> GeneratedStream {
        let mut rng = SplitMix64::new(self.seed);
        let universe = self.universe(&mut rng);
        let mut records = Vec::with_capacity(self.records);
        for _ in 0..self.records {
            let attrs = universe[rng.gen_index(universe.len())];
            records.push(Record {
                attrs,
                ts_micros: 0,
            });
        }
        spread_timestamps(&mut records, self.duration_secs);
        GeneratedStream {
            records,
            universe_groups: self.groups,
            arity: self.arity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::stats::DatasetStats;

    #[test]
    fn produces_requested_record_count() {
        let s = UniformStreamBuilder::new(3, 100).records(5000).build();
        assert_eq!(s.len(), 5000);
    }

    #[test]
    fn observed_group_count_converges_to_universe() {
        // With 50 groups and 50_000 uniform draws, all groups appear
        // with probability ~1.
        let s = UniformStreamBuilder::new(4, 50)
            .records(50_000)
            .seed(1)
            .build();
        let stats = DatasetStats::compute(&s.records, AttrSet::parse("ABCD").unwrap());
        assert_eq!(stats.groups(AttrSet::parse("ABCD").unwrap()), 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = UniformStreamBuilder::new(2, 10)
            .records(100)
            .seed(9)
            .build();
        let b = UniformStreamBuilder::new(2, 10)
            .records(100)
            .seed(9)
            .build();
        assert_eq!(a.records, b.records);
        let c = UniformStreamBuilder::new(2, 10)
            .records(100)
            .seed(10)
            .build();
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn domains_bound_projection_cardinality() {
        let s = UniformStreamBuilder::new(3, 200)
            .records(20_000)
            .attr_domains(vec![10, 50, 1000])
            .seed(3)
            .build();
        let stats = DatasetStats::compute(&s.records, AttrSet::parse("ABC").unwrap());
        assert!(stats.groups(AttrSet::parse("A").unwrap()) <= 10);
        assert!(stats.groups(AttrSet::parse("B").unwrap()) <= 50);
    }

    #[test]
    fn timestamps_are_monotone_and_span_duration() {
        let s = UniformStreamBuilder::new(2, 5)
            .records(1000)
            .duration_secs(10.0)
            .build();
        assert!(s
            .records
            .windows(2)
            .all(|w| w[0].ts_micros <= w[1].ts_micros));
        assert!(s.records.last().unwrap().ts_micros < 10_000_000);
        assert!(s.records.last().unwrap().ts_micros > 9_000_000);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn rejects_impossible_universe() {
        let _ = UniformStreamBuilder::new(2, 100).attr_domains(vec![5, 5]);
    }
}
