//! Synthetic packet trace calibrated to the paper's real dataset.
//!
//! §6.1 describes the real data: a tcpdump of TCP headers with 860,000
//! records over 62 seconds, attributes (srcIP, dstIP, srcPort, dstPort),
//! 2,837 groups in the 4-attribute relation and 552–2,836 groups in the
//! projections (552 / 1,846 / 2,117 / 2,837 for the extracted 1–4
//! attribute datasets), with strong flow clusteredness. The trace itself
//! is proprietary; this module synthesises a stream matching those
//! statistics (see DESIGN.md §4 for the substitution argument).
//!
//! Construction: a hierarchy `A → AB → ABC → ABCD` is grown to hit the
//! four prefix group counts *exactly*; attribute values for `B`, `C`, `D`
//! are drawn from bounded realistic pools (ports, service addresses) so
//! non-prefix projections get plausible cardinalities; each leaf group
//! carries Pareto-length flows interleaved through a bounded active
//! window.

use super::clustered::{interleave_flows, FlowLengthDistribution};
use super::{spread_timestamps, GeneratedStream};
use crate::hash::{fast_set_with_capacity, FastSet};
use crate::prng::SplitMix64;
use crate::record::Record;
use crate::MAX_ATTRS;

/// Calibration targets for the synthetic trace.
#[derive(Clone, Debug)]
pub struct TraceProfile {
    /// Total packet count.
    pub records: usize,
    /// Trace duration in seconds.
    pub duration_secs: f64,
    /// Exact group counts for the nested prefixes `A`, `AB`, `ABC`,
    /// `ABCD` (must be non-decreasing).
    pub prefix_groups: [usize; 4],
    /// Value-pool sizes for attributes `B`, `C`, `D` (attribute `A` gets
    /// `prefix_groups[0]` unique values). Controls the cardinality of
    /// non-prefix projections.
    pub value_pools: [usize; 3],
    /// Flow length distribution.
    pub flow_lengths: FlowLengthDistribution,
    /// Average flows per leaf group.
    pub flows_per_group: usize,
    /// Concurrently active flows.
    pub active_flows: usize,
}

impl TraceProfile {
    /// The calibration from the paper's §6.1.
    pub fn paper() -> TraceProfile {
        TraceProfile {
            records: 860_000,
            duration_secs: 62.0,
            prefix_groups: [552, 1846, 2117, 2837],
            value_pools: [420, 700, 160],
            flow_lengths: FlowLengthDistribution::Pareto { alpha: 1.5, min: 8 },
            flows_per_group: 6,
            active_flows: 48,
        }
    }

    /// A proportionally scaled-down profile for fast tests: `fraction` of
    /// the records and groups (at least 4 groups per level).
    pub fn paper_scaled(fraction: f64) -> TraceProfile {
        let p = TraceProfile::paper();
        let scale = |n: usize| ((n as f64 * fraction).round() as usize).max(4);
        TraceProfile {
            records: scale(p.records),
            prefix_groups: [
                scale(p.prefix_groups[0]),
                scale(p.prefix_groups[1]),
                scale(p.prefix_groups[2]),
                scale(p.prefix_groups[3]),
            ],
            value_pools: [
                scale(p.value_pools[0]),
                scale(p.value_pools[1]),
                scale(p.value_pools[2]),
            ],
            ..p
        }
    }
}

/// Builder producing the calibrated trace.
///
/// ```
/// use msa_stream::{PacketTraceBuilder, TraceProfile};
/// let trace = PacketTraceBuilder::new(TraceProfile::paper_scaled(0.01))
///     .seed(7)
///     .build();
/// assert!(trace.len() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct PacketTraceBuilder {
    profile: TraceProfile,
    seed: u64,
}

/// A leaf of the group hierarchy: one distinct `(A,B,C,D)` tuple.
#[derive(Clone, Copy)]
struct Leaf {
    attrs: [u32; MAX_ATTRS],
}

impl PacketTraceBuilder {
    /// Creates a builder with the given calibration profile.
    pub fn new(profile: TraceProfile) -> PacketTraceBuilder {
        let g = &profile.prefix_groups;
        assert!(
            g[0] >= 1 && g[0] <= g[1] && g[1] <= g[2] && g[2] <= g[3],
            "prefix group counts must be non-decreasing and positive"
        );
        PacketTraceBuilder { profile, seed: 0 }
    }

    /// RNG seed (the trace is deterministic given the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Grows one hierarchy level: every parent keeps at least one child;
    /// `target` total children are distributed over the parents; child
    /// values at attribute position `pos` are drawn from `pool` without
    /// collision inside a parent.
    fn grow_level(
        parents: &[[u32; MAX_ATTRS]],
        target: usize,
        pos: usize,
        pool: usize,
        rng: &mut SplitMix64,
    ) -> Vec<[u32; MAX_ATTRS]> {
        assert!(target >= parents.len(), "level target below parent count");
        let mut children: Vec<[u32; MAX_ATTRS]> = Vec::with_capacity(target);
        let mut used: FastSet<(usize, u32)> = fast_set_with_capacity(target * 2);
        // One child per parent first, then spread the surplus uniformly.
        let mut counts = vec![1usize; parents.len()];
        for _ in 0..(target - parents.len()) {
            counts[rng.gen_index(parents.len())] += 1;
        }
        for (pi, (&parent, &n)) in parents.iter().zip(&counts).enumerate() {
            for _ in 0..n {
                // Rejection-sample a pool value unused under this parent;
                // fall back to a fresh high value if the pool saturates.
                let mut val = rng.gen_u32_below(pool as u32);
                let mut tries = 0;
                while used.contains(&(pi, val)) {
                    tries += 1;
                    if tries > 4 * pool {
                        val = pool as u32 + rng.gen_u32_below(u32::MAX / 2);
                        if !used.contains(&(pi, val)) {
                            break;
                        }
                    } else {
                        val = rng.gen_u32_below(pool as u32);
                    }
                }
                used.insert((pi, val));
                let mut child = parent;
                child[pos] = val;
                children.push(child);
            }
        }
        children
    }

    /// Generates the group hierarchy and the (shuffled) flow population:
    /// one `(group, length)` per flow.
    fn flow_population(&self, rng: &mut SplitMix64) -> Vec<([u32; MAX_ATTRS], usize)> {
        let p = &self.profile;
        // Level 1: distinct srcIP values.
        let mut srcs: FastSet<u32> = fast_set_with_capacity(p.prefix_groups[0] * 2);
        while srcs.len() < p.prefix_groups[0] {
            srcs.insert(rng.next_u32());
        }
        // Sort into a canonical order; set iteration order is an
        // implementation detail even with the seeded hasher.
        let mut srcs: Vec<u32> = srcs.into_iter().collect();
        srcs.sort_unstable();
        let level1: Vec<[u32; MAX_ATTRS]> = srcs
            .into_iter()
            .map(|a| {
                let mut t = [0u32; MAX_ATTRS];
                t[0] = a;
                t
            })
            .collect();

        let level2 = Self::grow_level(&level1, p.prefix_groups[1], 1, p.value_pools[0], rng);
        let level3 = Self::grow_level(&level2, p.prefix_groups[2], 2, p.value_pools[1], rng);
        let level4 = Self::grow_level(&level3, p.prefix_groups[3], 3, p.value_pools[2], rng);
        let leaves: Vec<Leaf> = level4.into_iter().map(|attrs| Leaf { attrs }).collect();

        // Flow population over the leaves: every group gets one flow so
        // the whole universe is reachable, plus extras at random.
        let mut flows = Vec::new();
        for leaf in &leaves {
            flows.push((leaf.attrs, p.flow_lengths.sample(rng)));
        }
        let extra = leaves.len() * p.flows_per_group.saturating_sub(1);
        for _ in 0..extra {
            let leaf = leaves[rng.gen_index(leaves.len())];
            flows.push((leaf.attrs, p.flow_lengths.sample(rng)));
        }
        rng.shuffle(&mut flows);
        flows
    }

    /// Generates the trace.
    pub fn build(&self) -> GeneratedStream {
        let p = &self.profile;
        let mut rng = SplitMix64::new(self.seed);
        let population = self.flow_population(&mut rng);
        let universe: Vec<[u32; MAX_ATTRS]> = {
            let mut seen = FastSet::default();
            population
                .iter()
                .filter(|(attrs, _)| seen.insert(*attrs))
                .map(|(attrs, _)| *attrs)
                .collect()
        };
        let flows: Vec<super::clustered::Flow> = population
            .into_iter()
            .map(|(attrs, len)| super::clustered::Flow::new(attrs, len))
            .collect();
        let mut records = interleave_flows(
            flows,
            p.records,
            p.active_flows,
            &p.flow_lengths,
            &universe,
            &mut rng,
        );
        spread_timestamps(&mut records, p.duration_secs);
        GeneratedStream {
            records,
            universe_groups: universe.len(),
            arity: 4,
        }
    }

    /// Builds the *de-clustered* dataset the paper uses to validate the
    /// collision-rate model (§4.2): "we grouped all packets of a flow
    /// into a single record" — one record per flow, in the flows'
    /// (shuffled) arrival order, so no temporal locality remains.
    pub fn build_declustered(&self) -> GeneratedStream {
        let p = &self.profile;
        let mut rng = SplitMix64::new(self.seed);
        let population = self.flow_population(&mut rng);
        let groups = {
            let mut seen = FastSet::default();
            population
                .iter()
                .filter(|(attrs, _)| seen.insert(*attrs))
                .count()
        };
        let mut records: Vec<Record> = population
            .into_iter()
            .map(|(attrs, _)| Record {
                attrs,
                ts_micros: 0,
            })
            .collect();
        spread_timestamps(&mut records, p.duration_secs);
        GeneratedStream {
            universe_groups: groups,
            arity: 4,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::stats::DatasetStats;

    fn small_profile() -> TraceProfile {
        TraceProfile {
            records: 30_000,
            duration_secs: 10.0,
            prefix_groups: [50, 160, 200, 260],
            value_pools: [40, 60, 16],
            flow_lengths: FlowLengthDistribution::Pareto { alpha: 1.6, min: 4 },
            flows_per_group: 4,
            active_flows: 16,
        }
    }

    #[test]
    fn prefix_group_counts_hit_targets() {
        let trace = PacketTraceBuilder::new(small_profile()).seed(1).build();
        let stats = DatasetStats::compute(&trace.records, AttrSet::parse("ABCD").unwrap());
        // With flows_per_group*records comfortably above the universe size
        // every group appears, so observed counts equal the targets.
        assert_eq!(stats.groups(AttrSet::parse("A").unwrap()), 50);
        assert_eq!(stats.groups(AttrSet::parse("AB").unwrap()), 160);
        assert_eq!(stats.groups(AttrSet::parse("ABC").unwrap()), 200);
        assert_eq!(stats.groups(AttrSet::parse("ABCD").unwrap()), 260);
    }

    #[test]
    fn non_prefix_projections_bounded_by_pools() {
        let trace = PacketTraceBuilder::new(small_profile()).seed(2).build();
        let stats = DatasetStats::compute(&trace.records, AttrSet::parse("ABCD").unwrap());
        assert!(stats.groups(AttrSet::parse("B").unwrap()) <= 40);
        assert!(stats.groups(AttrSet::parse("C").unwrap()) <= 60);
        assert!(stats.groups(AttrSet::parse("D").unwrap()) <= 16);
    }

    #[test]
    fn trace_is_clustered() {
        let trace = PacketTraceBuilder::new(small_profile()).seed(3).build();
        let abcd = AttrSet::parse("ABCD").unwrap();
        let stats = DatasetStats::compute(&trace.records, abcd);
        // Average run length well above 1 indicates clusteredness.
        assert!(
            stats.flow_length(abcd) > 2.0,
            "flow length {}",
            stats.flow_length(abcd)
        );
    }

    #[test]
    fn declustered_is_one_record_per_flow() {
        let b = PacketTraceBuilder::new(small_profile()).seed(4);
        let full = b.build();
        let flat = b.build_declustered();
        // 260 groups x 4 flows/group = 1040 flow records.
        assert_eq!(flat.len(), 260 * 4);
        assert!(flat.len() < full.len() / 2);
        let abcd = AttrSet::parse("ABCD").unwrap();
        let s = DatasetStats::compute(&flat.records, abcd);
        // Still the whole universe...
        assert_eq!(s.groups(abcd), 260);
        // ...but (nearly) no clusteredness left.
        assert!(
            s.flow_length(abcd) < 1.2,
            "flow length {}",
            s.flow_length(abcd)
        );
    }

    #[test]
    fn paper_profile_shape() {
        let p = TraceProfile::paper();
        assert_eq!(p.records, 860_000);
        assert_eq!(p.prefix_groups, [552, 1846, 2117, 2837]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = PacketTraceBuilder::new(small_profile()).seed(9).build();
        let b = PacketTraceBuilder::new(small_profile()).seed(9).build();
        assert_eq!(a.records, b.records);
    }
}
