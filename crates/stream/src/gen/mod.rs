//! Workload generators.
//!
//! The paper evaluates on two kinds of data:
//!
//! * synthetic tuples "generated uniformly at random with the same number
//!   of groups as those encountered in real data" ([`uniform`], plus a
//!   Zipf-skewed variant in [`zipf`] used for ablations);
//! * a real tcpdump packet trace with strong *flow clusteredness*. The
//!   trace itself is proprietary, so [`trace`] synthesises a stream that
//!   matches every statistic the paper reports about it, on top of the
//!   generic clustered-stream machinery in [`clustered`].

pub mod clustered;
pub mod trace;
pub mod uniform;
pub mod zipf;

use crate::record::Record;

/// A finite generated stream together with the universe of distinct
/// groups it was drawn from.
#[derive(Clone, Debug)]
pub struct GeneratedStream {
    /// The records in arrival order.
    pub records: Vec<Record>,
    /// Number of distinct full-arity groups in the universe the stream
    /// was drawn from (every universe group is guaranteed to appear at
    /// least zero times; use [`crate::stats::DatasetStats`] for observed
    /// counts).
    pub universe_groups: usize,
    /// Stream arity (number of live attributes per record).
    pub arity: usize,
}

impl GeneratedStream {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Assigns evenly spaced timestamps across `duration_secs` to `records`.
pub(crate) fn spread_timestamps(records: &mut [Record], duration_secs: f64) {
    let n = records.len();
    if n == 0 {
        return;
    }
    let step = duration_secs * 1e6 / n as f64;
    for (i, r) in records.iter_mut().enumerate() {
        r.ts_micros = (i as f64 * step) as u64;
    }
}
