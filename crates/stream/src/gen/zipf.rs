//! Zipf-skewed tuple streams.
//!
//! The paper evaluates on uniform and clustered data only; skew is a
//! natural ablation (real traffic is heavy-tailed per group even after
//! de-clustering), so this generator draws records from the same
//! materialised universe as [`super::uniform`] but with Zipf(s) rank
//! frequencies.

use super::{spread_timestamps, GeneratedStream};
use crate::hash::{fast_set_with_capacity, FastSet};
use crate::prng::SplitMix64;
use crate::record::Record;
use crate::MAX_ATTRS;

/// Builder for Zipf-distributed streams over a fixed group universe.
///
/// ```
/// use msa_stream::ZipfStreamBuilder;
/// let s = ZipfStreamBuilder::new(4, 500, 1.1).records(10_000).build();
/// assert_eq!(s.len(), 10_000);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfStreamBuilder {
    arity: usize,
    groups: usize,
    exponent: f64,
    records: usize,
    duration_secs: f64,
    seed: u64,
}

impl ZipfStreamBuilder {
    /// Creates a builder: `arity` attributes, `groups` distinct tuples,
    /// Zipf `exponent` (0 = uniform; 1–2 = realistic skew).
    ///
    /// # Panics
    /// Panics on zero/excess arity, zero groups or negative exponent.
    pub fn new(arity: usize, groups: usize, exponent: f64) -> ZipfStreamBuilder {
        assert!((1..=MAX_ATTRS).contains(&arity));
        assert!(groups >= 1);
        assert!(exponent >= 0.0 && exponent.is_finite());
        ZipfStreamBuilder {
            arity,
            groups,
            exponent,
            records: 1_000_000,
            duration_secs: 62.0,
            seed: 0,
        }
    }

    /// Number of records (default 1,000,000).
    pub fn records(mut self, n: usize) -> Self {
        self.records = n;
        self
    }

    /// Timestamp span (default 62 s).
    pub fn duration_secs(mut self, d: f64) -> Self {
        self.duration_secs = d;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the stream.
    pub fn build(&self) -> GeneratedStream {
        let mut rng = SplitMix64::new(self.seed);
        // Materialise the universe (random-valued distinct tuples).
        let mut seen: FastSet<[u32; MAX_ATTRS]> = fast_set_with_capacity(self.groups * 2);
        let mut universe = Vec::with_capacity(self.groups);
        while universe.len() < self.groups {
            let mut tuple = [0u32; MAX_ATTRS];
            for slot in tuple.iter_mut().take(self.arity) {
                *slot = rng.next_u32();
            }
            if seen.insert(tuple) {
                universe.push(tuple);
            }
        }
        // Shuffle so that rank order is independent of generation order.
        rng.shuffle(&mut universe);

        // Cumulative Zipf weights + binary-search sampling.
        let mut cum = Vec::with_capacity(self.groups);
        let mut total = 0.0f64;
        for rank in 1..=self.groups {
            total += 1.0 / (rank as f64).powf(self.exponent);
            cum.push(total);
        }
        let mut records = Vec::with_capacity(self.records);
        for _ in 0..self.records {
            let u: f64 = rng.gen_range_f64(0.0, total);
            let idx = cum.partition_point(|&c| c <= u);
            records.push(Record {
                attrs: universe[idx.min(self.groups - 1)],
                ts_micros: 0,
            });
        }
        spread_timestamps(&mut records, self.duration_secs);
        GeneratedStream {
            records,
            universe_groups: self.groups,
            arity: self.arity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::stats::DatasetStats;

    #[test]
    fn zero_exponent_is_uniform_like() {
        let s = ZipfStreamBuilder::new(2, 20, 0.0)
            .records(40_000)
            .seed(4)
            .build();
        let stats = DatasetStats::compute(&s.records, AttrSet::parse("AB").unwrap());
        assert_eq!(stats.groups(AttrSet::parse("AB").unwrap()), 20);
    }

    #[test]
    fn high_skew_concentrates_mass() {
        let s = ZipfStreamBuilder::new(2, 1000, 2.0)
            .records(50_000)
            .seed(7)
            .build();
        // Count the most frequent full group.
        let mut counts = std::collections::HashMap::new();
        let ab = AttrSet::parse("AB").unwrap();
        for r in &s.records {
            *counts.entry(r.project(ab)).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        // Under Zipf(2) the top group holds ~ 1/zeta(2) ≈ 61% of mass.
        assert!(max > s.len() / 2, "top group only {max} of {}", s.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ZipfStreamBuilder::new(3, 50, 1.0)
            .records(500)
            .seed(1)
            .build();
        let b = ZipfStreamBuilder::new(3, 50, 1.0)
            .records(500)
            .seed(1)
            .build();
        assert_eq!(a.records, b.records);
    }
}
