//! Clustered (flow-structured) streams.
//!
//! §4.3: network packet data is *clustered* — all packets of a flow share
//! the same attribute values, and "although packets from different flows
//! are interleaved with each other in the stream, the likelihood of these
//! interleaved flows hashing to the same bucket is very small". This
//! module generates such streams: a universe of groups, each group
//! carrying one or more flows, flow lengths drawn from a configurable
//! distribution, and a bounded number of concurrently active flows whose
//! packets interleave.

use super::{spread_timestamps, GeneratedStream};
use crate::hash::{fast_set_with_capacity, FastSet};
use crate::prng::SplitMix64;
use crate::record::Record;
use crate::MAX_ATTRS;

/// Distribution of flow lengths (packets per flow).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlowLengthDistribution {
    /// Every flow has exactly `len` packets.
    Constant {
        /// Packets per flow.
        len: usize,
    },
    /// Discretised Pareto: `len = ceil(min / U^(1/alpha))`, the classic
    /// heavy-tailed model for IP flow sizes.
    Pareto {
        /// Shape parameter (1.1–2.0 realistic; smaller = heavier tail).
        alpha: f64,
        /// Minimum flow length.
        min: usize,
    },
    /// Geometric with success probability `p`: mean `1/p`.
    Geometric {
        /// Per-packet termination probability.
        p: f64,
    },
}

impl FlowLengthDistribution {
    /// Samples one flow length (≥ 1).
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        match *self {
            FlowLengthDistribution::Constant { len } => len.max(1),
            FlowLengthDistribution::Pareto { alpha, min } => {
                let u: f64 = rng.gen_f64_open();
                let x = min.max(1) as f64 / u.powf(1.0 / alpha);
                // Cap to keep a single flow from swallowing the stream.
                (x.ceil() as usize).min(1 << 20)
            }
            FlowLengthDistribution::Geometric { p } => {
                let p = p.clamp(1e-9, 1.0);
                let u: f64 = rng.gen_f64_open();
                ((u.ln() / (1.0 - p).max(1e-12).ln()).floor() as usize) + 1
            }
        }
    }

    /// Expected flow length (used to size flow populations).
    pub fn mean(&self) -> f64 {
        match *self {
            FlowLengthDistribution::Constant { len } => len.max(1) as f64,
            FlowLengthDistribution::Pareto { alpha, min } => {
                if alpha > 1.0 {
                    alpha * min.max(1) as f64 / (alpha - 1.0)
                } else {
                    // Infinite-mean regime; report the capped empirical scale.
                    min.max(1) as f64 * 20.0
                }
            }
            FlowLengthDistribution::Geometric { p } => 1.0 / p.clamp(1e-9, 1.0),
        }
    }
}

/// One pending flow: a group tuple plus a packet budget.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Flow {
    attrs: [u32; MAX_ATTRS],
    remaining: usize,
}

impl Flow {
    /// Creates a flow of `len` (≥ 1) packets on group `attrs`.
    pub(crate) fn new(attrs: [u32; MAX_ATTRS], len: usize) -> Flow {
        Flow {
            attrs,
            remaining: len.max(1),
        }
    }
}

/// Builder for clustered streams.
///
/// ```
/// use msa_stream::{ClusteredStreamBuilder, FlowLengthDistribution};
/// let s = ClusteredStreamBuilder::new(4, 200)
///     .records(20_000)
///     .flow_lengths(FlowLengthDistribution::Pareto { alpha: 1.5, min: 4 })
///     .build();
/// assert_eq!(s.len(), 20_000);
/// ```
#[derive(Clone, Debug)]
pub struct ClusteredStreamBuilder {
    arity: usize,
    groups: usize,
    records: usize,
    duration_secs: f64,
    flow_lengths: FlowLengthDistribution,
    flows_per_group: usize,
    active_flows: usize,
    seed: u64,
}

impl ClusteredStreamBuilder {
    /// Creates a builder for an `arity`-attribute stream over `groups`
    /// distinct groups.
    pub fn new(arity: usize, groups: usize) -> ClusteredStreamBuilder {
        assert!((1..=MAX_ATTRS).contains(&arity));
        assert!(groups >= 1);
        ClusteredStreamBuilder {
            arity,
            groups,
            records: 1_000_000,
            duration_secs: 62.0,
            flow_lengths: FlowLengthDistribution::Pareto { alpha: 1.5, min: 4 },
            flows_per_group: 4,
            active_flows: 32,
            seed: 0,
        }
    }

    /// Number of records (default 1,000,000).
    pub fn records(mut self, n: usize) -> Self {
        self.records = n;
        self
    }

    /// Timestamp span (default 62 s).
    pub fn duration_secs(mut self, d: f64) -> Self {
        self.duration_secs = d;
        self
    }

    /// Flow-length distribution.
    pub fn flow_lengths(mut self, d: FlowLengthDistribution) -> Self {
        self.flow_lengths = d;
        self
    }

    /// Average number of flows per group (default 4).
    pub fn flows_per_group(mut self, n: usize) -> Self {
        self.flows_per_group = n.max(1);
        self
    }

    /// Number of concurrently active (interleaving) flows (default 32).
    /// 1 means perfectly contiguous flows.
    pub fn active_flows(mut self, n: usize) -> Self {
        self.active_flows = n.max(1);
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the stream.
    pub fn build(&self) -> GeneratedStream {
        let mut rng = SplitMix64::new(self.seed);
        // Universe of distinct group tuples.
        let mut seen: FastSet<[u32; MAX_ATTRS]> = fast_set_with_capacity(self.groups * 2);
        let mut universe = Vec::with_capacity(self.groups);
        while universe.len() < self.groups {
            let mut tuple = [0u32; MAX_ATTRS];
            for slot in tuple.iter_mut().take(self.arity) {
                *slot = rng.next_u32();
            }
            if seen.insert(tuple) {
                universe.push(tuple);
            }
        }

        // Flow population: every group gets at least one flow so the
        // whole universe is reachable, then extra flows at random.
        let mut flows: Vec<Flow> = Vec::new();
        for &attrs in &universe {
            flows.push(Flow {
                attrs,
                remaining: self.flow_lengths.sample(&mut rng),
            });
        }
        let extra = self.groups * (self.flows_per_group.saturating_sub(1));
        for _ in 0..extra {
            let attrs = universe[rng.gen_index(universe.len())];
            flows.push(Flow {
                attrs,
                remaining: self.flow_lengths.sample(&mut rng),
            });
        }
        rng.shuffle(&mut flows);

        let records = interleave_flows(
            flows,
            self.records,
            self.active_flows,
            &self.flow_lengths,
            &universe,
            &mut rng,
        );
        let mut records = records;
        spread_timestamps(&mut records, self.duration_secs);
        GeneratedStream {
            records,
            universe_groups: self.groups,
            arity: self.arity,
        }
    }
}

/// Emits exactly `target` packets by interleaving flows through a bounded
/// active window. If the flow population runs dry, fresh flows are drawn
/// from `universe`.
pub(crate) fn interleave_flows(
    mut pending: Vec<Flow>,
    target: usize,
    window: usize,
    dist: &FlowLengthDistribution,
    universe: &[[u32; MAX_ATTRS]],
    rng: &mut SplitMix64,
) -> Vec<Record> {
    pending.reverse(); // pop() now yields flows in shuffled order
    let mut active: Vec<Flow> = Vec::with_capacity(window);
    let mut out = Vec::with_capacity(target);
    while out.len() < target {
        while active.len() < window {
            match pending.pop() {
                Some(f) => active.push(f),
                None => {
                    if active.is_empty() {
                        // Replenish: new flow on a random existing group.
                        let attrs = universe[rng.gen_index(universe.len())];
                        active.push(Flow {
                            attrs,
                            remaining: dist.sample(rng),
                        });
                    }
                    break;
                }
            }
        }
        let idx = rng.gen_index(active.len());
        let flow = &mut active[idx];
        out.push(Record {
            attrs: flow.attrs,
            ts_micros: 0,
        });
        flow.remaining -= 1;
        if flow.remaining == 0 {
            active.swap_remove(idx);
            if active.is_empty() && pending.is_empty() {
                let attrs = universe[rng.gen_index(universe.len())];
                active.push(Flow {
                    attrs,
                    remaining: dist.sample(rng),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::stats::DatasetStats;

    #[test]
    fn emits_exact_record_count() {
        let s = ClusteredStreamBuilder::new(3, 50).records(7000).build();
        assert_eq!(s.len(), 7000);
    }

    #[test]
    fn contiguous_flows_when_window_is_one() {
        let s = ClusteredStreamBuilder::new(2, 30)
            .records(5000)
            .active_flows(1)
            .flow_lengths(FlowLengthDistribution::Constant { len: 10 })
            .seed(2)
            .build();
        // With window 1 and constant length 10, runs of equal tuples are
        // multiples of 10 except where consecutive flows share a group.
        let ab = AttrSet::parse("AB").unwrap();
        let stats = DatasetStats::compute(&s.records, ab);
        let fl = stats.flow_length(ab);
        assert!(fl >= 10.0, "avg run length {fl} < 10");
    }

    #[test]
    fn interleaving_shortens_observed_runs() {
        let contiguous = ClusteredStreamBuilder::new(2, 30)
            .records(5000)
            .active_flows(1)
            .flow_lengths(FlowLengthDistribution::Constant { len: 50 })
            .seed(3)
            .build();
        let interleaved = ClusteredStreamBuilder::new(2, 30)
            .records(5000)
            .active_flows(16)
            .flow_lengths(FlowLengthDistribution::Constant { len: 50 })
            .seed(3)
            .build();
        let ab = AttrSet::parse("AB").unwrap();
        let run_c = DatasetStats::compute(&contiguous.records, ab).flow_length(ab);
        let run_i = DatasetStats::compute(&interleaved.records, ab).flow_length(ab);
        assert!(
            run_i < run_c,
            "interleaved runs ({run_i}) not shorter than contiguous ({run_c})"
        );
    }

    #[test]
    fn covers_entire_universe_with_enough_records() {
        let s = ClusteredStreamBuilder::new(4, 40)
            .records(20_000)
            .flow_lengths(FlowLengthDistribution::Constant { len: 5 })
            .seed(4)
            .build();
        let abcd = AttrSet::parse("ABCD").unwrap();
        let stats = DatasetStats::compute(&s.records, abcd);
        assert_eq!(stats.groups(abcd), 40);
    }

    #[test]
    fn pareto_sampler_respects_min_and_mean() {
        let mut rng = SplitMix64::new(11);
        let d = FlowLengthDistribution::Pareto { alpha: 2.0, min: 5 };
        let samples: Vec<usize> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&l| l >= 5));
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        // Analytic mean = alpha*min/(alpha-1) = 10; ceil() biases up ~0.5.
        assert!((mean - d.mean()).abs() < 1.5, "mean {mean} vs {}", d.mean());
    }

    #[test]
    fn geometric_sampler_mean() {
        let mut rng = SplitMix64::new(12);
        let d = FlowLengthDistribution::Geometric { p: 0.2 };
        let samples: Vec<usize> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.3, "mean {mean}");
    }
}
