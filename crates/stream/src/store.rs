//! Durable storage primitives: the atomic-write discipline and the
//! fault-injecting simulation backend beneath every real file the
//! workspace writes.
//!
//! Everything above this module treats durability as a *value*: bytes
//! handed to a [`StorageBackend`] either become durable atomically or
//! fail with a typed [`StoreError`] — there is no third state. Two
//! implementations back the trait:
//!
//! * [`DiskBackend`] — real files under a root directory, every
//!   replacement routed through the classic crash-safe discipline
//!   (write a temp sibling → `fsync` the file → atomic `rename` →
//!   `fsync` the directory). A deterministic *kill fuse*
//!   ([`DiskBackend::with_kill_after`]) aborts the backend between any
//!   two syscall steps, so tests can sweep every crash interleaving a
//!   real process kill could produce and prove recovery handles each
//!   one.
//! * [`SimBackend`] — a deterministic in-memory filesystem with a
//!   seeded [`StorageFaultPlan`]: EIO, ENOSPC, torn writes at byte
//!   *k*, crash-between-temp-and-rename, and lying `fsync`s whose data
//!   evaporates at the next power cut ([`SimBackend::crash`]). Faults
//!   are op-indexed and PRNG-seeded — never clocked — so every drill
//!   replays bit-identically, which is the repo's spine invariant.
//!
//! The generational checkpoint store in `msa-gigascope` builds on this
//! trait; the lint rule R009 keeps every other file write in the
//! workspace routed through here.

use crate::prng::SplitMix64;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// What went wrong, independent of which backend failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreErrorKind {
    /// A (possibly transient) I/O error — the one kind worth retrying.
    Eio,
    /// The device is out of space; retrying cannot help.
    NoSpace,
    /// The object does not exist.
    NotFound,
    /// The backend is dead: a kill fuse or injected crash fired. Every
    /// later operation fails the same way until recovery reopens it.
    Crashed,
    /// The path escapes the store root (absolute or `..` segments).
    InvalidPath,
}

impl StoreErrorKind {
    /// True for faults a bounded, attempt-counted retry may clear.
    pub fn is_transient(self) -> bool {
        matches!(self, StoreErrorKind::Eio)
    }
}

/// A typed storage failure: which primitive failed, on which object,
/// and how.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreError {
    /// The primitive that failed (`"write_atomic"`, `"append"`, ...).
    pub op: &'static str,
    /// Store-relative path of the object involved.
    pub path: String,
    /// Failure class.
    pub kind: StoreErrorKind,
}

impl StoreError {
    /// Builds an error for `op` on `path`.
    pub fn new(op: &'static str, path: &str, kind: StoreErrorKind) -> StoreError {
        StoreError {
            op,
            path: path.to_string(),
            kind,
        }
    }

    /// True for faults a bounded, attempt-counted retry may clear.
    pub fn is_transient(&self) -> bool {
        self.kind.is_transient()
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            StoreErrorKind::Eio => "i/o error",
            StoreErrorKind::NoSpace => "no space left",
            StoreErrorKind::NotFound => "not found",
            StoreErrorKind::Crashed => "backend crashed",
            StoreErrorKind::InvalidPath => "path escapes the store root",
        };
        write!(f, "storage {} during {} on `{}`", kind, self.op, self.path)
    }
}

impl std::error::Error for StoreError {}

/// The primitive contract every durable write in the workspace runs
/// through.
///
/// Paths are store-relative, `/`-separated, with no absolute or `..`
/// segments. [`StorageBackend::write_atomic`] is all-or-nothing: after
/// a crash at any point the object holds either its old bytes or the
/// new ones, never a mixture. [`StorageBackend::append`] extends an
/// object (creating it empty first if needed) and only becomes durable
/// at the next [`StorageBackend::sync`] — a crash in between may leave
/// a *torn tail*, which the checkpoint store's WAL framing detects and
/// repairs.
pub trait StorageBackend: std::fmt::Debug + Send {
    /// Atomically replaces `path` with `bytes` (temp + fsync + rename +
    /// dir fsync). On success the bytes are durable.
    fn write_atomic(&mut self, path: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Appends `bytes` to `path`, creating it if absent. Durable only
    /// after [`StorageBackend::sync`].
    fn append(&mut self, path: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Makes every prior append to `path` durable.
    fn sync(&mut self, path: &str) -> Result<(), StoreError>;

    /// Reads the current (visible, possibly not yet durable) bytes.
    fn read(&mut self, path: &str) -> Result<Vec<u8>, StoreError>;

    /// Immediate children of `dir` (`""` for the root), sorted, without
    /// in-flight `.tmp` siblings. Missing directories list as empty.
    fn list(&mut self, dir: &str) -> Result<Vec<String>, StoreError>;

    /// Removes `path` if present (absence is not an error).
    fn remove(&mut self, path: &str) -> Result<(), StoreError>;

    /// Truncates `path` to its first `len` bytes — the torn-tail repair
    /// primitive (and the torn-write drill for tests).
    fn truncate(&mut self, path: &str, len: usize) -> Result<(), StoreError>;

    /// Flips one bit of byte `index` in `path` — the bit-rot drill.
    /// Tests and examples inject corruption through this instead of
    /// writing files bare (which rule R009 forbids).
    fn corrupt(&mut self, path: &str, index: usize) -> Result<(), StoreError>;

    /// Models a machine restart: volatile (unsynced) state resolves and
    /// the backend is usable again. [`SimBackend`] rolls every file
    /// back to its durable bytes and clears its dead latch;
    /// [`DiskBackend`] clears its kill fuse (its on-disk state *is* the
    /// durable state once the process is gone).
    fn power_cut(&mut self);
}

/// Rejects absolute paths and `..` segments.
fn check_path(op: &'static str, path: &str) -> Result<(), StoreError> {
    if path.starts_with('/') || path.split('/').any(|seg| seg == "..") {
        return Err(StoreError::new(op, path, StoreErrorKind::InvalidPath));
    }
    Ok(())
}

fn io_kind(e: &std::io::Error) -> StoreErrorKind {
    match e.kind() {
        std::io::ErrorKind::NotFound => StoreErrorKind::NotFound,
        std::io::ErrorKind::StorageFull => StoreErrorKind::NoSpace,
        _ => StoreErrorKind::Eio,
    }
}

/// Writes `bytes` to `path` with the full crash-safe discipline:
/// write a `.tmp` sibling, `fsync` it, atomically `rename` it over
/// `path`, then `fsync` the parent directory so the rename itself is
/// durable. After a crash at any point `path` holds either its old
/// contents or `bytes`, never a mixture.
///
/// This is the free-function form for callers that persist one file
/// outside a store (trace saves, bench artifacts); everything
/// generational goes through [`DiskBackend`], which runs the same four
/// steps behind its kill fuse.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let rel = path.to_string_lossy().into_owned();
    let err = |op: &'static str, e: &std::io::Error| StoreError {
        op,
        path: rel.clone(),
        kind: io_kind(e),
    };
    let tmp = temp_sibling(path);
    {
        let mut f = fs::File::create(&tmp).map_err(|e| err("create-temp", &e))?;
        f.write_all(bytes).map_err(|e| err("write-temp", &e))?;
        f.sync_all().map_err(|e| err("fsync-temp", &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| err("rename", &e))?;
    sync_parent_dir(path).map_err(|e| err("fsync-dir", &e))?;
    Ok(())
}

/// The temp sibling `name.tmp` next to `path` (same directory, so the
/// rename is within one filesystem and therefore atomic).
fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsyncs the directory containing `path`, making a completed rename
/// durable. Treated as best-effort-with-error: platforms that cannot
/// open directories surface the failure to the caller.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    match dir {
        Some(d) => fs::File::open(d)?.sync_all(),
        None => Ok(()),
    }
}

/// Real files under a root directory, with every mutation split into
/// countable syscall steps so a kill fuse can abort between any two of
/// them.
///
/// Step accounting (the indices a kill sweep iterates over):
/// `write_atomic` is four steps — write-temp, fsync-temp, rename,
/// fsync-dir; `append`, `sync`, `remove` and `truncate` are one step
/// each. When the fuse fires on a *write* step the backend writes a
/// torn prefix (half the bytes) before latching dead, so sweeps
/// exercise genuinely partial data, not just clean cuts.
#[derive(Debug)]
pub struct DiskBackend {
    root: PathBuf,
    kill_after: Option<u64>,
    steps: u64,
    dead: bool,
}

/// What a fused step should do.
enum StepFate {
    /// Run the syscall normally.
    Run,
    /// The fuse fired: perform the torn variant (writes) or nothing,
    /// then fail as crashed.
    Kill,
}

impl DiskBackend {
    /// Opens (creating if needed) a backend rooted at `root`.
    pub fn new<P: Into<PathBuf>>(root: P) -> Result<DiskBackend, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| StoreError {
            op: "open",
            path: root.to_string_lossy().into_owned(),
            kind: io_kind(&e),
        })?;
        Ok(DiskBackend {
            root,
            kill_after: None,
            steps: 0,
            dead: false,
        })
    }

    /// Arms the kill fuse: the first `steps` syscall steps run, the
    /// next one aborts (torn for writes), and the backend is dead from
    /// then on — exactly what `kill -9` between two syscalls leaves.
    pub fn with_kill_after<P: Into<PathBuf>>(
        root: P,
        steps: u64,
    ) -> Result<DiskBackend, StoreError> {
        let mut b = DiskBackend::new(root)?;
        b.kill_after = Some(steps);
        Ok(b)
    }

    /// Syscall steps performed so far (the sweep bound: re-run an
    /// unfused workload and read this to learn how many kill points
    /// exist).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// True once the kill fuse has fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn abs(&self, path: &str) -> PathBuf {
        self.root.join(path)
    }

    /// Counts one syscall step against the fuse.
    fn step(&mut self, op: &'static str, path: &str) -> Result<StepFate, StoreError> {
        if self.dead {
            return Err(StoreError::new(op, path, StoreErrorKind::Crashed));
        }
        if self.kill_after == Some(self.steps) {
            self.steps += 1;
            self.dead = true;
            return Ok(StepFate::Kill);
        }
        self.steps += 1;
        Ok(StepFate::Run)
    }

    fn io_err(op: &'static str, path: &str, e: &std::io::Error) -> StoreError {
        StoreError::new(op, path, io_kind(e))
    }
}

impl StorageBackend for DiskBackend {
    fn write_atomic(&mut self, path: &str, bytes: &[u8]) -> Result<(), StoreError> {
        check_path("write_atomic", path)?;
        let abs = self.abs(path);
        if let Some(parent) = abs.parent() {
            fs::create_dir_all(parent).map_err(|e| Self::io_err("write_atomic", path, &e))?;
        }
        let tmp = temp_sibling(&abs);
        // Step 1: create + write the temp sibling.
        match self.step("write-temp", path)? {
            StepFate::Run => {
                let mut f =
                    fs::File::create(&tmp).map_err(|e| Self::io_err("write-temp", path, &e))?;
                f.write_all(bytes)
                    .map_err(|e| Self::io_err("write-temp", path, &e))?;
                // Step 2: fsync the temp file.
                match self.step("fsync-temp", path)? {
                    StepFate::Run => {
                        f.sync_all()
                            .map_err(|e| Self::io_err("fsync-temp", path, &e))?;
                    }
                    StepFate::Kill => {
                        return Err(StoreError::new("fsync-temp", path, StoreErrorKind::Crashed));
                    }
                }
            }
            StepFate::Kill => {
                // Torn temp: half the bytes land, then the process dies.
                // Harmless by construction — recovery ignores `.tmp`.
                let torn = bytes.get(..bytes.len() / 2).unwrap_or(&[]);
                if let Ok(mut f) = fs::File::create(&tmp) {
                    let _ = f.write_all(torn);
                }
                return Err(StoreError::new("write-temp", path, StoreErrorKind::Crashed));
            }
        }
        // Step 3: atomic rename over the destination.
        match self.step("rename", path)? {
            StepFate::Run => {
                fs::rename(&tmp, &abs).map_err(|e| Self::io_err("rename", path, &e))?;
            }
            StepFate::Kill => {
                return Err(StoreError::new("rename", path, StoreErrorKind::Crashed));
            }
        }
        // Step 4: fsync the directory so the rename is durable.
        match self.step("fsync-dir", path)? {
            StepFate::Run => {
                sync_parent_dir(&abs).map_err(|e| Self::io_err("fsync-dir", path, &e))?;
            }
            StepFate::Kill => {
                return Err(StoreError::new("fsync-dir", path, StoreErrorKind::Crashed));
            }
        }
        Ok(())
    }

    fn append(&mut self, path: &str, bytes: &[u8]) -> Result<(), StoreError> {
        check_path("append", path)?;
        let abs = self.abs(path);
        if let Some(parent) = abs.parent() {
            fs::create_dir_all(parent).map_err(|e| Self::io_err("append", path, &e))?;
        }
        let open = || fs::OpenOptions::new().create(true).append(true).open(&abs);
        match self.step("append", path)? {
            StepFate::Run => {
                let mut f = open().map_err(|e| Self::io_err("append", path, &e))?;
                f.write_all(bytes)
                    .map_err(|e| Self::io_err("append", path, &e))?;
                Ok(())
            }
            StepFate::Kill => {
                // Torn append: a prefix lands, then the process dies —
                // the exact tail shape WAL repair must truncate.
                if let Ok(mut f) = open() {
                    let _ = f.write_all(&bytes[..bytes.len() / 2]);
                }
                Err(StoreError::new("append", path, StoreErrorKind::Crashed))
            }
        }
    }

    fn sync(&mut self, path: &str) -> Result<(), StoreError> {
        check_path("sync", path)?;
        let abs = self.abs(path);
        match self.step("fsync", path)? {
            StepFate::Run => fs::OpenOptions::new()
                .append(true)
                .open(&abs)
                .and_then(|f| f.sync_all())
                .map_err(|e| Self::io_err("fsync", path, &e)),
            StepFate::Kill => Err(StoreError::new("fsync", path, StoreErrorKind::Crashed)),
        }
    }

    fn read(&mut self, path: &str) -> Result<Vec<u8>, StoreError> {
        check_path("read", path)?;
        if self.dead {
            return Err(StoreError::new("read", path, StoreErrorKind::Crashed));
        }
        fs::read(self.abs(path)).map_err(|e| Self::io_err("read", path, &e))
    }

    fn list(&mut self, dir: &str) -> Result<Vec<String>, StoreError> {
        check_path("list", dir)?;
        if self.dead {
            return Err(StoreError::new("list", dir, StoreErrorKind::Crashed));
        }
        let abs = self.abs(dir);
        let mut names = Vec::new();
        match fs::read_dir(&abs) {
            Ok(entries) => {
                for entry in entries {
                    let entry = entry.map_err(|e| Self::io_err("list", dir, &e))?;
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if !name.ends_with(".tmp") {
                        names.push(name);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(Self::io_err("list", dir, &e)),
        }
        names.sort();
        Ok(names)
    }

    fn remove(&mut self, path: &str) -> Result<(), StoreError> {
        check_path("remove", path)?;
        let abs = self.abs(path);
        match self.step("remove", path)? {
            StepFate::Run => {
                match fs::remove_file(&abs) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(Self::io_err("remove", path, &e)),
                }
                // Match the flat-key [`SimBackend`] semantics: a
                // directory vanishes with its last file, so GC'd
                // generations don't linger as empty husks for `list`
                // and scrub to trip over.
                if let Some(parent) = abs.parent() {
                    if parent != self.root
                        && fs::read_dir(parent).is_ok_and(|mut d| d.next().is_none())
                    {
                        let _ = fs::remove_dir(parent);
                    }
                }
                Ok(())
            }
            StepFate::Kill => Err(StoreError::new("remove", path, StoreErrorKind::Crashed)),
        }
    }

    fn truncate(&mut self, path: &str, len: usize) -> Result<(), StoreError> {
        check_path("truncate", path)?;
        let abs = self.abs(path);
        match self.step("truncate", path)? {
            StepFate::Run => {
                let f = fs::OpenOptions::new()
                    .write(true)
                    .open(&abs)
                    .map_err(|e| Self::io_err("truncate", path, &e))?;
                f.set_len(len as u64)
                    .map_err(|e| Self::io_err("truncate", path, &e))?;
                f.sync_all().map_err(|e| Self::io_err("truncate", path, &e))
            }
            StepFate::Kill => Err(StoreError::new("truncate", path, StoreErrorKind::Crashed)),
        }
    }

    fn corrupt(&mut self, path: &str, index: usize) -> Result<(), StoreError> {
        check_path("corrupt", path)?;
        if self.dead {
            return Err(StoreError::new("corrupt", path, StoreErrorKind::Crashed));
        }
        let abs = self.abs(path);
        let mut bytes = fs::read(&abs).map_err(|e| Self::io_err("corrupt", path, &e))?;
        if index >= bytes.len() {
            return Err(StoreError::new("corrupt", path, StoreErrorKind::NotFound));
        }
        bytes[index] ^= 0x01;
        // Deliberate bit-rot bypasses the atomic discipline: media
        // corruption does not politely go through rename.
        let mut f = fs::OpenOptions::new()
            .write(true)
            .open(&abs)
            .map_err(|e| Self::io_err("corrupt", path, &e))?;
        f.write_all(&bytes)
            .map_err(|e| Self::io_err("corrupt", path, &e))?;
        f.sync_all().map_err(|e| Self::io_err("corrupt", path, &e))
    }

    fn power_cut(&mut self) {
        // Real files survive the restart; only the process state resets.
        self.dead = false;
        self.kill_after = None;
    }
}

/// Declarative, seeded storage-fault injection for [`SimBackend`].
///
/// Like every fault plan in this workspace the injection is purely
/// declarative and op-indexed (never clocked): the `n`-th mutating
/// backend call misbehaves the same way on every run. `none()` injects
/// nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StorageFaultPlan {
    /// Mutating op `n` fails with `kind`; no state changes.
    pub fail_op: Option<(u64, StoreErrorKind)>,
    /// Mutating ops `[start, start + count)` fail with transient EIO —
    /// the window an attempt-counted retry loop must outlast.
    pub transient_eio: Option<(u64, u64)>,
    /// At mutating op `n` (a write), only the first `k` bytes land and
    /// the backend latches dead: a torn write at byte *k*. For
    /// `write_atomic` this models crash-between-temp-and-rename — the
    /// old contents survive untouched.
    pub torn_write: Option<(u64, usize)>,
    /// The backend latches dead right after op `n` completes.
    pub crash_after_op: Option<u64>,
    /// Syncs report success but persist nothing: the classic lying
    /// fsync. Data written under it evaporates at the next power cut.
    pub lying_fsync: bool,
    /// Seed for the probabilistic EIO stream (used when `eio_num > 0`).
    pub eio_seed: u64,
    /// Each mutating op fails with transient EIO with probability
    /// `eio_num / eio_den` (a seeded draw; 0 disables).
    pub eio_num: u32,
    /// Denominator of the EIO probability (0 treated as disabled).
    pub eio_den: u32,
}

impl StorageFaultPlan {
    /// No injected faults.
    pub fn none() -> StorageFaultPlan {
        StorageFaultPlan::default()
    }

    /// True when nothing is injected.
    pub fn is_none(&self) -> bool {
        *self == StorageFaultPlan::default()
    }
}

/// One simulated file: the bytes visible now and the bytes a power cut
/// would leave (everything synced so far).
#[derive(Clone, Debug, Default)]
struct SimFile {
    bytes: Vec<u8>,
    durable: Vec<u8>,
}

/// A deterministic in-memory filesystem with seeded fault injection.
///
/// `append`ed bytes are *visible* immediately but *durable* only after
/// `sync`; [`SimBackend::crash`] models a power cut by rolling every
/// file back to its durable bytes (and clearing the dead latch so
/// recovery can reopen the store). A process kill without power loss
/// keeps visible bytes — that distinction is exactly what lying-fsync
/// drills need.
#[derive(Debug)]
pub struct SimBackend {
    files: BTreeMap<String, SimFile>,
    plan: StorageFaultPlan,
    prng: SplitMix64,
    ops: u64,
    dead: bool,
}

impl Default for SimBackend {
    fn default() -> SimBackend {
        SimBackend::new()
    }
}

impl SimBackend {
    /// A fault-free simulated store.
    pub fn new() -> SimBackend {
        SimBackend::with_faults(StorageFaultPlan::none())
    }

    /// A simulated store with `plan` armed.
    pub fn with_faults(plan: StorageFaultPlan) -> SimBackend {
        let prng = SplitMix64::new(plan.eio_seed);
        SimBackend {
            files: BTreeMap::new(),
            plan,
            prng,
            ops: 0,
            dead: false,
        }
    }

    /// Mutating ops performed (or faulted) so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// True once an injected crash has latched.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The power cut: every file rolls back to its durable bytes and
    /// never-synced files vanish. The dead latch clears — recovery
    /// reopens the store against exactly what real hardware would hold.
    pub fn crash(&mut self) {
        self.files.retain(|_, f| {
            f.bytes = f.durable.clone();
            !f.durable.is_empty()
        });
        self.dead = false;
    }

    /// Rearms the fault plan (op counter keeps running).
    pub fn set_faults(&mut self, plan: StorageFaultPlan) {
        self.prng = SplitMix64::new(plan.eio_seed);
        self.plan = plan;
    }

    /// Runs the fault gate for one mutating op. Returns the torn length
    /// when the torn-write fault fires on this op.
    fn gate(&mut self, op: &'static str, path: &str) -> Result<Option<usize>, StoreError> {
        if self.dead {
            return Err(StoreError::new(op, path, StoreErrorKind::Crashed));
        }
        let n = self.ops;
        self.ops += 1;
        if let Some((at, kind)) = self.plan.fail_op {
            if n == at {
                return Err(StoreError::new(op, path, kind));
            }
        }
        if let Some((start, count)) = self.plan.transient_eio {
            if n >= start && n < start + count {
                return Err(StoreError::new(op, path, StoreErrorKind::Eio));
            }
        }
        if self.plan.eio_num > 0 && self.plan.eio_den > 0 {
            let draw = self.prng.next_u32() % self.plan.eio_den;
            if draw < self.plan.eio_num {
                return Err(StoreError::new(op, path, StoreErrorKind::Eio));
            }
        }
        if let Some((at, k)) = self.plan.torn_write {
            if n == at {
                self.dead = true;
                return Ok(Some(k));
            }
        }
        Ok(None)
    }

    /// Latches dead after op `n` when `crash_after_op` is armed.
    fn after(&mut self, n: u64) {
        if self.plan.crash_after_op == Some(n) {
            self.dead = true;
        }
    }
}

impl StorageBackend for SimBackend {
    fn write_atomic(&mut self, path: &str, bytes: &[u8]) -> Result<(), StoreError> {
        check_path("write_atomic", path)?;
        let n = self.ops;
        match self.gate("write_atomic", path)? {
            Some(_torn) => {
                // Crash between temp and rename: the torn temp sibling
                // is invisible, the old contents survive untouched.
                Err(StoreError::new(
                    "write_atomic",
                    path,
                    StoreErrorKind::Crashed,
                ))
            }
            None => {
                let f = self.files.entry(path.to_string()).or_default();
                f.bytes = bytes.to_vec();
                if self.plan.lying_fsync {
                    // The rename "fsync" lied: visible now, gone at the
                    // next power cut.
                } else {
                    f.durable = bytes.to_vec();
                }
                self.after(n);
                Ok(())
            }
        }
    }

    fn append(&mut self, path: &str, bytes: &[u8]) -> Result<(), StoreError> {
        check_path("append", path)?;
        let n = self.ops;
        match self.gate("append", path)? {
            Some(k) => {
                let f = self.files.entry(path.to_string()).or_default();
                f.bytes.extend_from_slice(&bytes[..k.min(bytes.len())]);
                Err(StoreError::new("append", path, StoreErrorKind::Crashed))
            }
            None => {
                let f = self.files.entry(path.to_string()).or_default();
                f.bytes.extend_from_slice(bytes);
                self.after(n);
                Ok(())
            }
        }
    }

    fn sync(&mut self, path: &str) -> Result<(), StoreError> {
        check_path("sync", path)?;
        let n = self.ops;
        self.gate("sync", path)?;
        if !self.plan.lying_fsync {
            if let Some(f) = self.files.get_mut(path) {
                f.durable = f.bytes.clone();
            }
        }
        self.after(n);
        Ok(())
    }

    fn read(&mut self, path: &str) -> Result<Vec<u8>, StoreError> {
        check_path("read", path)?;
        if self.dead {
            return Err(StoreError::new("read", path, StoreErrorKind::Crashed));
        }
        self.files
            .get(path)
            .map(|f| f.bytes.clone())
            .ok_or_else(|| StoreError::new("read", path, StoreErrorKind::NotFound))
    }

    fn list(&mut self, dir: &str) -> Result<Vec<String>, StoreError> {
        check_path("list", dir)?;
        if self.dead {
            return Err(StoreError::new("list", dir, StoreErrorKind::Crashed));
        }
        let prefix = if dir.is_empty() {
            String::new()
        } else {
            format!("{dir}/")
        };
        let mut names: Vec<String> = self
            .files
            .keys()
            .filter_map(|k| k.strip_prefix(&prefix))
            .map(|rest| match rest.find('/') {
                Some(i) => rest[..i].to_string(),
                None => rest.to_string(),
            })
            .collect();
        names.sort();
        names.dedup();
        Ok(names)
    }

    fn remove(&mut self, path: &str) -> Result<(), StoreError> {
        check_path("remove", path)?;
        let n = self.ops;
        self.gate("remove", path)?;
        self.files.remove(path);
        self.after(n);
        Ok(())
    }

    fn truncate(&mut self, path: &str, len: usize) -> Result<(), StoreError> {
        check_path("truncate", path)?;
        let n = self.ops;
        self.gate("truncate", path)?;
        let f = self
            .files
            .get_mut(path)
            .ok_or_else(|| StoreError::new("truncate", path, StoreErrorKind::NotFound))?;
        f.bytes.truncate(len);
        f.durable.truncate(len);
        self.after(n);
        Ok(())
    }

    fn corrupt(&mut self, path: &str, index: usize) -> Result<(), StoreError> {
        check_path("corrupt", path)?;
        if self.dead {
            return Err(StoreError::new("corrupt", path, StoreErrorKind::Crashed));
        }
        let f = self
            .files
            .get_mut(path)
            .ok_or_else(|| StoreError::new("corrupt", path, StoreErrorKind::NotFound))?;
        if index >= f.bytes.len() {
            return Err(StoreError::new("corrupt", path, StoreErrorKind::NotFound));
        }
        f.bytes[index] ^= 0x01;
        if index < f.durable.len() {
            f.durable[index] ^= 0x01;
        }
        Ok(())
    }

    fn power_cut(&mut self) {
        self.crash();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("msa_store_test_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disk_atomic_write_round_trips_and_replaces() {
        let root = tempdir("roundtrip");
        let mut b = DiskBackend::new(&root).unwrap();
        b.write_atomic("a/x.bin", b"hello").unwrap();
        assert_eq!(b.read("a/x.bin").unwrap(), b"hello");
        b.write_atomic("a/x.bin", b"world!").unwrap();
        assert_eq!(b.read("a/x.bin").unwrap(), b"world!");
        assert_eq!(b.list("a").unwrap(), vec!["x.bin".to_string()]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn disk_kill_fuse_never_leaves_a_mixture() {
        // Sweep the fuse across every syscall step of one replacement:
        // the visible file must hold either the old or the new bytes.
        let old = b"old-contents".to_vec();
        let new = b"new-contents!!".to_vec();
        for k in 0..8 {
            let root = tempdir(&format!("kill{k}"));
            {
                let mut b = DiskBackend::new(&root).unwrap();
                b.write_atomic("x.bin", &old).unwrap();
            }
            let mut fused = DiskBackend::with_kill_after(&root, 4 + k).unwrap();
            let res = fused
                .write_atomic("x.bin", &old)
                .and_then(|()| fused.write_atomic("x.bin", &new));
            let mut reopened = DiskBackend::new(&root).unwrap();
            let visible = reopened.read("x.bin").unwrap();
            assert!(
                visible == old || visible == new,
                "kill at step {k} left a mixture: {visible:?}"
            );
            if res.is_ok() {
                assert_eq!(visible, new);
            }
            // `.tmp` siblings never surface through list().
            assert!(reopened
                .list("")
                .unwrap()
                .iter()
                .all(|n| !n.ends_with(".tmp")));
            std::fs::remove_dir_all(&root).ok();
        }
    }

    #[test]
    fn disk_torn_append_leaves_a_prefix() {
        let root = tempdir("torn_append");
        {
            let mut b = DiskBackend::new(&root).unwrap();
            b.append("wal.bin", b"0123456789").unwrap();
        }
        let mut fused = DiskBackend::with_kill_after(&root, 0).unwrap();
        let err = fused.append("wal.bin", b"abcdefgh").unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::Crashed);
        assert!(fused.is_dead());
        let mut reopened = DiskBackend::new(&root).unwrap();
        let bytes = reopened.read("wal.bin").unwrap();
        assert_eq!(&bytes[..10], b"0123456789");
        assert!(bytes.len() < 18, "torn append must not complete");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn disk_rejects_escaping_paths() {
        let root = tempdir("escape");
        let mut b = DiskBackend::new(&root).unwrap();
        let err = b.write_atomic("../evil", b"x").unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::InvalidPath);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn sim_power_cut_drops_unsynced_tail() {
        let mut b = SimBackend::new();
        b.append("wal.bin", b"durable").unwrap();
        b.sync("wal.bin").unwrap();
        b.append("wal.bin", b"-volatile").unwrap();
        assert_eq!(b.read("wal.bin").unwrap(), b"durable-volatile");
        b.crash();
        assert_eq!(b.read("wal.bin").unwrap(), b"durable");
    }

    #[test]
    fn sim_lying_fsync_loses_data_only_at_power_cut() {
        let mut b = SimBackend::with_faults(StorageFaultPlan {
            lying_fsync: true,
            ..StorageFaultPlan::none()
        });
        b.append("wal.bin", b"doomed").unwrap();
        b.sync("wal.bin").unwrap();
        // Visible after a plain process kill...
        assert_eq!(b.read("wal.bin").unwrap(), b"doomed");
        // ...gone after the power cut the lying fsync was hiding from.
        b.crash();
        assert!(matches!(
            b.read("wal.bin"),
            Err(StoreError {
                kind: StoreErrorKind::NotFound,
                ..
            })
        ));
    }

    #[test]
    fn sim_torn_write_latches_dead_with_prefix() {
        let mut b = SimBackend::with_faults(StorageFaultPlan {
            torn_write: Some((1, 3)),
            ..StorageFaultPlan::none()
        });
        b.append("wal.bin", b"aaaa").unwrap();
        let err = b.append("wal.bin", b"bbbb").unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::Crashed);
        assert!(b.is_dead());
        b.crash();
        // Power cut: nothing was synced, the file vanishes entirely.
        assert!(b.read("wal.bin").is_err());
    }

    #[test]
    fn sim_atomic_write_survives_crash_between_temp_and_rename() {
        let mut b = SimBackend::with_faults(StorageFaultPlan {
            torn_write: Some((1, 5)),
            ..StorageFaultPlan::none()
        });
        b.write_atomic("m.bin", b"old").unwrap();
        let err = b.write_atomic("m.bin", b"new-longer").unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::Crashed);
        b.crash();
        assert_eq!(b.read("m.bin").unwrap(), b"old");
    }

    #[test]
    fn sim_transient_eio_window_clears() {
        let mut b = SimBackend::with_faults(StorageFaultPlan {
            transient_eio: Some((1, 2)),
            ..StorageFaultPlan::none()
        });
        b.append("x", b"a").unwrap(); // op 0
        assert!(b.append("x", b"b").unwrap_err().is_transient()); // op 1
        assert!(b.append("x", b"b").unwrap_err().is_transient()); // op 2
        b.append("x", b"b").unwrap(); // op 3: window over
        assert_eq!(b.read("x").unwrap(), b"ab");
    }

    #[test]
    fn sim_seeded_eio_stream_is_deterministic() {
        let plan = StorageFaultPlan {
            eio_seed: 7,
            eio_num: 1,
            eio_den: 3,
            ..StorageFaultPlan::none()
        };
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            let mut b = SimBackend::with_faults(plan.clone());
            let run: Vec<bool> = (0..32).map(|_| b.append("x", b"y").is_ok()).collect();
            outcomes.push(run);
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert!(outcomes[0].iter().any(|ok| !ok), "seeded EIO never fired");
        assert!(outcomes[0].iter().any(|ok| *ok), "seeded EIO always fired");
    }

    #[test]
    fn sim_enospc_is_not_transient() {
        let mut b = SimBackend::with_faults(StorageFaultPlan {
            fail_op: Some((0, StoreErrorKind::NoSpace)),
            ..StorageFaultPlan::none()
        });
        let err = b.append("x", b"y").unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::NoSpace);
        assert!(!err.is_transient());
        // The very next op succeeds — the fault was op-indexed.
        b.append("x", b"y").unwrap();
    }

    #[test]
    fn atomic_write_free_function_round_trips() {
        let root = tempdir("free_fn");
        let path = root.join("trace.bin");
        atomic_write(&path, b"payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        atomic_write(&path, b"replaced").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"replaced");
        std::fs::remove_dir_all(&root).ok();
    }
}
