//! Dataset statistics: group counts and average flow lengths.
//!
//! The paper's cost model consumes, for every relation `R` it might
//! instantiate, the number of groups `g_R` and — for clustered data — the
//! average flow length `l_R` (§4.3/§5.3: space ∝ `√(g·h/l)`). The paper
//! derives flow lengths "temporally": here a flow of relation `R` is a
//! maximal run of consecutive records with the same `R`-group key, so
//! `l_R = records / runs_R`.

use crate::attr::{subsets_of, AttrSet};
use crate::hash::fast_set_with_capacity;
use crate::record::Record;
use std::collections::BTreeMap;

/// Per-attribute-set statistics of a concrete dataset.
#[derive(Clone, Debug, Default)]
pub struct DatasetStats {
    // BTreeMaps so `known_sets()` iterates in a deterministic order —
    // planners walk these when sizing relations (msa-lint D002).
    groups: BTreeMap<AttrSet, usize>,
    flow_lengths: BTreeMap<AttrSet, f64>,
    records: usize,
}

impl DatasetStats {
    /// Computes statistics for every non-empty subset of `universe`.
    ///
    /// Cost is `O(2^|universe| · n)`; for the paper's 4 attributes that is
    /// 15 passes, done in a single traversal here.
    pub fn compute(records: &[Record], universe: AttrSet) -> DatasetStats {
        let sets: Vec<AttrSet> = subsets_of(universe).collect();
        DatasetStats::compute_for(records, &sets)
    }

    /// Computes statistics only for the given attribute sets.
    pub fn compute_for(records: &[Record], sets: &[AttrSet]) -> DatasetStats {
        let mut groups = BTreeMap::new();
        let mut flow_lengths = BTreeMap::new();
        for &set in sets {
            let mut distinct = fast_set_with_capacity(1024);
            let mut runs = 0usize;
            let mut prev = None;
            for r in records {
                let key = r.project(set);
                if prev != Some(key) {
                    runs += 1;
                    prev = Some(key);
                }
                distinct.insert(key);
            }
            groups.insert(set, distinct.len());
            let fl = if runs == 0 {
                1.0
            } else {
                records.len() as f64 / runs as f64
            };
            flow_lengths.insert(set, fl);
        }
        DatasetStats {
            groups,
            flow_lengths,
            records: records.len(),
        }
    }

    /// Builds synthetic statistics from explicit `(relation, groups)`
    /// pairs with flow length 1 everywhere. Useful for planning with
    /// estimated cardinalities before any data has been seen.
    pub fn from_group_counts<I: IntoIterator<Item = (AttrSet, usize)>>(
        counts: I,
        records: usize,
    ) -> DatasetStats {
        let groups: BTreeMap<AttrSet, usize> = counts.into_iter().collect();
        let flow_lengths: BTreeMap<AttrSet, f64> = groups.keys().map(|&s| (s, 1.0)).collect();
        DatasetStats {
            groups,
            flow_lengths,
            records,
        }
    }

    /// Overrides (or inserts) the flow length of one relation.
    pub fn set_flow_length(&mut self, set: AttrSet, l: f64) {
        assert!(l >= 1.0, "flow length must be ≥ 1");
        self.flow_lengths.insert(set, l);
    }

    /// Overrides (or inserts) the group count of one relation.
    pub fn set_groups(&mut self, set: AttrSet, g: usize) {
        self.groups.insert(set, g);
    }

    /// Number of groups of relation `set`.
    ///
    /// # Panics
    /// Panics if the set was not part of the computation — group counts
    /// feed hard sizing decisions, so a silent default would be a bug.
    pub fn groups(&self, set: AttrSet) -> usize {
        *self
            .groups
            .get(&set)
            .unwrap_or_else(|| panic!("no group count computed for {set}"))
    }

    /// Group count if known.
    pub fn groups_opt(&self, set: AttrSet) -> Option<usize> {
        self.groups.get(&set).copied()
    }

    /// Average (temporal) flow length of relation `set`; 1.0 means no
    /// clusteredness.
    pub fn flow_length(&self, set: AttrSet) -> f64 {
        self.flow_lengths.get(&set).copied().unwrap_or(1.0)
    }

    /// Number of records the statistics were computed over.
    pub fn records(&self) -> usize {
        self.records
    }

    /// All relations with known statistics.
    pub fn known_sets(&self) -> impl Iterator<Item = AttrSet> + '_ {
        self.groups.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vals: &[u32]) -> Record {
        Record::new(vals, 0)
    }

    #[test]
    fn group_counts_per_projection() {
        let records = vec![rec(&[1, 10]), rec(&[1, 11]), rec(&[2, 10]), rec(&[2, 10])];
        let s = DatasetStats::compute(&records, AttrSet::parse("AB").unwrap());
        assert_eq!(s.groups(AttrSet::parse("A").unwrap()), 2);
        assert_eq!(s.groups(AttrSet::parse("B").unwrap()), 2);
        assert_eq!(s.groups(AttrSet::parse("AB").unwrap()), 3);
        assert_eq!(s.records(), 4);
    }

    #[test]
    fn flow_length_counts_maximal_runs() {
        // Runs on A: [1 1] [2] [1] → 3 runs over 4 records.
        let records = vec![rec(&[1]), rec(&[1]), rec(&[2]), rec(&[1])];
        let s = DatasetStats::compute(&records, AttrSet::parse("A").unwrap());
        let fl = s.flow_length(AttrSet::parse("A").unwrap());
        assert!((fl - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coarser_projection_has_longer_runs() {
        // B alternates within constant A: A-runs longer than AB-runs.
        let records = vec![
            rec(&[1, 5]),
            rec(&[1, 6]),
            rec(&[1, 5]),
            rec(&[2, 5]),
            rec(&[2, 6]),
        ];
        let s = DatasetStats::compute(&records, AttrSet::parse("AB").unwrap());
        assert!(
            s.flow_length(AttrSet::parse("A").unwrap())
                > s.flow_length(AttrSet::parse("AB").unwrap())
        );
    }

    #[test]
    fn empty_dataset_is_safe() {
        let s = DatasetStats::compute(&[], AttrSet::parse("AB").unwrap());
        assert_eq!(s.groups(AttrSet::parse("A").unwrap()), 0);
        assert_eq!(s.flow_length(AttrSet::parse("A").unwrap()), 1.0);
    }

    #[test]
    #[should_panic(expected = "no group count")]
    fn unknown_set_panics() {
        let s = DatasetStats::compute(&[], AttrSet::parse("A").unwrap());
        let _ = s.groups(AttrSet::parse("B").unwrap());
    }

    #[test]
    fn synthetic_stats_roundtrip() {
        let ab = AttrSet::parse("AB").unwrap();
        let mut s = DatasetStats::from_group_counts([(ab, 100)], 1000);
        assert_eq!(s.groups(ab), 100);
        assert_eq!(s.flow_length(ab), 1.0);
        s.set_flow_length(ab, 3.5);
        assert_eq!(s.flow_length(ab), 3.5);
        s.set_groups(ab, 120);
        assert_eq!(s.groups(ab), 120);
    }
}
