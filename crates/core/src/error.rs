//! The crate-level error type for user-facing fallible paths.
//!
//! Library internals keep their narrow error enums ([`SqlError`],
//! [`PlanError`], [`AttrParseError`], [`TraceIoError`]); this module
//! folds them into one [`MsaError`] so an application `main` can use
//! `?` across the whole API surface:
//!
//! ```
//! use msa_core::{MsaError, MultiAggregator, EngineOptions};
//! use msa_stream::AttrSet;
//!
//! fn run() -> Result<(), MsaError> {
//!     let queries = vec![AttrSet::parse_checked("AB")?, AttrSet::parse_checked("BC")?];
//!     let _engine = MultiAggregator::new(queries, EngineOptions::new(10_000.0));
//!     Ok(())
//! }
//! run().unwrap();
//! ```

use msa_gigascope::plan::PlanError;
use msa_gigascope::snapshot::{RecoveryError, SnapshotError};
use msa_gigascope::swap::SwapError;
use msa_stream::io::TraceIoError;
use msa_stream::{AttrParseError, AttrSet};

use crate::sql::SqlError;

/// Any error a user-facing `msa` entry point can produce.
#[derive(Debug)]
pub enum MsaError {
    /// SQL front-end rejection ([`crate::parse_query`],
    /// [`crate::MultiAggregator::from_sql`]).
    Sql(SqlError),
    /// Invalid physical plan handed to the executor.
    Plan(PlanError),
    /// Invalid attribute-set name ([`msa_stream::AttrSet::parse_checked`]).
    Attr(AttrParseError),
    /// Trace file read/write failure ([`msa_stream::io`]).
    TraceIo(TraceIoError),
    /// Corrupted or misaligned checkpoint/log artifact
    /// ([`msa_gigascope::snapshot`]).
    Snapshot(SnapshotError),
    /// Crash-recovery rejection ([`msa_gigascope::Executor::recover`]).
    Recovery(RecoveryError),
    /// An engine query made before the corresponding state exists
    /// (no final plan yet, no durable checkpoint captured, …).
    State(&'static str),
    /// A runtime `add_query` named a query the deployment already
    /// serves.
    DuplicateQuery(AttrSet),
    /// A runtime `remove_query` named a query the deployment does not
    /// serve.
    UnknownQuery(AttrSet),
    /// A runtime query mutation arrived while a re-plan swap was
    /// already staged for the next epoch boundary — retry after the
    /// boundary.
    MidSwapMutation,
    /// The hot-swap transaction itself refused to run
    /// ([`msa_gigascope::swap::SwapError`]).
    Swap(SwapError),
}

impl std::fmt::Display for MsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsaError::Sql(e) => write!(f, "sql: {e}"),
            MsaError::Plan(e) => write!(f, "plan: {e}"),
            MsaError::Attr(e) => write!(f, "attr: {e}"),
            MsaError::TraceIo(e) => write!(f, "trace io: {e}"),
            MsaError::Snapshot(e) => write!(f, "snapshot: {e}"),
            MsaError::Recovery(e) => write!(f, "recovery: {e}"),
            MsaError::State(what) => write!(f, "state: {what}"),
            MsaError::DuplicateQuery(q) => {
                write!(f, "duplicate query: {q} is already deployed")
            }
            MsaError::UnknownQuery(q) => {
                write!(f, "unknown query: {q} is not deployed")
            }
            MsaError::MidSwapMutation => write!(
                f,
                "a re-plan swap is staged for the next epoch boundary; \
                 retry the query mutation after it lands"
            ),
            MsaError::Swap(e) => write!(f, "swap: {e}"),
        }
    }
}

impl std::error::Error for MsaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MsaError::Sql(e) => Some(e),
            MsaError::Plan(e) => Some(e),
            MsaError::Attr(e) => Some(e),
            MsaError::TraceIo(e) => Some(e),
            MsaError::Snapshot(e) => Some(e),
            MsaError::Recovery(e) => Some(e),
            MsaError::Swap(e) => Some(e),
            MsaError::State(_)
            | MsaError::DuplicateQuery(_)
            | MsaError::UnknownQuery(_)
            | MsaError::MidSwapMutation => None,
        }
    }
}

impl From<SqlError> for MsaError {
    fn from(e: SqlError) -> MsaError {
        MsaError::Sql(e)
    }
}

impl From<PlanError> for MsaError {
    fn from(e: PlanError) -> MsaError {
        MsaError::Plan(e)
    }
}

impl From<AttrParseError> for MsaError {
    fn from(e: AttrParseError) -> MsaError {
        MsaError::Attr(e)
    }
}

impl From<TraceIoError> for MsaError {
    fn from(e: TraceIoError) -> MsaError {
        MsaError::TraceIo(e)
    }
}

impl From<SnapshotError> for MsaError {
    fn from(e: SnapshotError) -> MsaError {
        MsaError::Snapshot(e)
    }
}

impl From<RecoveryError> for MsaError {
    fn from(e: RecoveryError) -> MsaError {
        MsaError::Recovery(e)
    }
}

impl From<SwapError> for MsaError {
    fn from(e: SwapError) -> MsaError {
        MsaError::Swap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msa_stream::AttrSet;

    #[test]
    fn question_mark_converts_each_source() {
        fn attr() -> Result<AttrSet, MsaError> {
            Ok(AttrSet::parse_checked("A Z")?)
        }
        let e = attr().unwrap_err();
        assert!(matches!(e, MsaError::Attr(_)));
        assert!(e.to_string().starts_with("attr: "), "{e}");
        assert!(std::error::Error::source(&e).is_some());

        fn sql() -> Result<crate::ParsedQuery, MsaError> {
            Ok(crate::parse_query(
                "select nonsense",
                &msa_stream::Schema::packet_headers(),
            )?)
        }
        assert!(matches!(sql().unwrap_err(), MsaError::Sql(_)));
    }

    #[test]
    fn runtime_mutation_errors_render_their_query() {
        let q = AttrSet::parse("AB").unwrap();
        let dup = MsaError::DuplicateQuery(q);
        assert!(dup.to_string().contains("already deployed"), "{dup}");
        assert!(dup.to_string().contains("AB"), "{dup}");
        let unk = MsaError::UnknownQuery(q);
        assert!(unk.to_string().contains("not deployed"), "{unk}");
        let mid = MsaError::MidSwapMutation;
        assert!(mid.to_string().contains("staged"), "{mid}");
        // The leaf variants carry no source; Swap chains to its cause.
        assert!(std::error::Error::source(&dup).is_none());
        assert!(std::error::Error::source(&mid).is_none());
        let swap = MsaError::from(SwapError::ShardCrashed(3));
        assert!(matches!(swap, MsaError::Swap(_)));
        assert!(swap.to_string().starts_with("swap: "), "{swap}");
        assert!(std::error::Error::source(&swap).is_some());
    }
}
