//! The adaptive runtime: drift detection → background re-planning →
//! epoch-boundary hot-swap, with rollback and record-counted backoff.
//!
//! [`crate::MultiAggregator`] adapts by *retiring* its serial executor
//! and starting a fresh one — correct, but the new executor starts
//! cold. This module is the sharded, transactional version: an
//! [`AdaptiveRuntime`] wraps a [`ShardedExecutor`], watches the live
//! per-table collision telemetry against the cost model's predictions,
//! re-plans in the background when they diverge beyond a margin, and
//! installs the winning plan through the hot-swap transaction of
//! [`msa_gigascope::swap`] — every counter, finished result and
//! degradation promise carried over bit-exactly, with automatic
//! rollback (and a `replans_rolled_back` tick) if the handoff fails
//! validation.
//!
//! Everything is record-counted and seeded: drift checks fire at epoch
//! boundaries, swaps execute at the *next* boundary after they are
//! staged (so a staged transaction is an observable state —
//! [`MsaError::MidSwapMutation`]), and a rollback backs off for a
//! doubling number of epochs before the detector may stage again.
//! Runtime query add/remove ride the same transaction, so a query set
//! change is exactly as safe as a re-plan.

use crate::adaptive::{calibration_points, drift, refine_stats, AdaptivePolicy};
use crate::error::MsaError;
use msa_collision::LinearModel;
use msa_gigascope::executor::ValueSource;
use msa_gigascope::{
    BoundsReport, CostParams, FaultPlan, GuardPolicy, Hfta, RunReport, ShardedExecutor, SwapFault,
    SwapReport,
};
use msa_optimizer::cost::{rates, CostContext};
use msa_optimizer::{propose_replan, Algorithm, ClusterHandling, Plan, Planner, PlannerOptions};
use msa_stream::{AttrSet, DatasetStats, Record};

/// Knobs of the adaptive loop, layered on [`AdaptivePolicy`] (the drift
/// detector's thresholds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RuntimePolicy {
    /// Drift-detector thresholds (check cadence, relative deviation,
    /// noise floor).
    pub adaptive: AdaptivePolicy,
    /// Stage a swap only when the candidate plan's predicted
    /// total-cost improvement clears this relative margin — the same
    /// margin the acceptance drill checks post-swap collision rates
    /// against.
    pub improvement_margin: f64,
    /// Epochs to wait after a rollback before the detector may stage
    /// again; doubles on every consecutive rollback and resets on
    /// commit. Record-counted (epochs close on record timestamps,
    /// never wall-clock).
    pub backoff_epochs: u64,
    /// Before concluding the *data* drifted, refit the collision
    /// model's slope µ through the live telemetry and re-check: a pure
    /// model miscalibration then updates the model and keeps the plan,
    /// paying no swap pause.
    pub recalibrate: bool,
}

impl Default for RuntimePolicy {
    fn default() -> RuntimePolicy {
        RuntimePolicy {
            adaptive: AdaptivePolicy::default(),
            improvement_margin: 0.05,
            backoff_epochs: 2,
            recalibrate: true,
        }
    }
}

impl RuntimePolicy {
    /// A policy that never re-plans: the static baseline of the
    /// differential matrix. The runtime still supports explicit
    /// [`AdaptiveRuntime::request_replan`] and query mutations.
    pub fn frozen() -> RuntimePolicy {
        RuntimePolicy {
            adaptive: AdaptivePolicy {
                drift_threshold: f64::INFINITY,
                ..AdaptivePolicy::default()
            },
            ..RuntimePolicy::default()
        }
    }
}

/// Construction options for an [`AdaptiveRuntime`].
#[derive(Clone, Debug)]
pub struct RuntimeOptions {
    /// LFTA memory budget in 4-byte words.
    pub m_words: f64,
    /// Epoch length in microseconds.
    pub epoch_micros: u64,
    /// Hash seed (shards derive their own deterministically).
    pub seed: u64,
    /// Shard count.
    pub shards: usize,
    /// Phantom-choice algorithm.
    pub algorithm: Algorithm,
    /// Probe / eviction costs.
    pub params: CostParams,
    /// Flow-length handling.
    pub clustering: ClusterHandling,
    /// The adaptive loop's knobs.
    pub policy: RuntimePolicy,
    /// Deployment-wide durability (required for swap crash drills).
    pub durable: bool,
    /// Overload guard policy, applied per shard with budget shares.
    pub guard: Option<GuardPolicy>,
    /// Channel-level fault injection.
    pub faults: Option<FaultPlan>,
    /// Metric-value source for SUM/MIN/MAX aggregates.
    pub value_source: ValueSource,
    /// Starting collision model — inject an offline-calibrated slope
    /// here (e.g. from [`crate::adaptive::calibration_points`]) when
    /// the deployment should trust measured collision behaviour over
    /// the paper's constants.
    pub model: LinearModel,
}

impl RuntimeOptions {
    /// Defaults for a budget of `m_words`: one shard, 1 s epochs,
    /// default adaptive policy, no durability, no guard.
    pub fn new(m_words: f64) -> RuntimeOptions {
        RuntimeOptions {
            m_words,
            epoch_micros: 1_000_000,
            seed: 0,
            shards: 1,
            algorithm: Algorithm::default(),
            params: CostParams::paper(),
            clustering: ClusterHandling::default(),
            policy: RuntimePolicy::default(),
            durable: false,
            guard: None,
            faults: None,
            value_source: ValueSource::None,
            model: LinearModel::paper_no_intercept(),
        }
    }
}

/// Why a swap was staged — carried into the [`ReplanEvent`] record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplanTrigger {
    /// The drift detector fired and the background re-planner's
    /// candidate cleared the improvement margin.
    Drift,
    /// An explicit [`AdaptiveRuntime::request_replan`].
    Requested,
    /// A runtime [`AdaptiveRuntime::add_query`].
    AddQuery,
    /// A runtime [`AdaptiveRuntime::remove_query`].
    RemoveQuery,
}

/// One executed hot-swap transaction, as the runtime saw it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplanEvent {
    /// What staged the transaction.
    pub trigger: ReplanTrigger,
    /// The transaction's epoch and outcome.
    pub report: SwapReport,
    /// Measured drift at staging time (0 for explicit triggers).
    pub drift: f64,
    /// Predicted relative improvement of the staged plan.
    pub improvement: f64,
}

/// Everything a finished adaptive run produced.
#[derive(Clone, Debug)]
pub struct RuntimeOutput {
    /// Merged cost/throughput report (including the
    /// `replans_committed` / `replans_rolled_back` ledger).
    pub report: RunReport,
    /// Merged host-side combiner with every closed epoch's exact
    /// results — retired queries included.
    pub hfta: Hfta,
    /// Every executed swap transaction, in order.
    pub replans: Vec<ReplanEvent>,
    /// The query set deployed at the end of the run.
    pub queries: Vec<AttrSet>,
}

struct StagedSwap {
    plan: Plan,
    queries: Vec<AttrSet>,
    at_epoch: u64,
    trigger: ReplanTrigger,
    drift: f64,
    improvement: f64,
}

/// The adaptive deployment: a [`ShardedExecutor`] plus the closed loop
/// that keeps its plan matched to the stream.
pub struct AdaptiveRuntime {
    opts: RuntimeOptions,
    queries: Vec<AttrSet>,
    stats: DatasetStats,
    model: LinearModel,
    plan: Plan,
    exec: ShardedExecutor,
    staged: Option<StagedSwap>,
    swap_fault: SwapFault,
    replans: Vec<ReplanEvent>,
    epochs_since_check: u64,
    last_epoch_seen: Option<u64>,
    backoff_until: u64,
    backoff_len: u64,
}

impl AdaptiveRuntime {
    /// Plans `queries` against `stats` and deploys the plan.
    pub fn new(
        queries: Vec<AttrSet>,
        stats: DatasetStats,
        opts: RuntimeOptions,
    ) -> Result<AdaptiveRuntime, MsaError> {
        if queries.is_empty() {
            return Err(MsaError::State("need at least one query"));
        }
        let model = opts.model;
        let plan = plan_for(&queries, &stats, &model, &opts);
        let exec = deploy(&plan, &opts)?;
        Ok(AdaptiveRuntime {
            backoff_len: opts.policy.backoff_epochs.max(1),
            opts,
            queries,
            stats,
            model,
            plan,
            exec,
            staged: None,
            swap_fault: SwapFault::none(),
            replans: Vec::new(),
            epochs_since_check: 0,
            last_epoch_seen: None,
            backoff_until: 0,
        })
    }

    /// The plan currently deployed.
    pub fn current_plan(&self) -> &Plan {
        &self.plan
    }

    /// The query set currently deployed, in slot order.
    pub fn queries(&self) -> &[AttrSet] {
        &self.queries
    }

    /// The current statistics belief.
    pub fn stats(&self) -> &DatasetStats {
        &self.stats
    }

    /// The collision model in use (recalibration may have refit µ).
    pub fn model(&self) -> LinearModel {
        self.model
    }

    /// Every executed swap so far.
    pub fn replans(&self) -> &[ReplanEvent] {
        &self.replans
    }

    /// True when a transaction is staged for the next epoch boundary.
    pub fn swap_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// Live degraded-answer bounds (see [`ShardedExecutor::bounds`]).
    pub fn bounds(&self) -> BoundsReport {
        self.exec.bounds()
    }

    /// The underlying deployment (telemetry inspection).
    pub fn executor(&self) -> &ShardedExecutor {
        &self.exec
    }

    /// Arms a one-shot [`SwapFault`] consumed by the next executed
    /// transaction — the rollback and crash drills.
    pub fn with_swap_fault(&mut self, fault: SwapFault) {
        self.swap_fault = fault;
    }

    /// Measured drift of the live telemetry against the deployed
    /// plan's predicted collision rates.
    pub fn current_drift(&self) -> f64 {
        let ctx = self.cost_context();
        let predicted = rates(&self.plan.configuration, &self.plan.allocation, &ctx);
        drift(
            &predicted,
            &self.exec.table_stats(),
            &self.opts.policy.adaptive,
        )
    }

    /// Unconditionally re-plans against the current statistics belief
    /// and stages the result for the next epoch boundary (drills,
    /// benches). Fails with [`MsaError::MidSwapMutation`] if a
    /// transaction is already staged.
    pub fn request_replan(&mut self) -> Result<(), MsaError> {
        if self.staged.is_some() {
            return Err(MsaError::MidSwapMutation);
        }
        let observed = self.exec.table_stats();
        let refined = refine_stats(
            &self.stats,
            &self.plan.configuration,
            &self.plan.allocation,
            &self.model,
            &observed,
            &self.opts.policy.adaptive,
        );
        let proposal = propose_replan(
            &self.queries,
            &refined,
            &self.model,
            &self.planner_options(),
            &self.plan,
        );
        self.stats = refined;
        self.stage(StagedSwap {
            plan: proposal.plan,
            queries: self.queries.clone(),
            at_epoch: self.exec.current_epoch() + 1,
            trigger: ReplanTrigger::Requested,
            drift: 0.0,
            improvement: proposal.improvement,
        });
        Ok(())
    }

    /// Adds `query` to the deployment through the hot-swap path: the
    /// new plan (covering the extended query set) installs at the next
    /// epoch boundary; history of existing queries is untouched.
    pub fn add_query(&mut self, query: AttrSet) -> Result<(), MsaError> {
        if self.staged.is_some() {
            return Err(MsaError::MidSwapMutation);
        }
        if self.queries.contains(&query) {
            return Err(MsaError::DuplicateQuery(query));
        }
        // A never-observed relation needs a cardinality prior to plan
        // with: the product of its attributes' known marginals, capped
        // by the record count — coarse, but the drift loop corrects it
        // from live telemetry within a few epochs.
        if self.stats.groups_opt(query).is_none() {
            let mut est: f64 = 1.0;
            for a in query.iter() {
                let single = AttrSet::single(a);
                est *= self.stats.groups_opt(single).map_or(32.0, |g| g as f64);
            }
            let est = est.min(self.stats.records() as f64).max(1.0);
            self.stats.set_groups(query, est.round() as usize);
        }
        let mut queries = self.queries.clone();
        queries.push(query);
        self.stage_mutation(queries, ReplanTrigger::AddQuery);
        Ok(())
    }

    /// Removes `query` from the deployment through the hot-swap path.
    /// Its already-finished epochs stay in the merged output.
    pub fn remove_query(&mut self, query: AttrSet) -> Result<(), MsaError> {
        if self.staged.is_some() {
            return Err(MsaError::MidSwapMutation);
        }
        if !self.queries.contains(&query) {
            return Err(MsaError::UnknownQuery(query));
        }
        if self.queries.len() == 1 {
            return Err(MsaError::State("cannot remove the last query"));
        }
        let queries: Vec<AttrSet> = self
            .queries
            .iter()
            .copied()
            .filter(|&q| q != query)
            .collect();
        self.stage_mutation(queries, ReplanTrigger::RemoveQuery);
        Ok(())
    }

    /// Feeds `records` (timestamp-ordered), executing staged swaps and
    /// running the drift detector at every epoch boundary crossed.
    pub fn run(&mut self, records: &[Record]) -> Result<(), MsaError> {
        let em = self.opts.epoch_micros.max(1);
        let mut i = 0;
        while i < records.len() {
            let epoch = records[i].ts_micros / em;
            let end = i + records[i..].partition_point(|r| r.ts_micros / em == epoch);
            self.enter_epoch(epoch)?;
            self.exec.run(&records[i..end]);
            i = end;
        }
        Ok(())
    }

    /// Flushes the final epoch and merges everything. A swap still
    /// staged when the stream ends is abandoned (it never ran — no
    /// ledger tick).
    pub fn finish(mut self) -> RuntimeOutput {
        self.staged = None;
        let (report, hfta) = self.exec.finish();
        RuntimeOutput {
            report,
            hfta,
            replans: self.replans,
            queries: self.queries,
        }
    }

    fn planner_options(&self) -> PlannerOptions {
        PlannerOptions {
            m_words: self.opts.m_words,
            algorithm: self.opts.algorithm,
            params: self.opts.params,
            clustering: self.opts.clustering,
            peak_load: None,
        }
    }

    fn cost_context(&self) -> CostContext<'_> {
        CostContext {
            stats: &self.stats,
            model: &self.model,
            params: self.opts.params,
            clustering: self.opts.clustering,
        }
    }

    fn stage(&mut self, staged: StagedSwap) {
        self.staged = Some(staged);
    }

    fn stage_mutation(&mut self, queries: Vec<AttrSet>, trigger: ReplanTrigger) {
        let plan = plan_for(&queries, &self.stats, &self.model, &self.opts);
        self.stage(StagedSwap {
            plan,
            queries,
            at_epoch: self.exec.current_epoch() + 1,
            trigger,
            drift: 0.0,
            improvement: 0.0,
        });
    }

    /// The boundary hook: executes a due staged transaction, then runs
    /// the drift detector if a boundary was crossed.
    fn enter_epoch(&mut self, epoch: u64) -> Result<(), MsaError> {
        if self.staged.as_ref().is_some_and(|s| s.at_epoch <= epoch) {
            self.exec.align_to_epoch(epoch);
            self.execute_staged(epoch)?;
        }
        let crossed = match self.last_epoch_seen {
            Some(prev) if epoch > prev => epoch - prev,
            Some(_) => 0,
            None => 0,
        };
        self.last_epoch_seen = Some(epoch);
        if crossed == 0 {
            return Ok(());
        }
        self.epochs_since_check += crossed;
        let policy = self.opts.policy;
        if self.epochs_since_check < policy.adaptive.check_every_epochs
            || self.staged.is_some()
            || epoch < self.backoff_until
        {
            return Ok(());
        }
        self.epochs_since_check = 0;
        self.maybe_stage_replan(epoch);
        Ok(())
    }

    /// The drift detector + background re-planner (record-counted: runs
    /// inside the boundary hook, never on a clock).
    fn maybe_stage_replan(&mut self, epoch: u64) {
        let policy = self.opts.policy;
        let observed = self.exec.table_stats();
        let ctx = self.cost_context();
        let predicted = rates(&self.plan.configuration, &self.plan.allocation, &ctx);
        let d = drift(&predicted, &observed, &policy.adaptive);
        if d <= policy.adaptive.drift_threshold {
            return;
        }
        if policy.recalibrate {
            // Is the divergence a *model* error? Refit µ through the
            // believed cardinalities; if the refit model explains the
            // telemetry, adopt it and keep the plan.
            let pts = calibration_points(
                &self.stats,
                &self.plan.configuration,
                &self.plan.allocation,
                &observed,
                &policy.adaptive,
            );
            let refit = LinearModel::fit_through_intercept(self.model.alpha, pts);
            let refit_ctx = CostContext {
                stats: &self.stats,
                model: &refit,
                params: self.opts.params,
                clustering: self.opts.clustering,
            };
            let repredicted = rates(&self.plan.configuration, &self.plan.allocation, &refit_ctx);
            if drift(&repredicted, &observed, &policy.adaptive) <= policy.adaptive.drift_threshold {
                self.model = refit;
                self.exec.reset_table_stats();
                return;
            }
        }
        // The data drifted: refresh the statistics from the telemetry
        // and re-plan in the background.
        let refined = refine_stats(
            &self.stats,
            &self.plan.configuration,
            &self.plan.allocation,
            &self.model,
            &observed,
            &policy.adaptive,
        );
        let proposal = propose_replan(
            &self.queries,
            &refined,
            &self.model,
            &self.planner_options(),
            &self.plan,
        );
        self.stats = refined;
        if !proposal.clears(policy.improvement_margin) {
            // The refreshed statistics don't justify a swap pause; keep
            // the plan, watch a fresh window against the new belief.
            self.exec.reset_table_stats();
            return;
        }
        self.stage(StagedSwap {
            plan: proposal.plan,
            queries: self.queries.clone(),
            at_epoch: epoch + 1,
            trigger: ReplanTrigger::Drift,
            drift: d,
            improvement: proposal.improvement,
        });
    }

    /// Executes the staged transaction at the current boundary.
    fn execute_staged(&mut self, epoch: u64) -> Result<(), MsaError> {
        let Some(staged) = self.staged.take() else {
            return Ok(());
        };
        let fault = std::mem::take(&mut self.swap_fault);
        let report = self.exec.hot_swap(staged.plan.to_physical(), &fault)?;
        if report.outcome.committed() {
            self.plan = staged.plan;
            self.queries = staged.queries;
            self.backoff_len = self.opts.policy.backoff_epochs.max(1);
            self.backoff_until = 0;
        } else {
            // Record-counted doubling backoff: the detector stays quiet
            // for `backoff_len` epochs after a rollback, doubling on
            // each consecutive one.
            self.backoff_until = epoch + self.backoff_len;
            self.backoff_len = self.backoff_len.saturating_mul(2);
        }
        // Either way the swap window closed a statistics window.
        self.exec.reset_table_stats();
        self.replans.push(ReplanEvent {
            trigger: staged.trigger,
            report,
            drift: staged.drift,
            improvement: staged.improvement,
        });
        Ok(())
    }
}

fn plan_for(
    queries: &[AttrSet],
    stats: &DatasetStats,
    model: &LinearModel,
    opts: &RuntimeOptions,
) -> Plan {
    let options = PlannerOptions {
        m_words: opts.m_words,
        algorithm: opts.algorithm,
        params: opts.params,
        clustering: opts.clustering,
        peak_load: None,
    };
    Planner::new(queries, stats, model, &options).plan(&options)
}

fn deploy(plan: &Plan, opts: &RuntimeOptions) -> Result<ShardedExecutor, MsaError> {
    let mut exec = ShardedExecutor::new(
        plan.to_physical(),
        opts.params,
        opts.epoch_micros,
        opts.seed,
        opts.shards,
    )
    .map_err(|_| MsaError::State("a deployment needs at least one shard"))?
    .with_value_source(opts.value_source);
    if let Some(faults) = &opts.faults {
        exec = exec.with_faults(faults);
    }
    if let Some(guard) = opts.guard {
        exec = exec.with_guard(guard);
    }
    if opts.durable {
        exec = exec.with_durability();
    }
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msa_gigascope::SwapOutcome;
    use msa_stream::UniformStreamBuilder;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    fn base_stats() -> DatasetStats {
        DatasetStats::from_group_counts([(s("A"), 100), (s("B"), 100), (s("AB"), 2000)], 100_000)
    }

    #[test]
    fn mutations_while_staged_are_refused() {
        let mut rt = AdaptiveRuntime::new(
            vec![s("A"), s("B")],
            base_stats(),
            RuntimeOptions::new(10_000.0),
        )
        .unwrap();
        rt.request_replan().unwrap();
        assert!(rt.swap_staged());
        assert!(matches!(
            rt.add_query(s("AB")),
            Err(MsaError::MidSwapMutation)
        ));
        assert!(matches!(
            rt.remove_query(s("A")),
            Err(MsaError::MidSwapMutation)
        ));
        assert!(matches!(
            rt.request_replan(),
            Err(MsaError::MidSwapMutation)
        ));
    }

    #[test]
    fn duplicate_and_unknown_queries_are_refused() {
        let mut rt = AdaptiveRuntime::new(
            vec![s("A"), s("B")],
            base_stats(),
            RuntimeOptions::new(10_000.0),
        )
        .unwrap();
        assert!(matches!(
            rt.add_query(s("A")),
            Err(MsaError::DuplicateQuery(q)) if q == s("A")
        ));
        assert!(matches!(
            rt.remove_query(s("AB")),
            Err(MsaError::UnknownQuery(q)) if q == s("AB")
        ));
        let mut solo =
            AdaptiveRuntime::new(vec![s("A")], base_stats(), RuntimeOptions::new(10_000.0))
                .unwrap();
        assert!(matches!(solo.remove_query(s("A")), Err(MsaError::State(_))));
    }

    #[test]
    fn requested_replan_commits_at_the_next_boundary() {
        let stream = UniformStreamBuilder::new(2, 50)
            .records(6_000)
            .duration_secs(3.0)
            .seed(9)
            .build();
        let mut rt = AdaptiveRuntime::new(
            vec![s("A"), s("B")],
            base_stats(),
            RuntimeOptions::new(10_000.0),
        )
        .unwrap();
        rt.run(&stream.records[..2_000]).unwrap();
        rt.request_replan().unwrap();
        rt.run(&stream.records[2_000..]).unwrap();
        assert!(!rt.swap_staged(), "the boundary executed the swap");
        let out = rt.finish();
        assert_eq!(out.replans.len(), 1);
        assert!(out.replans[0].report.outcome.committed());
        assert_eq!(out.report.replans_committed, 1);
        assert_eq!(out.report.replans_rolled_back, 0);
        assert_eq!(out.report.records, 6_000);
    }

    #[test]
    fn forced_rollback_ticks_the_ledger_and_backs_off() {
        let stream = UniformStreamBuilder::new(2, 50)
            .records(8_000)
            .duration_secs(4.0)
            .seed(10)
            .build();
        let mut rt = AdaptiveRuntime::new(
            vec![s("A"), s("B")],
            base_stats(),
            RuntimeOptions::new(10_000.0),
        )
        .unwrap();
        rt.run(&stream.records[..2_000]).unwrap();
        rt.with_swap_fault(SwapFault::failing_validation());
        rt.request_replan().unwrap();
        rt.run(&stream.records[2_000..]).unwrap();
        let out = rt.finish();
        assert_eq!(out.replans.len(), 1);
        assert!(matches!(
            out.replans[0].report.outcome,
            SwapOutcome::RolledBack(_)
        ));
        assert_eq!(out.report.replans_committed, 0);
        assert_eq!(out.report.replans_rolled_back, 1);
        // Rollback leaves the results whole.
        assert_eq!(out.report.records, 8_000);
    }

    #[test]
    fn add_and_remove_query_flow_through_the_swap_path() {
        let stream = UniformStreamBuilder::new(2, 50)
            .records(9_000)
            .duration_secs(3.0)
            .seed(11)
            .build();
        let mut rt = AdaptiveRuntime::new(
            vec![s("A"), s("B")],
            base_stats(),
            RuntimeOptions::new(10_000.0),
        )
        .unwrap();
        rt.run(&stream.records[..3_000]).unwrap();
        rt.add_query(s("AB")).unwrap();
        rt.run(&stream.records[3_000..6_000]).unwrap();
        assert_eq!(rt.queries().len(), 3);
        rt.remove_query(s("B")).unwrap();
        rt.run(&stream.records[6_000..]).unwrap();
        assert_eq!(rt.queries(), &[s("A"), s("AB")]);
        let out = rt.finish();
        assert_eq!(out.report.replans_committed, 2);
        // The removed query's closed epochs survive in the output.
        let b_total: u64 = out.hfta.totals(s("B")).values().sum();
        assert!(b_total > 0, "retired query history kept");
        assert_eq!(out.report.records, 9_000);
    }
}
