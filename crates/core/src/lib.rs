//! High-level API for multiple aggregations over data streams.
//!
//! This crate is the entry point a downstream user adopts. It wires the
//! substrates together:
//!
//! 1. declare the aggregation queries (grouping-attribute subsets) and
//!    the LFTA memory budget;
//! 2. the engine bootstraps dataset statistics from a stream prefix (or
//!    accepts precomputed statistics);
//! 3. the optimizer picks a configuration of phantoms and a space
//!    allocation (GCSL by default — the paper's recommendation);
//! 4. the two-level executor streams records, producing exact per-epoch
//!    aggregates and cost accounting;
//! 5. optionally, at epoch boundaries the engine compares observed and
//!    predicted collision rates and **replans** when the stream has
//!    drifted (the adaptivity the paper's §8 sketches).
//!
//! For sharded deployments, [`runtime::AdaptiveRuntime`] closes the
//! same loop transactionally: drift detection from live telemetry,
//! background re-planning, and an epoch-boundary hot-swap with
//! validation, rollback and record-counted backoff — plus runtime query
//! add/remove through the same swap path.
//!
//! ```
//! use msa_core::{MultiAggregator, EngineOptions};
//! use msa_stream::{AttrSet, UniformStreamBuilder};
//!
//! let stream = UniformStreamBuilder::new(4, 500).records(20_000).build();
//! let queries = vec![
//!     AttrSet::parse("AB").unwrap(),
//!     AttrSet::parse("BC").unwrap(),
//! ];
//! let mut engine = MultiAggregator::new(queries, EngineOptions::new(20_000.0));
//! for r in &stream.records {
//!     engine.push(*r);
//! }
//! let output = engine.finish();
//! assert_eq!(output.report.records as usize, 20_000);
//! ```

#![deny(unsafe_code)]

pub mod adaptive;
pub mod engine;
pub mod error;
pub mod runtime;
pub mod sql;

pub use adaptive::AdaptivePolicy;
pub use engine::{AggregationOutput, EngineOptions, ModelKind, MultiAggregator};
pub use error::MsaError;
pub use runtime::{
    AdaptiveRuntime, ReplanEvent, ReplanTrigger, RuntimeOptions, RuntimeOutput, RuntimePolicy,
};
pub use sql::{parse_query, ParsedQuery, QuerySet, SqlError};

// Re-export the vocabulary types so most users need only this crate.
pub use msa_collision::{AsymptoticModel, CollisionModel, LinearModel, PreciseModel};
pub use msa_gigascope::executor::ValueSource;
pub use msa_gigascope::table::AggState;
pub use msa_gigascope::{
    shard_of, shard_seed, BoundsReport, Burst, ChannelFaults, CheckpointStore, CostParams,
    CrashPlan, DegradationPolicy, DriftKind, DriftPlan, EvictionChannel, EvictionLog, Executor,
    ExecutorConfig, FaultPlan, GuardLevel, GuardPolicy, GuardTransition, HandoffViolation, Hfta,
    Ingest, IngestMode, LossBreakdown, LossClass, OverloadGuard, PhysicalPlan, PoisonRecord,
    QueryBounds, RecoveredArtifacts, RecoveryError, RollbackReason, RunReport, ScrubReport,
    ShardError, ShardFault, ShardHealth, ShardHeartbeat, ShardState, ShardedExecutor,
    ShardedSnapshot, ShedDecision, Snapshot, SnapshotError, StoreHandle, StoreRecovery, StoreStats,
    SupervisorPolicy, SwapCrashPoint, SwapError, SwapFault, SwapOutcome, SwapReport,
};
pub use msa_optimizer::{
    propose_replan, Algorithm, AllocStrategy, ClusterHandling, Configuration, Plan, Planner,
    PlannerOptions, ReplanProposal,
};
pub use msa_stream::{
    AttrSet, CmpOp, DatasetStats, DiskBackend, Filter, GroupKey, Record, RecordChunk, Schema,
    SimBackend, StorageBackend, StorageFaultPlan, StoreError, StoreErrorKind,
    PROCESSING_WINDOW_SIZE,
};
