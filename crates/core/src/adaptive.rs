//! Adaptive replanning (the paper's §8 future-work direction).
//!
//! §1 argues that because choosing a configuration takes only
//! milliseconds, it "permits adaptive modification of the configuration
//! to changes in the data stream distributions". This module implements
//! that loop: at an epoch boundary, compare each table's *observed*
//! collision rate with the rate the model predicted; if they diverge
//! beyond a threshold, refresh the statistics and replan.
//!
//! Statistics are refreshed by inverting the linear collision model on
//! the observed rates: `x = α + µ·g/(b·l)` gives `g ≈ (x−α)·b·l/µ` for
//! every instantiated table (flow lengths come from the tables' measured
//! run lengths, and `α`/`µ` from the *live* model — which recalibration
//! may have refit, see [`calibration_points`]). Relations that are not
//! instantiated have no observation, so their group counts are scaled by
//! the median correction factor of the instantiated ones — a coarse but
//! serviceable extrapolation that keeps the feeding graph's relative
//! cardinalities plausible.

use msa_collision::LinearModel;
use msa_gigascope::table::TableStats;
use msa_optimizer::{Allocation, Configuration};
use msa_stream::{AttrSet, DatasetStats};
use std::collections::BTreeMap;

/// When and how aggressively to replan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptivePolicy {
    /// Check for drift every `check_every_epochs` epoch closes.
    pub check_every_epochs: u64,
    /// Replan when some table's observed collision rate deviates from
    /// the predicted rate by more than this relative amount.
    pub drift_threshold: f64,
    /// Ignore tables with fewer probes than this (noise floor).
    pub min_probes: u64,
}

impl Default for AdaptivePolicy {
    fn default() -> AdaptivePolicy {
        AdaptivePolicy {
            check_every_epochs: 1,
            drift_threshold: 0.5,
            min_probes: 1000,
        }
    }
}

/// Largest relative deviation between observed and predicted collision
/// rates across instantiated tables (0 when nothing qualifies).
pub fn drift(
    predicted: &BTreeMap<AttrSet, f64>,
    observed: &[(AttrSet, TableStats)],
    policy: &AdaptivePolicy,
) -> f64 {
    let mut worst = 0.0f64;
    for (attrs, stats) in observed {
        if stats.probes < policy.min_probes {
            continue;
        }
        let Some(&pred) = predicted.get(attrs) else {
            continue;
        };
        let obs = stats.collision_rate();
        let denom = pred.max(1e-3);
        worst = worst.max((obs - denom).abs() / denom);
    }
    worst
}

/// Collision-model calibration points from live table telemetry:
/// `(load, rate)` pairs with `load = g/(b·l)` (the believed group count
/// over the table's buckets, de-clustered for raw tables) and `rate`
/// the measured collision fraction. Feed the result to
/// [`msa_collision::LinearModel::fit_through_intercept`] to refit the
/// model's slope µ while keeping the believed cardinalities —
/// the dual of [`refine_stats`], which adjusts cardinalities while
/// keeping the slope. The adaptive runtime uses the calibrated slope to
/// decide whether observed drift is a *model* error (refit and keep the
/// plan) or a *data* error (re-plan).
pub fn calibration_points(
    stats: &DatasetStats,
    cfg: &Configuration,
    alloc: &Allocation,
    observed: &[(AttrSet, TableStats)],
    policy: &AdaptivePolicy,
) -> Vec<(f64, f64)> {
    let mut points = Vec::new();
    for (attrs, t) in observed {
        if t.probes < policy.min_probes || !cfg.contains(*attrs) {
            continue;
        }
        let Some(g) = stats.groups_opt(*attrs) else {
            continue;
        };
        let raw = cfg.parent(*attrs).is_none();
        let l = if raw {
            t.avg_run_length().max(1.0)
        } else {
            1.0
        };
        let b = alloc.buckets(*attrs).max(1.0);
        points.push((g as f64 / (b * l), t.collision_rate()));
    }
    points
}

/// Refreshes `stats` from the observed table behaviour (see module
/// docs), inverting `model`'s rate line on every instantiated table.
pub fn refine_stats(
    stats: &DatasetStats,
    cfg: &Configuration,
    alloc: &Allocation,
    model: &LinearModel,
    observed: &[(AttrSet, TableStats)],
    policy: &AdaptivePolicy,
) -> DatasetStats {
    let mut new_groups: BTreeMap<AttrSet, usize> = BTreeMap::new();
    let mut ratios: Vec<f64> = Vec::new();
    let mut new_flows: BTreeMap<AttrSet, f64> = BTreeMap::new();

    for (attrs, t) in observed {
        if t.probes < policy.min_probes || !cfg.contains(*attrs) {
            continue;
        }
        let raw = cfg.parent(*attrs).is_none();
        let l = if raw {
            t.avg_run_length().max(1.0)
        } else {
            1.0
        };
        let b = alloc.buckets(*attrs).max(1.0);
        let excess = (t.collision_rate() - model.alpha).max(0.0);
        let g_est = (excess * b * l / model.mu.max(1e-9)).max(1.0);
        new_groups.insert(*attrs, g_est.round() as usize);
        if raw {
            new_flows.insert(*attrs, l);
        }
        if let Some(old) = stats.groups_opt(*attrs) {
            if old > 0 {
                ratios.push(g_est / old as f64);
            }
        }
    }

    // Median correction factor for unobserved relations.
    let correction = if ratios.is_empty() {
        1.0
    } else {
        ratios.sort_by(f64::total_cmp);
        ratios[ratios.len() / 2]
    };

    let mut out = DatasetStats::from_group_counts(
        stats.known_sets().map(|r| {
            let g = match new_groups.get(&r) {
                Some(&g) => g,
                None => ((stats.groups(r) as f64 * correction).round() as usize).max(1),
            };
            (r, g)
        }),
        stats.records(),
    );
    for r in stats.known_sets() {
        let l = new_flows
            .get(&r)
            .copied()
            .unwrap_or_else(|| stats.flow_length(r));
        out.set_flow_length(r, l.max(1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msa_collision::PAPER_MU;

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    fn table(probes: u64, collisions: u64, absorbed: u64) -> TableStats {
        TableStats {
            probes,
            collisions,
            absorbed_before_eviction: absorbed,
        }
    }

    #[test]
    fn drift_zero_when_rates_match() {
        let predicted: BTreeMap<AttrSet, f64> = [(s("A"), 0.1)].into_iter().collect();
        let observed = vec![(s("A"), table(10_000, 1_000, 1_000))];
        let d = drift(&predicted, &observed, &AdaptivePolicy::default());
        assert!(d < 1e-9, "drift {d}");
    }

    #[test]
    fn drift_detects_rate_blowup() {
        let predicted: BTreeMap<AttrSet, f64> = [(s("A"), 0.1)].into_iter().collect();
        let observed = vec![(s("A"), table(10_000, 5_000, 5_000))];
        let d = drift(&predicted, &observed, &AdaptivePolicy::default());
        assert!((d - 4.0).abs() < 1e-9, "drift {d}");
    }

    #[test]
    fn drift_ignores_low_traffic_tables() {
        let predicted: BTreeMap<AttrSet, f64> = [(s("A"), 0.1)].into_iter().collect();
        let observed = vec![(s("A"), table(10, 9, 9))];
        let d = drift(&predicted, &observed, &AdaptivePolicy::default());
        assert_eq!(d, 0.0);
    }

    #[test]
    fn calibration_points_recover_the_true_slope() {
        // A table whose believed cardinality is right but whose rate
        // follows µ = 0.5 instead of the paper's 0.354: the calibration
        // pipeline refits the slope exactly.
        let stats = DatasetStats::from_group_counts([(s("A"), 500)], 10_000);
        let cfg = Configuration::from_queries(&[s("A")]);
        let mut alloc = Allocation::default();
        alloc.set(s("A"), 1000.0);
        let rate = 0.5 * 500.0 / 1000.0;
        let collisions = (10_000.0 * rate) as u64;
        let observed = vec![(s("A"), table(10_000, collisions, collisions))];
        let pts = calibration_points(&stats, &cfg, &alloc, &observed, &AdaptivePolicy::default());
        assert_eq!(pts.len(), 1);
        let m = msa_collision::LinearModel::fit_through_intercept(0.0, pts);
        assert!((m.mu - 0.5).abs() < 1e-9, "mu = {}", m.mu);
    }

    #[test]
    fn calibration_skips_unknown_and_quiet_tables() {
        let stats = DatasetStats::from_group_counts([(s("A"), 500)], 10_000);
        let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[]);
        let mut alloc = Allocation::default();
        alloc.set(s("A"), 1000.0);
        alloc.set(s("B"), 1000.0);
        let observed = vec![
            (s("A"), table(10, 5, 5)),         // below the noise floor
            (s("B"), table(10_000, 100, 100)), // no believed cardinality
        ];
        let pts = calibration_points(&stats, &cfg, &alloc, &observed, &AdaptivePolicy::default());
        assert!(pts.is_empty());
    }

    #[test]
    fn refine_inverts_linear_model() {
        let stats = DatasetStats::from_group_counts([(s("A"), 100), (s("B"), 100)], 10_000);
        let cfg = Configuration::from_queries(&[s("A"), s("B")]);
        let mut alloc = Allocation::default();
        alloc.set(s("A"), 1000.0);
        alloc.set(s("B"), 1000.0);
        // Observed rate 0.354 → g = x·b/µ = 1000 (run length 1).
        let observed = vec![
            (s("A"), table(10_000, 3_540, 3_540)),
            (s("B"), table(10_000, 3_540, 3_540)),
        ];
        let refined = refine_stats(
            &stats,
            &cfg,
            &alloc,
            &LinearModel::paper_no_intercept(),
            &observed,
            &AdaptivePolicy::default(),
        );
        assert_eq!(refined.groups(s("A")), 1000);
        assert_eq!(refined.groups(s("B")), 1000);
    }

    #[test]
    fn refine_scales_unobserved_relations_by_median() {
        let stats =
            DatasetStats::from_group_counts([(s("A"), 100), (s("B"), 100), (s("AB"), 500)], 10_000);
        let cfg = Configuration::from_queries(&[s("A"), s("B")]);
        let mut alloc = Allocation::default();
        alloc.set(s("A"), 1000.0);
        alloc.set(s("B"), 1000.0);
        // Both observed at 2× their old group count.
        let x = PAPER_MU * 200.0 / 1000.0;
        let collisions = (10_000.0 * x) as u64;
        let observed = vec![
            (s("A"), table(10_000, collisions, collisions)),
            (s("B"), table(10_000, collisions, collisions)),
        ];
        let refined = refine_stats(
            &stats,
            &cfg,
            &alloc,
            &LinearModel::paper_no_intercept(),
            &observed,
            &AdaptivePolicy::default(),
        );
        // AB was not instantiated → scaled by the median ratio (≈ 2).
        let ab = refined.groups(s("AB"));
        assert!((ab as f64 - 1000.0).abs() < 20.0, "AB = {ab}");
    }

    #[test]
    fn refine_keeps_flow_lengths_for_raw_tables() {
        let mut stats = DatasetStats::from_group_counts([(s("A"), 100)], 10_000);
        stats.set_flow_length(s("A"), 4.0);
        let cfg = Configuration::from_queries(&[s("A")]);
        let mut alloc = Allocation::default();
        alloc.set(s("A"), 1000.0);
        // avg run length = absorbed/collisions = 8.
        let observed = vec![(s("A"), table(10_000, 1_000, 8_000))];
        let refined = refine_stats(
            &stats,
            &cfg,
            &alloc,
            &LinearModel::paper_no_intercept(),
            &observed,
            &AdaptivePolicy::default(),
        );
        assert!((refined.flow_length(s("A")) - 8.0).abs() < 1e-9);
    }
}
