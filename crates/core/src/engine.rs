//! The streaming engine: bootstrap → plan → execute → (re)plan.

use crate::adaptive::{drift, refine_stats, AdaptivePolicy};
use msa_collision::{AsymptoticModel, CollisionModel, LinearModel, PreciseModel};
pub use msa_gigascope::executor::ValueSource;
use msa_gigascope::hfta::EpochResult;
use msa_gigascope::{
    BoundsReport, CostParams, Executor, FaultPlan, GuardLevel, GuardPolicy, OverloadGuard,
    RunReport,
};
use msa_optimizer::cost::{end_of_epoch_cost, rates, CostContext};
use msa_optimizer::{
    enforce_peak_load_from, Algorithm, ClusterHandling, PeakLoadMethod, Plan, Planner,
    PlannerOptions,
};
use msa_stream::hash::FastMap;
use msa_stream::{AttrSet, DatasetStats, Filter, GroupKey, Record};

/// Collision-rate model selection (a concrete enum so the engine can own
/// its model without lifetime plumbing).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ModelKind {
    /// Linear `x = α + µ·g/b` (the paper's working model).
    Linear(LinearModel),
    /// The `g/b`-only asymptotic curve.
    Asymptotic,
    /// The exact finite-size precise model.
    Precise,
}

impl CollisionModel for ModelKind {
    fn rate(&self, g: f64, b: f64) -> f64 {
        match self {
            ModelKind::Linear(m) => m.rate(g, b),
            ModelKind::Asymptotic => AsymptoticModel.rate(g, b),
            ModelKind::Precise => PreciseModel.rate(g, b),
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// LFTA memory budget in 4-byte words.
    pub m_words: f64,
    /// Epoch length in microseconds (default 60 s, the paper's
    /// `time/60` queries).
    pub epoch_micros: u64,
    /// Phantom-choice algorithm (default GCSL).
    pub algorithm: Algorithm,
    /// Cost parameters (default `c1 = 1`, `c2 = 50`).
    pub params: CostParams,
    /// Flow-length handling.
    pub clustering: ClusterHandling,
    /// Collision model used for planning.
    pub model: ModelKind,
    /// Records buffered to estimate statistics before the first plan
    /// (ignored when `stats` is supplied).
    pub bootstrap_records: usize,
    /// Precomputed statistics (skips the bootstrap phase).
    pub stats: Option<DatasetStats>,
    /// Adaptive replanning policy (None = plan once).
    pub adaptive: Option<AdaptivePolicy>,
    /// Hash seed.
    pub seed: u64,
    /// Retain per-epoch results (disable for pure cost measurement).
    pub retain_results: bool,
    /// Metric-value source for SUM/MIN/MAX/AVG aggregates (e.g. the
    /// packet-length attribute). Default: count-only.
    pub value_source: ValueSource,
    /// Selection filter applied before aggregation (default: pass all).
    pub filter: Filter,
    /// Runtime overload guard: when the measured per-epoch flush cost
    /// breaches the policy's peak budget `E_p`, the executor degrades
    /// gracefully (shed → phantoms off → allocation repair) and the
    /// engine applies guard-requested repairs at epoch boundaries
    /// (default: no guard).
    pub guard: Option<GuardPolicy>,
    /// Fault-injection plan for the LFTA → HFTA eviction channel
    /// (chaos testing; default: none). Stream-level faults — bursts,
    /// clock skew — must be applied to the records before pushing.
    pub faults: Option<FaultPlan>,
}

impl EngineOptions {
    /// Defaults for a budget of `m_words`.
    pub fn new(m_words: f64) -> EngineOptions {
        EngineOptions {
            m_words,
            epoch_micros: 60_000_000,
            algorithm: Algorithm::default(),
            params: CostParams::paper(),
            clustering: ClusterHandling::default(),
            model: ModelKind::Linear(LinearModel::paper_no_intercept()),
            bootstrap_records: 10_000,
            stats: None,
            adaptive: None,
            seed: 0,
            retain_results: true,
            value_source: ValueSource::None,
            filter: Filter::all(),
            guard: None,
            faults: None,
        }
    }
}

/// Everything a run produced.
#[derive(Clone, Debug)]
pub struct AggregationOutput {
    /// Exact per-epoch aggregation results (all queries, all epochs).
    pub results: Vec<EpochResult>,
    /// Merged cost/throughput report.
    pub report: RunReport,
    /// Number of adaptive replans performed.
    pub replans: usize,
    /// Number of guard-requested allocation repairs applied.
    pub repairs: usize,
    /// The plan in effect at the end of the run (None if the stream
    /// ended during bootstrap with no records at all).
    pub final_plan: Option<Plan>,
    /// The query set the run aggregated, in registration order.
    pub queries: Vec<AttrSet>,
    /// Loss mass the overload guard metered against its degradation
    /// budget (zero when no guard was configured).
    pub records_lost: u64,
}

impl AggregationOutput {
    /// Sums one query's counts across all epochs.
    pub fn totals(&self, query: AttrSet) -> FastMap<GroupKey, u64> {
        self.aggregate_totals(query)
            .into_iter()
            .map(|(k, a)| (k, a.count))
            .collect()
    }

    /// Guaranteed per-query count intervals derived from the run's loss
    /// ledgers: for every query, the fault-free true count lies in
    /// `[lo, hi]`, with every lost record attributed to a
    /// [`msa_gigascope::LossClass`]. Exact runs report the degenerate
    /// interval `lo == hi`.
    pub fn bounds(&self) -> BoundsReport {
        let mut bounds = BoundsReport::from_ledgers(&self.report, &self.queries, |q| {
            self.totals(q).into_iter().collect()
        });
        bounds.records_lost = self.records_lost;
        bounds
    }

    /// Combines one query's full aggregate states (count/sum/min/max of
    /// the metric attribute) across all epochs.
    pub fn aggregate_totals(
        &self,
        query: AttrSet,
    ) -> FastMap<GroupKey, msa_gigascope::table::AggState> {
        let mut out: FastMap<GroupKey, msa_gigascope::table::AggState> = FastMap::default();
        for r in &self.results {
            if r.query == query {
                for (k, a) in &r.aggregates {
                    match out.entry(*k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(a),
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(*a);
                        }
                    }
                }
            }
        }
        out
    }
}

enum State {
    Bootstrapping(Vec<Record>),
    // Boxed: the executor is much larger than the bootstrap buffer
    // handle, and the state is moved during promote/retire.
    Running(Box<Executor>),
}

/// The engine: push records, receive exact epoch aggregates, let the
/// optimizer manage the LFTA layout.
pub struct MultiAggregator {
    queries: Vec<AttrSet>,
    opts: EngineOptions,
    state: State,
    stats: Option<DatasetStats>,
    plan: Option<Plan>,
    results: Vec<EpochResult>,
    merged: RunReport,
    replans: usize,
    repairs: usize,
    current_epoch: u64,
    epochs_since_check: u64,
    executor_generation: u64,
    /// Guard state carried across executor swaps.
    guard_state: Option<OverloadGuard>,
    /// Pre-repair allocation the incremental shrink scan is relative to
    /// (reset by a full replan).
    repair_base: Option<msa_optimizer::Allocation>,
    /// Scale of the last applied repair (1.0 = none); the next repair's
    /// scan resumes below it.
    repair_scale: f64,
}

impl MultiAggregator {
    /// Creates an engine for `queries`.
    ///
    /// # Panics
    /// Panics if `queries` is empty.
    pub fn new(queries: Vec<AttrSet>, opts: EngineOptions) -> MultiAggregator {
        assert!(!queries.is_empty(), "need at least one query");
        let merged = RunReport {
            costs: opts.params,
            ..RunReport::default()
        };
        let mut engine = MultiAggregator {
            stats: opts.stats.clone(),
            state: State::Bootstrapping(Vec::new()),
            plan: None,
            results: Vec::new(),
            merged,
            replans: 0,
            repairs: 0,
            current_epoch: 0,
            epochs_since_check: 0,
            executor_generation: 0,
            guard_state: None,
            repair_base: None,
            repair_scale: 1.0,
            queries,
            opts,
        };
        if engine.stats.is_some() {
            engine.promote(Vec::new());
        }
        engine
    }

    /// Creates an engine from SQL queries in the paper's dialect (see
    /// [`crate::sql`]): the shared `WHERE` filter, epoch length and
    /// metric attribute are read from the queries; `opts` supplies the
    /// memory budget and algorithm choices.
    ///
    /// ```
    /// use msa_core::{EngineOptions, MultiAggregator};
    /// use msa_stream::Schema;
    ///
    /// let engine = MultiAggregator::from_sql(
    ///     &[
    ///         "select srcIP, srcPort, count(*) from R group by srcIP, srcPort, time/60",
    ///         "select dstIP, dstPort, count(*) from R group by dstIP, dstPort, time/60",
    ///     ],
    ///     &Schema::packet_headers(),
    ///     EngineOptions::new(20_000.0),
    /// )
    /// .unwrap();
    /// assert_eq!(engine.replans(), 0);
    /// ```
    pub fn from_sql(
        sqls: &[&str],
        schema: &msa_stream::Schema,
        opts: EngineOptions,
    ) -> Result<MultiAggregator, crate::sql::SqlError> {
        let set = crate::sql::QuerySet::parse(sqls, schema)?;
        let opts = set.configure(opts);
        Ok(MultiAggregator::new(set.group_bys, opts))
    }

    /// The current plan, once one exists.
    pub fn current_plan(&self) -> Option<&Plan> {
        self.plan.as_ref()
    }

    /// Number of adaptive replans so far.
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// Current statistics estimate.
    pub fn stats(&self) -> Option<&DatasetStats> {
        self.stats.as_ref()
    }

    fn planner_options(&self) -> PlannerOptions {
        PlannerOptions {
            m_words: self.opts.m_words,
            algorithm: self.opts.algorithm,
            params: self.opts.params,
            clustering: self.opts.clustering,
            peak_load: None,
        }
    }

    /// Computes statistics from a buffer, plans, builds the executor and
    /// replays the buffer through it.
    fn promote(&mut self, buffered: Vec<Record>) {
        // Compute-once dataset statistics, held as a local through the
        // planning borrow and stored back afterwards.
        let stats = match self.stats.take() {
            Some(stats) => stats,
            None => {
                let universe = self.queries.iter().fold(AttrSet::EMPTY, |u, q| u.union(*q));
                let mut stats = DatasetStats::compute(&buffered, universe);
                // Flow lengths derived the paper's way (bucket-level run
                // lengths survive flow interleaving; §4.3).
                let sets: Vec<AttrSet> = stats.known_sets().collect();
                for (set, l) in msa_gigascope::table::temporal_flow_lengths(
                    &buffered,
                    &sets,
                    2048,
                    self.opts.seed ^ 0xF10,
                ) {
                    stats.set_flow_length(set, l);
                }
                stats
            }
        };
        let options = self.planner_options();
        let model = self.opts.model;
        let plan = Planner::new(&self.queries, &stats, &model, &options).plan(&options);
        self.stats = Some(stats);
        // A fresh plan invalidates the incremental-repair baseline.
        self.repair_base = None;
        self.repair_scale = 1.0;
        // Replaying a bootstrap buffer must start at the buffer's first
        // epoch; executor swaps mid-stream resume at the current one.
        let epoch_micros = self.opts.epoch_micros.max(1);
        let start_epoch = buffered
            .first()
            .map_or(self.current_epoch, |r| r.ts_micros / epoch_micros);
        let mut executor = self.build_executor(&plan, start_epoch);
        self.plan = Some(plan);
        for r in &buffered {
            executor.process(r);
        }
        self.state = State::Running(executor);
    }

    /// Builds an executor for `plan`, wiring in the options' value
    /// source, filter, fault plan and overload guard (transplanting
    /// carried guard state, if any). Callers pass the plan explicitly —
    /// usually the one they are about to store — so there is no
    /// "plan set before building" invariant to uphold at a distance.
    fn build_executor(&mut self, plan: &Plan, start_epoch: u64) -> Box<Executor> {
        let mut executor = Executor::new(
            plan.to_physical(),
            self.opts.params,
            self.opts.epoch_micros,
            msa_stream::hash::mix64(self.opts.seed ^ self.executor_generation),
        )
        .with_start_epoch(start_epoch)
        .with_value_source(self.opts.value_source)
        .with_filter(self.opts.filter.clone());
        self.executor_generation += 1;
        if !self.opts.retain_results {
            executor = executor.discard_results();
        }
        if let Some(fp) = &self.opts.faults {
            executor = executor.with_faults(fp);
        }
        if let Some(g) = self.guard_state.take() {
            executor = executor.with_guard_state(g);
        } else if let Some(policy) = self.opts.guard {
            executor = executor.with_guard(policy);
        }
        Box::new(executor)
    }

    /// Retires `executor`, folding its results and counters into the
    /// accumulators and carrying the guard state to the next executor.
    fn retire(&mut self, executor: Box<Executor>) {
        let (report, hfta, guard) = executor.finish_parts();
        self.guard_state = guard;
        // Executors share the global epoch numbering (timestamps are
        // absolute); `merge` takes the epoch count as a maximum, not a
        // sum, and accumulates everything else.
        self.merged.merge(&report);
        self.results.extend(hfta.results().iter().cloned());
    }

    /// Checks drift at an epoch boundary; replans if needed.
    fn maybe_replan(&mut self) {
        let Some(policy) = self.opts.adaptive else {
            return;
        };
        self.epochs_since_check += 1;
        if self.epochs_since_check < policy.check_every_epochs {
            return;
        }
        self.epochs_since_check = 0;
        let State::Running(executor) = &mut self.state else {
            return;
        };
        // A degraded guard means the observed table statistics are not
        // the stream's (records shed, phantoms bypassed): a drift verdict
        // drawn from them would be noise, and overload already has its
        // own repair path. Defer the check until the guard is calm.
        if executor
            .guard()
            .is_some_and(|g| g.level() != GuardLevel::Normal)
        {
            executor.reset_table_stats();
            return;
        }
        let observed = executor.table_stats();
        let (plan, stats) = match (&self.plan, &self.stats) {
            (Some(p), Some(s)) => (p, s),
            _ => return,
        };
        let model = self.opts.model;
        let ctx = CostContext {
            stats,
            model: &model,
            params: self.opts.params,
            clustering: self.opts.clustering,
        };
        let predicted = rates(&plan.configuration, &plan.allocation, &ctx);
        if drift(&predicted, &observed, &policy) <= policy.drift_threshold {
            executor.reset_table_stats();
            return;
        }
        // Replan: refresh statistics from observations, rebuild. The
        // inversion needs a linear model; non-linear engines fall back
        // to the paper's slope.
        let linear = match self.opts.model {
            ModelKind::Linear(m) => m,
            _ => LinearModel::paper_no_intercept(),
        };
        let new_stats = refine_stats(
            stats,
            &plan.configuration,
            &plan.allocation,
            &linear,
            &observed,
            &policy,
        );
        let State::Running(executor) =
            std::mem::replace(&mut self.state, State::Bootstrapping(Vec::new()))
        else {
            unreachable!("checked above");
        };
        self.retire(executor);
        self.stats = Some(new_stats);
        self.replans += 1;
        self.promote(Vec::new());
    }

    /// Applies a guard-requested allocation repair: shrinks the current
    /// allocation until the model-space peak-load target holds (an
    /// incremental scan resuming below the previous repair's scale),
    /// then rebuilds the executor with the repaired allocation and the
    /// transplanted guard state.
    fn maybe_repair(&mut self) {
        let Some(policy) = self.opts.guard else {
            return;
        };
        let observed = {
            let State::Running(executor) = &mut self.state else {
                return;
            };
            if !executor.take_repair_request() {
                return;
            }
            executor.guard().map_or(0.0, |g| g.last_observed_cost())
        };
        let (Some(plan), Some(stats)) = (&self.plan, &self.stats) else {
            return;
        };
        let base = self
            .repair_base
            .clone()
            .unwrap_or_else(|| plan.allocation.clone());
        let model = self.opts.model;
        let ctx = CostContext {
            stats,
            model: &model,
            params: self.opts.params,
            clustering: self.opts.clustering,
        };
        // The model's E_u and the measured flush cost can sit on
        // different scales (a burst breaches the budget without moving
        // the model), so aim the shrink at the model-space equivalent of
        // the observed breach.
        let predicted = end_of_epoch_cost(&plan.configuration, &base, &ctx);
        let target = if observed > policy.peak_budget && observed > 0.0 {
            (predicted * policy.peak_budget / observed).min(policy.peak_budget)
        } else {
            policy.peak_budget
        };
        let out = enforce_peak_load_from(
            &plan.configuration,
            &base,
            &ctx,
            target,
            PeakLoadMethod::Shrink,
            self.repair_scale,
        );
        if out.scale >= self.repair_scale {
            // No progress possible (already at the smallest useful scale
            // or the constraint holds in model space as-is): keep the
            // executor; shedding remains in force until load subsides.
            return;
        }
        let new_plan = Plan {
            configuration: plan.configuration.clone(),
            allocation: out.allocation,
            predicted_cost: plan.predicted_cost,
            predicted_update_cost: out.update_cost,
        };
        let State::Running(executor) =
            std::mem::replace(&mut self.state, State::Bootstrapping(Vec::new()))
        else {
            unreachable!("checked above");
        };
        self.retire(executor);
        self.repair_base = Some(base);
        self.repair_scale = out.scale;
        self.repairs += 1;
        let executor = self.build_executor(&new_plan, self.current_epoch);
        self.plan = Some(new_plan);
        self.state = State::Running(executor);
    }

    /// Number of guard-requested allocation repairs applied so far.
    pub fn repairs(&self) -> usize {
        self.repairs
    }

    /// Pushes one record.
    pub fn push(&mut self, record: Record) {
        // Epoch-boundary hook for adaptivity and overload repair.
        let epoch = record.ts_micros / self.opts.epoch_micros.max(1);
        if epoch > self.current_epoch {
            self.current_epoch = epoch;
            self.maybe_replan();
            self.maybe_repair();
        }
        match &mut self.state {
            State::Bootstrapping(buffer) => {
                buffer.push(record);
                if buffer.len() >= self.opts.bootstrap_records {
                    let buffered = std::mem::take(buffer);
                    self.promote(buffered);
                }
            }
            State::Running(executor) => executor.process(&record),
        }
    }

    /// Finishes the run: flushes the last epoch and returns everything.
    pub fn finish(mut self) -> AggregationOutput {
        match std::mem::replace(&mut self.state, State::Bootstrapping(Vec::new())) {
            State::Bootstrapping(buffer) => {
                if !buffer.is_empty() {
                    self.promote(buffer);
                    let State::Running(executor) =
                        std::mem::replace(&mut self.state, State::Bootstrapping(Vec::new()))
                    else {
                        unreachable!("promote sets Running");
                    };
                    self.retire(executor);
                }
            }
            State::Running(executor) => self.retire(executor),
        }
        AggregationOutput {
            results: std::mem::take(&mut self.results),
            report: self.merged.clone(),
            replans: self.replans,
            repairs: self.repairs,
            final_plan: self.plan.clone(),
            queries: self.queries.clone(),
            records_lost: self
                .guard_state
                .as_ref()
                .map_or(0, OverloadGuard::records_lost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msa_stream::{ClusteredStreamBuilder, UniformStreamBuilder};

    fn s(x: &str) -> AttrSet {
        AttrSet::parse(x).unwrap()
    }

    /// Exact counts for cross-checking.
    fn exact(records: &[Record], q: AttrSet) -> FastMap<GroupKey, u64> {
        let mut m = FastMap::default();
        for r in records {
            *m.entry(r.project(q)).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn end_to_end_exact_results() {
        let stream = UniformStreamBuilder::new(4, 300)
            .records(30_000)
            .seed(1)
            .build();
        let queries = vec![s("AB"), s("BC"), s("BD"), s("CD")];
        let mut engine = MultiAggregator::new(queries.clone(), EngineOptions::new(20_000.0));
        for r in &stream.records {
            engine.push(*r);
        }
        let out = engine.finish();
        assert_eq!(out.report.records as usize, stream.len());
        for q in queries {
            assert_eq!(out.totals(q), exact(&stream.records, q), "query {q}");
        }
        let plan = out.final_plan.expect("plan exists");
        assert!(plan.configuration.queries().count() == 4);
    }

    #[test]
    fn bootstrap_shorter_than_stream_still_counts_everything() {
        let stream = UniformStreamBuilder::new(3, 50)
            .records(500)
            .seed(2)
            .build();
        let mut opts = EngineOptions::new(5_000.0);
        opts.bootstrap_records = 10_000; // never reached; finish() promotes
        let mut engine = MultiAggregator::new(vec![s("A"), s("B")], opts);
        for r in &stream.records {
            engine.push(*r);
        }
        let out = engine.finish();
        assert_eq!(out.report.records, 500);
        assert_eq!(out.totals(s("A")), exact(&stream.records, s("A")));
    }

    #[test]
    fn presupplied_stats_skip_bootstrap() {
        let stream = UniformStreamBuilder::new(2, 20)
            .records(1000)
            .seed(3)
            .build();
        let stats = DatasetStats::compute(&stream.records, s("AB"));
        let mut opts = EngineOptions::new(4_000.0);
        opts.stats = Some(stats);
        let mut engine = MultiAggregator::new(vec![s("A"), s("B")], opts);
        assert!(engine.current_plan().is_some(), "plans immediately");
        for r in &stream.records {
            engine.push(*r);
        }
        let out = engine.finish();
        assert_eq!(out.totals(s("B")), exact(&stream.records, s("B")));
    }

    #[test]
    fn adaptive_replans_on_distribution_shift() {
        // Epoch 1: 20 groups. Epochs 2+: 2000 groups — collision rates
        // explode relative to the plan, forcing a replan.
        let calm = UniformStreamBuilder::new(4, 20)
            .records(30_000)
            .duration_secs(0.9)
            .seed(4)
            .build();
        let wild = UniformStreamBuilder::new(4, 2000)
            .records(60_000)
            .duration_secs(2.0)
            .seed(5)
            .build();
        let mut records = calm.records.clone();
        records.extend(wild.records.iter().map(|r| Record {
            attrs: r.attrs,
            ts_micros: r.ts_micros + 1_000_000,
        }));

        let mut opts = EngineOptions::new(8_000.0);
        opts.epoch_micros = 1_000_000;
        opts.bootstrap_records = 5_000;
        opts.adaptive = Some(AdaptivePolicy::default());
        let queries = vec![s("AB"), s("CD")];
        let mut engine = MultiAggregator::new(queries.clone(), opts);
        for r in &records {
            engine.push(*r);
        }
        let out = engine.finish();
        assert!(out.replans >= 1, "expected a replan, got {}", out.replans);
        // Correctness must survive replanning.
        for q in queries {
            assert_eq!(out.totals(q), exact(&records, q), "query {q}");
        }
    }

    #[test]
    fn no_adaptive_means_no_replans() {
        let stream = ClusteredStreamBuilder::new(4, 100)
            .records(20_000)
            .seed(6)
            .build();
        let mut opts = EngineOptions::new(10_000.0);
        opts.bootstrap_records = 2_000;
        let mut engine = MultiAggregator::new(vec![s("AB"), s("BC")], opts);
        for r in &stream.records {
            engine.push(*r);
        }
        let out = engine.finish();
        assert_eq!(out.replans, 0);
    }

    #[test]
    fn empty_stream_is_graceful() {
        let engine = MultiAggregator::new(vec![s("A")], EngineOptions::new(1_000.0));
        let out = engine.finish();
        assert_eq!(out.report.records, 0);
        assert!(out.results.is_empty());
    }

    #[test]
    fn epoch_results_are_split() {
        // 3 epochs of 1 second each.
        let records: Vec<Record> = (0..3000u32)
            .map(|i| Record::new(&[i % 10, 0, 0, 0], i as u64 * 1000))
            .collect();
        let mut opts = EngineOptions::new(2_000.0);
        opts.epoch_micros = 1_000_000;
        opts.bootstrap_records = 100;
        let mut engine = MultiAggregator::new(vec![s("A")], opts);
        for r in &records {
            engine.push(*r);
        }
        let out = engine.finish();
        let epochs: std::collections::BTreeSet<u64> = out.results.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs.len(), 3, "epochs seen: {epochs:?}");
    }
}
